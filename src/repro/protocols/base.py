"""Protocol-facing interfaces shared by LF-GDPR and LDPGen.

A *protocol* collects two atomic metrics from every user — the adjacency bit
vector and the degree — and estimates graph metrics server-side.  An *attack*
replaces the reports of the users it controls with :class:`FakeReport`
objects; the protocol treats those as the submitted (already perturbed)
values, exactly as the paper's threat model prescribes (fake users "can send
arbitrary data to the central server").

Common-random-numbers evaluation: ``collect`` derives all genuine-user noise
from named child streams of the supplied seed, so calling it twice with the
same seed — once without overrides, once with them — changes *only* what the
attacker changed.  That pairing is what ``repro.core.gain`` relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

from repro.graph.adjacency import Graph
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class FakeReport:
    """The crafted submission of one fake user.

    Two crafting modes cover all the paper's attacks:

    * **replace** (``augment=False``, the default): the user's entire report
      is attacker-crafted — ``claimed_neighbors`` becomes its bit vector
      verbatim and ``reported_degree`` its degree value.  RVA and MGA work
      this way.
    * **augment** (``augment=True``): the user runs the *honest* protocol on
      its organic data (keeping the same perturbation noise as in the
      unattacked world) and the attacker merely injects extra claimed edges
      on top, shifting the degree report by ``degree_delta``.  This models
      RNA, which adds one edge to the local data and lets the LDP client
      perturb as usual — under common random numbers the only difference
      from the honest run is the crafted edge.  Any pre-perturbation of the
      extra edges (RNA flips them with the RR probabilities) is the
      attack's job before building the report.

    Attributes
    ----------
    claimed_neighbors:
        Replace mode: the full claimed bit vector.  Augment mode: extra
        edges added on top of the honest report.
    reported_degree:
        Replace mode: the degree value sent.  Ignored in augment mode.
    augment:
        Selects the mode.
    degree_delta:
        Augment mode: shift applied to the honest noisy degree report.
    """

    claimed_neighbors: np.ndarray
    reported_degree: float
    augment: bool = False
    degree_delta: float = 0.0

    def __post_init__(self):
        neighbors = np.unique(np.asarray(self.claimed_neighbors, dtype=np.int64))
        object.__setattr__(self, "claimed_neighbors", neighbors)


#: Mapping from fake-node id to its crafted report.
Overrides = Mapping[int, FakeReport]


@dataclass
class CollectedReports:
    """Server-side view after one collection round.

    Attributes
    ----------
    perturbed_graph:
        The adjacency information the server holds: randomized-response
        output for pairs between non-overridden users, attacker-claimed bits
        for pairs involving overridden users.
    reported_degrees:
        Per-node degree reports (Laplace-perturbed for genuine users,
        attacker-chosen for fake users).
    adjacency_epsilon / degree_epsilon:
        The sub-budgets the reports were produced under.
    overridden:
        Ids of users whose reports were replaced by the attacker.  Stored for
        bookkeeping and for defense experiments; estimators never look at it
        (the server cannot distinguish fake users a priori).
    excluded:
        Ids of users a *defense* removed from the collection (their pairs are
        gone from ``perturbed_graph``).  Unlike ``overridden`` this is
        server-side knowledge: estimators must shrink the per-row bit count
        from ``N - 1`` to ``N - 1 - |excluded|`` and extrapolate, otherwise
        every removal shifts all degree estimates downward.
    """

    perturbed_graph: Graph
    reported_degrees: np.ndarray
    adjacency_epsilon: float
    degree_epsilon: float
    overridden: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    excluded: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self):
        degrees = np.asarray(self.reported_degrees, dtype=np.float64)
        if degrees.shape != (self.perturbed_graph.num_nodes,):
            raise ValueError(
                f"reported_degrees has shape {degrees.shape}, expected "
                f"({self.perturbed_graph.num_nodes},) — one report per user"
            )
        self.reported_degrees = degrees

    @property
    def num_nodes(self) -> int:
        """Total number of participating users N."""
        return self.perturbed_graph.num_nodes


class GraphLDPProtocol(abc.ABC):
    """Interface of an LDP graph-collection protocol."""

    @abc.abstractmethod
    def collect(
        self, graph: Graph, rng: RngLike, overrides: Overrides | None = None
    ) -> CollectedReports:
        """Run one collection round and return the server-side reports."""

    @abc.abstractmethod
    def estimate_degree_centrality(self, reports: CollectedReports) -> np.ndarray:
        """Per-node degree-centrality estimates (Eq. 8 on estimated degrees)."""

    @abc.abstractmethod
    def estimate_clustering_coefficient(self, reports: CollectedReports) -> np.ndarray:
        """Per-node clustering-coefficient estimates (Eqs. 15–17)."""

    @abc.abstractmethod
    def estimate_modularity(self, reports: CollectedReports, labels: np.ndarray) -> float:
        """Modularity estimate for a given community labelling."""


def apply_overrides(
    perturbed: Graph, overrides: Overrides | None
) -> tuple[Graph, np.ndarray]:
    """Replace overridden users' adjacency pairs with their claimed edges.

    Replace-mode reports control every pair incident to their user: the
    randomized-response bits for those pairs are dropped and the claimed
    edges inserted.  Augment-mode reports keep the user's RR pairs and only
    add the extra claimed edges.  Pairs between two non-overridden users
    always keep their RR bits, which preserves common random numbers across
    paired runs.

    Returns the resulting graph and the sorted array of overridden ids.
    """
    if not overrides:
        return perturbed, np.empty(0, dtype=np.int64)

    overridden = np.sort(np.fromiter(overrides.keys(), dtype=np.int64))
    n = perturbed.num_nodes
    if overridden[0] < 0 or overridden[-1] >= n:
        raise ValueError("override node id out of range")

    replaced = np.array(
        [node for node, report in overrides.items() if not report.augment], dtype=np.int64
    )
    flags = np.zeros(n, dtype=bool)
    flags[replaced] = True
    rows, cols = perturbed.edge_arrays()
    keep = ~(flags[rows] | flags[cols])
    # edge_arrays() is aligned with edge_codes, so the kept codes are already
    # sorted and unique — no python-tuple round trip, no np.unique re-sort.
    stripped = Graph.from_codes(n, perturbed.edge_codes[keep], assume_sorted_unique=True)

    crafted: list[tuple[int, int]] = []
    for node, report in overrides.items():
        for neighbor in report.claimed_neighbors.tolist():
            if neighbor == node:
                raise ValueError(f"fake user {node} claims a self-loop")
            if not 0 <= neighbor < n:
                raise ValueError(f"fake user {node} claims out-of-range neighbor {neighbor}")
            crafted.append((node, neighbor))
    return stripped.with_edges(crafted), overridden


def apply_degree_overrides(
    noisy_degrees: np.ndarray, overrides: Overrides | None
) -> np.ndarray:
    """Apply crafted degree reports (replace) or shifts (augment)."""
    result = np.array(noisy_degrees, dtype=np.float64, copy=True)
    if overrides:
        for node, report in overrides.items():
            if report.augment:
                result[node] += float(report.degree_delta)
            else:
                result[node] = float(report.reported_degree)
    return result
