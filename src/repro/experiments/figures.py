"""Per-figure experiment drivers: one function per table/figure of §VIII.

Each driver loads the dataset surrogate, runs the sweep the figure plots and
returns a :class:`~repro.experiments.runner.SweepResult` (or a dict of them
for the two-panel figures).  The benchmark modules under ``benchmarks/``
call these and print the resulting tables; EXPERIMENTS.md records how the
shapes compare with the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import Attack
from repro.core.degree_attacks import DegreeMGA, DegreeRVA
from repro.core.clustering_attacks import ClusteringMGA, ClusteringRVA
from repro.core.threat_model import ThreatModel
from repro.defenses.base import Defense
from repro.defenses.degree_consistency import DegreeConsistencyDefense
from repro.defenses.evaluation import evaluate_defended_attack
from repro.defenses.frequent_itemset import FrequentItemsetDefense
from repro.defenses.naive import NaiveDegreeTailsDefense, NaiveTopDegreeDefense
from repro.core.gain import evaluate_attack
from repro.experiments.config import (
    BETAS,
    DATASET_NAMES,
    DEFAULT_CONFIG,
    DETECT1_THRESHOLDS_CLUSTERING,
    DETECT1_THRESHOLDS_DEGREE,
    DETECT2_BETAS,
    EPSILONS,
    GAMMAS,
    ExperimentConfig,
)
from repro.experiments.runner import SweepResult, run_attack_sweep
from repro.graph.adjacency import Graph
from repro.graph.datasets import DATASETS, load_dataset
from repro.protocols.ldpgen import LDPGenProtocol
from repro.protocols.lfgdpr import LFGDPRProtocol
from repro.utils.rng import child_rng


def _load(dataset: str, config: ExperimentConfig) -> Graph:
    return load_dataset(dataset, scale=config.scale, rng=config.seed)


def community_labels(graph: Graph) -> np.ndarray:
    """Greedy-modularity community labelling of the original graph.

    LF-GDPR's modularity estimator needs a server-held partition; the paper
    does not specify one, so we fix the standard greedy-modularity partition
    (DESIGN.md §2).
    """
    import networkx as nx

    communities = nx.algorithms.community.greedy_modularity_communities(
        graph.to_networkx()
    )
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    for community_id, members in enumerate(communities):
        labels[list(members)] = community_id
    return labels


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------
def table2_rows(config: ExperimentConfig = DEFAULT_CONFIG) -> List[Tuple[str, int, int, int, int]]:
    """(dataset, paper nodes, paper edges, surrogate nodes, surrogate edges)."""
    rows = []
    for name in DATASET_NAMES:
        spec = DATASETS[name]
        graph = _load(name, config)
        rows.append((name, spec.paper_nodes, spec.paper_edges, graph.num_nodes, graph.num_edges))
    return rows


# ---------------------------------------------------------------------------
# Figs. 6-8: degree centrality (Exps 1-3)
# ---------------------------------------------------------------------------
def fig6(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Overall gains of attacks to degree centrality vs epsilon."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "degree_centrality", "epsilon",
        EPSILONS, config, figure="Fig6",
    )


def fig7(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of beta on attacks to degree centrality."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "degree_centrality", "beta",
        BETAS, config, figure="Fig7",
    )


def fig8(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of gamma on attacks to degree centrality."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "degree_centrality", "gamma",
        GAMMAS, config, figure="Fig8",
    )


# ---------------------------------------------------------------------------
# Figs. 9-11: clustering coefficient (Exps 4-6)
# ---------------------------------------------------------------------------
def fig9(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Overall gains of attacks to clustering coefficient vs epsilon."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "clustering_coefficient", "epsilon",
        EPSILONS, config, figure="Fig9",
    )


def fig10(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of beta on attacks to clustering coefficient."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "clustering_coefficient", "beta",
        BETAS, config, figure="Fig10",
    )


def fig11(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of gamma on attacks to clustering coefficient."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "clustering_coefficient", "gamma",
        GAMMAS, config, figure="Fig11",
    )


# ---------------------------------------------------------------------------
# Figs. 12-13: countermeasures (Exps 7-8)
# ---------------------------------------------------------------------------
def _average_defended_gain(
    graph: Graph,
    protocol: LFGDPRProtocol,
    attack: Attack,
    defense: Optional[Defense],
    metric: str,
    beta: float,
    gamma: float,
    trials: int,
    seed,
) -> float:
    """Mean (defended) gain over independent threat draws."""
    gains = []
    for trial in range(trials):
        trial_seed = int(child_rng(seed, f"defense-trial-{trial}").integers(2**63 - 1))
        threat = ThreatModel.sample(graph, beta, gamma, rng=child_rng(trial_seed, "threat"))
        if defense is None:
            outcome = evaluate_attack(
                graph, protocol, attack, threat, metric=metric, rng=trial_seed
            )
        else:
            outcome = evaluate_defended_attack(
                graph, protocol, attack, defense, threat, metric=metric, rng=trial_seed
            )
        gains.append(outcome.total_gain)
    return float(np.mean(gains))


def _defense_threshold_sweep(
    metric: str,
    attack_factory: Callable[[], Attack],
    thresholds: Sequence[int],
    dataset: str,
    config: ExperimentConfig,
    figure: str,
) -> SweepResult:
    """Detect1 vs Naive1 vs no defense across the Detect1 threshold."""
    graph = _load(dataset, config)
    protocol = LFGDPRProtocol(epsilon=config.epsilon)
    common = dict(
        graph=graph, protocol=protocol, metric=metric,
        beta=config.beta, gamma=config.gamma, trials=config.trials,
    )
    no_defense = _average_defended_gain(
        attack=attack_factory(), defense=None, seed=child_rng(config.seed, f"{figure}-none"),
        **common,
    )
    naive = _average_defended_gain(
        attack=attack_factory(), defense=NaiveTopDegreeDefense(),
        seed=child_rng(config.seed, f"{figure}-naive"), **common,
    )
    result = SweepResult(
        figure=figure, dataset=dataset, metric=metric, parameter="threshold",
        values=list(thresholds),
        series={"NoDefense": [], "Detect1": [], "Naive1": []},
    )
    for threshold in thresholds:
        detect1 = _average_defended_gain(
            attack=attack_factory(),
            defense=FrequentItemsetDefense(threshold=threshold),
            seed=child_rng(config.seed, f"{figure}-detect1-{threshold}"),
            **common,
        )
        result.series["NoDefense"].append(no_defense)
        result.series["Detect1"].append(detect1)
        result.series["Naive1"].append(naive)
    return result


def _defense_beta_sweep(
    metric: str,
    attack_factory: Callable[[], Attack],
    betas: Sequence[float],
    dataset: str,
    config: ExperimentConfig,
    figure: str,
) -> SweepResult:
    """Detect2 vs Naive2 vs no defense across the fake-user fraction."""
    graph = _load(dataset, config)
    protocol = LFGDPRProtocol(epsilon=config.epsilon)
    result = SweepResult(
        figure=figure, dataset=dataset, metric=metric, parameter="beta",
        values=list(betas),
        series={"NoDefense": [], "Detect2": [], "Naive2": []},
    )
    for beta in betas:
        common = dict(
            graph=graph, protocol=protocol, metric=metric,
            beta=beta, gamma=config.gamma, trials=config.trials,
        )
        result.series["NoDefense"].append(
            _average_defended_gain(
                attack=attack_factory(), defense=None,
                seed=child_rng(config.seed, f"{figure}-none-{beta}"), **common,
            )
        )
        result.series["Detect2"].append(
            _average_defended_gain(
                attack=attack_factory(), defense=DegreeConsistencyDefense(),
                seed=child_rng(config.seed, f"{figure}-detect2-{beta}"), **common,
            )
        )
        result.series["Naive2"].append(
            _average_defended_gain(
                attack=attack_factory(), defense=NaiveDegreeTailsDefense(),
                seed=child_rng(config.seed, f"{figure}-naive2-{beta}"), **common,
            )
        )
    return result


def fig12a(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect1/Naive1 against MGA on degree centrality vs threshold."""
    return _defense_threshold_sweep(
        "degree_centrality", DegreeMGA, DETECT1_THRESHOLDS_DEGREE, dataset, config, "Fig12a"
    )


def fig12b(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect2/Naive2 against RVA on degree centrality vs beta."""
    return _defense_beta_sweep(
        "degree_centrality", DegreeRVA, DETECT2_BETAS, dataset, config, "Fig12b"
    )


def fig13a(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect1/Naive1 against MGA on clustering coefficient vs threshold."""
    return _defense_threshold_sweep(
        "clustering_coefficient", ClusteringMGA, DETECT1_THRESHOLDS_CLUSTERING,
        dataset, config, "Fig13a",
    )


def fig13b(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect2/Naive2 against RVA on clustering coefficient vs beta."""
    return _defense_beta_sweep(
        "clustering_coefficient", ClusteringRVA, DETECT2_BETAS, dataset, config, "Fig13b"
    )


# ---------------------------------------------------------------------------
# Figs. 14-15: LF-GDPR vs LDPGen (Exp 9)
# ---------------------------------------------------------------------------
def _protocol_comparison(
    metric: str,
    dataset: str,
    config: ExperimentConfig,
    figure: str,
    epsilons: Sequence[float] = EPSILONS,
) -> Dict[str, SweepResult]:
    graph = _load(dataset, config)
    labels = community_labels(graph) if metric == "modularity" else None
    results = {}
    for name, factory in (("LF-GDPR", LFGDPRProtocol), ("LDPGen", LDPGenProtocol)):
        results[name] = run_attack_sweep(
            graph, dataset, metric, "epsilon", epsilons, config,
            protocol_factory=factory, labels=labels, figure=f"{figure}-{name}",
        )
    return results


def fig14(
    config: ExperimentConfig = DEFAULT_CONFIG,
    dataset: str = "facebook",
    epsilons: Sequence[float] = EPSILONS,
) -> Dict[str, SweepResult]:
    """Attacks on LF-GDPR and LDPGen: clustering coefficient vs epsilon."""
    return _protocol_comparison("clustering_coefficient", dataset, config, "Fig14", epsilons)


def fig15(
    config: ExperimentConfig = DEFAULT_CONFIG,
    dataset: str = "facebook",
    epsilons: Sequence[float] = EPSILONS,
) -> Dict[str, SweepResult]:
    """Attacks on LF-GDPR and LDPGen: modularity vs epsilon."""
    return _protocol_comparison("modularity", dataset, config, "Fig15", epsilons)
