"""A hybrid countermeasure (extension — the "new defense" the paper calls for).

The paper's conclusion is that neither countermeasure alone suffices:
Detect1 sees coordinated claim *patterns* (MGA) but not inconsistent
*values* (RVA); Detect2 sees value inconsistencies but not coordination.
This extension combines both signals and adds a third that neither uses —
the *noise-level* check: a verbatim crafted bit vector has no randomized-
response noise in it, so its 1-count sits far below (or above) the
perturbed-degree distribution genuine rows follow.

Flagging is evidence-weighted: the consistency and coordination signals
carry two votes each — each is the *only* signal able to see an entire
attack family (consistency for RVA, whose claim count blends into the
perturbed-degree distribution by construction; coordination for the
consistency-evading MGA variant, ``DegreeMGA(evade_consistency=True)``) —
while the noise-level check carries one vote as a confirmation signal.
Users reaching ``min_votes`` are flagged.  Repair redraws flagged rows at
ambient density
(Detect1's reconstruction) rather than removing them: removal shrinks the
estimation universe, and the benchmark comparison
(``bench_ext_hybrid_defense``) shows its collateral damage on the clustering
estimator exceeds the attacks themselves, while resampling keeps every node
in place at honest-looking noise levels.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense, resample_flagged_rows
from repro.defenses.degree_consistency import DegreeConsistencyDefense
from repro.defenses.frequent_itemset import FrequentItemsetDefense
from repro.ldp.mechanisms import rr_keep_probability
from repro.protocols.base import CollectedReports
from repro.utils.validation import check_positive


class HybridDefense(Defense):
    """Vote-based combination of coordination, consistency and noise checks.

    Parameters
    ----------
    itemset_threshold:
        Detect1 threshold for the coordination vote.
    min_votes:
        Votes required to flag a user (1 = union of signals, 3 = unanimous).
    noise_z:
        Width of the acceptance band for the noise-level vote, in standard
        deviations of the perturbed-degree distribution.
    """

    name = "Hybrid"

    def __init__(
        self,
        itemset_threshold: int = 100,
        min_votes: int = 2,
        noise_z: float = 3.0,
    ):
        check_positive(min_votes, "min_votes")
        check_positive(noise_z, "noise_z")
        if min_votes > 5:
            raise ValueError(
                f"the maximum attainable vote count is 5; min_votes={min_votes}"
            )
        self.coordination = FrequentItemsetDefense(threshold=itemset_threshold)
        self.consistency = DegreeConsistencyDefense()
        self.min_votes = int(min_votes)
        self.noise_z = float(noise_z)

    def noise_level_votes(self, reports: CollectedReports) -> np.ndarray:
        """Vote for rows whose 1-count is implausible under honest RR.

        An honest perturbed row's 1-count is approximately normal around
        ``d p + (N-1-d)(1-p)``; without knowing ``d`` the server can still
        bound it using the population of observed rows: rows outside
        ``median +/- z * sigma`` (sigma from the binomial noise floor plus
        the empirical spread) are suspicious.
        """
        n = reports.num_nodes
        keep = rr_keep_probability(reports.adjacency_epsilon)
        row_counts = reports.perturbed_graph.degrees().astype(np.float64)
        center = np.median(row_counts)
        binomial_sigma = np.sqrt((n - 1) * keep * (1.0 - keep))
        sigma = max(binomial_sigma, np.std(row_counts))
        return np.abs(row_counts - center) > self.noise_z * sigma

    def detect(self, reports: CollectedReports) -> np.ndarray:
        votes = np.zeros(reports.num_nodes, dtype=np.int64)
        votes[self.coordination.detect(reports)] += 2
        votes[self.consistency.detect(reports)] += 2
        votes[self.noise_level_votes(reports)] += 1
        return np.flatnonzero(votes >= self.min_votes).astype(np.int64)

    def repair(self, reports: CollectedReports, flagged: np.ndarray) -> CollectedReports:
        return resample_flagged_rows(reports, flagged, rng=0)
