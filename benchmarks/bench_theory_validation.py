"""Theorems 1 and 2 — analytic MGA gains vs empirical measurements.

The closed forms predict the *attack-injection* component of the gain in the
metric's own units.  The empirical pipeline additionally passes through the
server's calibration (which amplifies each crafted bit by ``1/(2p-1)`` for
degrees and by ``2/(p^2(2p-1))`` per triangle for clustering), so we compare
*shapes across epsilon* — the ratio empirical/theory should stay within a
stable band rather than equal 1.

Also benchmarks the paired (common-random-numbers) evaluation against
independent-noise runs — the ablation of DESIGN.md §6 item 1.
"""

import numpy as np
from conftest import bench_config, bench_trials, emit

from repro.core.degree_attacks import DegreeMGA
from repro.core.clustering_attacks import ClusteringMGA
from repro.core.gain import evaluate_attack
from repro.core.theory import theorem1_degree_gain, theorem2_clustering_gain
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.experiments.reporting import format_table
from repro.graph.datasets import load_dataset
from repro.protocols.lfgdpr import LFGDPRProtocol

EPSILONS = (1.0, 2.0, 4.0, 8.0)


def _empirical_gain(graph, protocol, attack, metric, trials, seed0=0):
    gains = []
    for seed in range(trials):
        threat = ThreatModel.sample(graph, 0.05, 0.05, rng=seed0 + seed)
        gains.append(
            evaluate_attack(
                graph, protocol, attack, threat, metric=metric, rng=seed0 + seed
            ).total_gain
        )
    return float(np.mean(gains))


def test_theorem1_shape(benchmark):
    """Empirical gain = Theorem 1 x the server's calibration amplification.

    Theorem 1 predicts the gain in raw crafted-connectivity units; the
    server's randomized-response calibration multiplies every crafted bit by
    ``1/(2 p1 - 1)``.  The product matches the measured gain within a few
    percent at every epsilon.
    """
    from repro.ldp.mechanisms import rr_keep_probability

    config = bench_config("facebook")
    graph = load_dataset("facebook", scale=config.scale, rng=config.seed)

    def run():
        rows = []
        for epsilon in EPSILONS:
            protocol = LFGDPRProtocol(epsilon=epsilon)
            knowledge = AttackerKnowledge.from_protocol(protocol, graph)
            threat = ThreatModel.sample(graph, 0.05, 0.05, rng=0)
            raw = theorem1_degree_gain(
                threat.num_fake,
                threat.num_targets,
                graph.num_nodes,
                knowledge.perturbed_average_degree,
            )
            keep = rr_keep_probability(knowledge.adjacency_epsilon)
            predicted = raw / (2.0 * keep - 1.0)
            measured = _empirical_gain(
                graph, protocol, DegreeMGA(), "degree_centrality", config.trials
            )
            rows.append([epsilon, raw, predicted, measured, measured / predicted])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "theory_validation",
        format_table(
            ["epsilon", "theorem1 (raw)", "x calibration", "empirical", "ratio"],
            rows,
            title="Theorem 1 vs empirical MGA gain (degree centrality)",
        ),
    )
    predictions = np.array([row[2] for row in rows])
    measurements = np.array([row[3] for row in rows])
    ratios = measurements / predictions
    # Calibrated prediction and measurement both fall with epsilon and agree
    # within 25% pointwise.
    assert predictions[0] > predictions[-1]
    assert measurements[0] > measurements[-1]
    assert np.all(np.abs(ratios - 1.0) < 0.25)


def test_theorem2_computable_across_grid(benchmark):
    config = bench_config("facebook")
    graph = load_dataset("facebook", scale=config.scale, rng=config.seed)

    def run():
        rows = []
        for epsilon in EPSILONS:
            protocol = LFGDPRProtocol(epsilon=epsilon)
            knowledge = AttackerKnowledge.from_protocol(protocol, graph)
            threat = ThreatModel.sample(graph, 0.05, 0.05, rng=0)
            predicted = theorem2_clustering_gain(
                threat.num_fake,
                threat.num_targets,
                graph.num_nodes,
                knowledge.perturbed_average_degree,
                knowledge.adjacency_epsilon,
            )
            measured = _empirical_gain(
                graph, protocol, ClusteringMGA(), "clustering_coefficient", config.trials
            )
            rows.append([epsilon, predicted, measured])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "theory_validation",
        format_table(
            ["epsilon", "theorem2", "empirical"],
            rows,
            title="Theorem 2 vs empirical MGA gain (clustering coefficient)",
        ),
    )
    assert all(np.isfinite(row[1]) and row[1] > 0 for row in rows)
    assert all(np.isfinite(row[2]) and row[2] > 0 for row in rows)


def test_paired_vs_independent_noise(benchmark):
    """Ablation: common random numbers vs independent before/after runs."""
    config = bench_config("facebook")
    graph = load_dataset("facebook", scale=config.scale, rng=config.seed)
    protocol = LFGDPRProtocol(epsilon=4.0)
    threat = ThreatModel.sample(graph, 0.05, 0.05, rng=0)
    trials = max(2, bench_trials())

    def run():
        paired = np.mean(
            [
                evaluate_attack(
                    graph, protocol, DegreeMGA(), threat, rng=seed, paired=True
                ).total_gain
                for seed in range(trials)
            ]
        )
        independent = np.mean(
            [
                evaluate_attack(
                    graph, protocol, DegreeMGA(), threat, rng=seed, paired=False
                ).total_gain
                for seed in range(trials)
            ]
        )
        return paired, independent

    paired, independent = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "theory_validation",
        format_table(
            ["evaluation", "MGA gain"],
            [["paired (CRN)", paired], ["independent noise", independent]],
            title="Ablation — paired vs independent noise (degree MGA, eps=4)",
        ),
    )
    # Independent runs fold LDP noise into |after - before|, inflating gain.
    assert independent >= paired * 0.9
