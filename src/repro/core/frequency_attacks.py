"""Data poisoning attacks on frequency oracles (Cao et al., USENIX Sec 2021).

The paper's graph attacks are explicit adaptations of this family (§III-A,
§IV-B): RVA generalises RPA, RNA generalises RIA, and the graph MGA solves
the same gain-maximisation problem over crafted reports.  Implementing the
original family end-to-end both validates our oracle substrate and provides
the reference behaviour the graph attacks are measured against.

Attacks craft *reports* in the oracle's native format:

* **RPA** (random perturbed-value attack) — a uniform point of the encoded
  space.
* **RIA** (random item attack) — a random target item, honestly perturbed.
* **MGA** (maximal gain attack) — reports that maximise target support:
  the target itself for kRR; the target bits (padded to the expected 1-count
  to evade detection) for OUE; a hash seed chosen to collide many targets
  into one bucket for OLH.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.ldp.frequency_oracles import KRR, OLH, OUE, FrequencyOracle, _OLH_PRIME
from repro.utils.rng import RngLike, child_rng, ensure_rng
from repro.utils.validation import check_positive


class FrequencyAttack(abc.ABC):
    """Crafts fake-user reports for a frequency oracle."""

    name: str = "attack"

    @abc.abstractmethod
    def craft(
        self,
        oracle: FrequencyOracle,
        num_fake: int,
        targets: np.ndarray,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Return ``num_fake`` crafted reports in the oracle's report format."""

    def _check(self, oracle: FrequencyOracle, num_fake: int, targets: np.ndarray) -> np.ndarray:
        check_positive(num_fake, "num_fake")
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        if targets.size == 0:
            raise ValueError("at least one target item is required")
        if targets.min() < 0 or targets.max() >= oracle.domain_size:
            raise ValueError("target item out of domain range")
        return targets


class FrequencyRPA(FrequencyAttack):
    """Random perturbed-value attack: uniform points of the encoded space."""

    name = "RPA"

    def craft(self, oracle, num_fake, targets, rng=None):
        targets = self._check(oracle, num_fake, targets)
        generator = ensure_rng(rng)
        if isinstance(oracle, KRR):
            return generator.integers(0, oracle.domain_size, size=num_fake, dtype=np.int64)
        if isinstance(oracle, OUE):
            return generator.integers(0, 2, size=(num_fake, oracle.domain_size)).astype(np.uint8)
        if isinstance(oracle, OLH):
            a = generator.integers(1, _OLH_PRIME, size=num_fake, dtype=np.int64)
            b = generator.integers(0, _OLH_PRIME, size=num_fake, dtype=np.int64)
            y = generator.integers(0, oracle.num_buckets, size=num_fake, dtype=np.int64)
            return np.stack([a, b, y], axis=1)
        raise TypeError(f"unsupported oracle type {type(oracle).__name__}")


class FrequencyRIA(FrequencyAttack):
    """Random item attack: each fake user honestly perturbs a random target."""

    name = "RIA"

    def craft(self, oracle, num_fake, targets, rng=None):
        targets = self._check(oracle, num_fake, targets)
        generator = ensure_rng(rng)
        values = generator.choice(targets, size=num_fake, replace=True)
        return oracle.perturb(values, rng=generator)


class FrequencyMGA(FrequencyAttack):
    """Maximal gain attack: reports crafted to maximise target support.

    Parameters
    ----------
    olh_seed_candidates:
        For OLH the attacker searches this many random hash seeds per fake
        user batch and keeps the one colliding the most targets into a
        single bucket.
    pad_oue_reports:
        Pad OUE reports with random non-target bits up to the expected
        1-count of an honest report (Cao et al.'s detection-evasion step).
    """

    name = "MGA"

    def __init__(self, olh_seed_candidates: int = 200, pad_oue_reports: bool = True):
        check_positive(olh_seed_candidates, "olh_seed_candidates")
        self.olh_seed_candidates = int(olh_seed_candidates)
        self.pad_oue_reports = bool(pad_oue_reports)

    def craft(self, oracle, num_fake, targets, rng=None):
        targets = self._check(oracle, num_fake, targets)
        generator = ensure_rng(rng)
        if isinstance(oracle, KRR):
            return generator.choice(targets, size=num_fake, replace=True).astype(np.int64)
        if isinstance(oracle, OUE):
            return self._craft_oue(oracle, num_fake, targets, generator)
        if isinstance(oracle, OLH):
            return self._craft_olh(oracle, num_fake, targets, generator)
        raise TypeError(f"unsupported oracle type {type(oracle).__name__}")

    def _craft_oue(self, oracle: OUE, num_fake: int, targets: np.ndarray, rng) -> np.ndarray:
        reports = np.zeros((num_fake, oracle.domain_size), dtype=np.uint8)
        reports[:, targets] = 1
        if self.pad_oue_reports:
            expected_ones = round(
                oracle.support_probability_true
                + (oracle.domain_size - 1) * oracle.support_probability_false
            )
            deficit = max(0, expected_ones - targets.size)
            non_targets = np.setdiff1d(np.arange(oracle.domain_size), targets)
            if deficit and non_targets.size:
                for row in range(num_fake):
                    pad = rng.choice(
                        non_targets, size=min(deficit, non_targets.size), replace=False
                    )
                    reports[row, pad] = 1
        return reports

    def _craft_olh(self, oracle: OLH, num_fake: int, targets: np.ndarray, rng) -> np.ndarray:
        candidates_a = rng.integers(1, _OLH_PRIME, size=self.olh_seed_candidates, dtype=np.int64)
        candidates_b = rng.integers(0, _OLH_PRIME, size=self.olh_seed_candidates, dtype=np.int64)
        buckets = oracle.hash_items(
            candidates_a[:, None], candidates_b[:, None], targets[None, :]
        )
        best_score = -1
        best = (int(candidates_a[0]), int(candidates_b[0]), 0)
        for index in range(self.olh_seed_candidates):
            counts = np.bincount(buckets[index], minlength=oracle.num_buckets)
            score = int(counts.max())
            if score > best_score:
                best_score = score
                best = (int(candidates_a[index]), int(candidates_b[index]), int(counts.argmax()))
        a, b, y = best
        return np.tile(np.array([[a, b, y]], dtype=np.int64), (num_fake, 1))


@dataclass
class FrequencyAttackOutcome:
    """Gain of a frequency-oracle attack (estimated-frequency shift)."""

    attack_name: str
    targets: np.ndarray
    before: np.ndarray
    after: np.ndarray

    @property
    def per_target_gain(self) -> np.ndarray:
        """Frequency shift per target (positive = inflated, the attack goal)."""
        return self.after - self.before

    @property
    def total_gain(self) -> float:
        """Summed frequency gain over targets."""
        return float(self.per_target_gain.sum())


def evaluate_frequency_attack(
    oracle: FrequencyOracle,
    genuine_values: np.ndarray,
    attack: FrequencyAttack,
    targets: np.ndarray,
    num_fake: int,
    rng: RngLike = 0,
) -> FrequencyAttackOutcome:
    """Paired before/after evaluation on a frequency oracle.

    *Before*: ``n`` genuine users report honestly.  *After*: the same
    genuine reports (common random numbers) plus ``num_fake`` crafted
    reports.  Estimates are always computed over ``n + num_fake`` users so
    the comparison is apples-to-apples — in the before world the fake users
    exist but report honestly-random values drawn like genuine ones.
    """
    genuine_values = np.asarray(genuine_values, dtype=np.int64)
    targets = np.unique(np.asarray(targets, dtype=np.int64))
    generator_genuine = child_rng(rng, "frequency-genuine")
    genuine_reports = oracle.perturb(genuine_values, rng=generator_genuine)

    honest_fake_values = child_rng(rng, "frequency-fake-honest").integers(
        0, oracle.domain_size, size=num_fake
    )
    honest_fake_reports = oracle.perturb(
        honest_fake_values, rng=child_rng(rng, "frequency-fake-honest-perturb")
    )
    crafted = attack.craft(oracle, num_fake, targets, rng=child_rng(rng, "frequency-craft"))

    before = oracle.estimate_frequencies(
        np.concatenate([genuine_reports, honest_fake_reports], axis=0)
    )
    after = oracle.estimate_frequencies(np.concatenate([genuine_reports, crafted], axis=0))
    return FrequencyAttackOutcome(
        attack_name=attack.name,
        targets=targets,
        before=before[targets],
        after=after[targets],
    )
