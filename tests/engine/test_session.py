"""EngineSession tests: heterogeneous batches, pool persistence, lifecycle.

The session's load-bearing guarantee extends the engine invariant to
multi-graph batches: a batch mixing tasks from several graphs produces a
**bit-identical** result vector whatever the executor, worker count, chunk
assignment or cache state — pinned here by hashing the full result vector
under every execution path (cold cache, warm cache, half-warm mix).
"""

import hashlib
import json

import pytest

from repro.engine.cache import NullCache
from repro.engine.executors import (
    MIN_PARALLEL_TASKS_ENV,
    ParallelExecutor,
    SerialExecutor,
    _chunk_indices_by_graph,
    min_parallel_tasks,
)
from repro.engine.graph_store import GraphStore
from repro.engine.result_store import ShardedResultStore
from repro.engine.session import EngineSession
from repro.engine.tasks import TrialTask, derive_trial_seed, graph_fingerprint
from repro.graph.generators import powerlaw_cluster_graph


def _sha256_of(gains):
    return hashlib.sha256(json.dumps([float(g) for g in gains]).encode("ascii")).hexdigest()


def _tasks_for(graph, count, tag):
    graph_key = graph_fingerprint(graph)
    return [
        TrialTask(
            graph_key=graph_key, metric="degree_centrality",
            attack=("degree/mga" if index % 2 else "degree/rva"),
            protocol="lfgdpr", epsilon=4.0, beta=0.05, gamma=0.05,
            seed=derive_trial_seed(0, f"{tag}|{index}"), trial=index,
        )
        for index in range(count)
    ]


@pytest.fixture(scope="module")
def hetero_batch():
    """Tasks interleaved across three distinct graphs (a multi-graph batch)."""
    graphs = [
        powerlaw_cluster_graph(80 + 10 * index, 3, 0.4, rng=index)
        for index in range(3)
    ]
    per_graph = [_tasks_for(graph, 4, f"hetero{index}") for index, graph in enumerate(graphs)]
    # Interleave so chunk assignment has to regroup by graph.
    tasks = [task for trio in zip(*per_graph) for task in trio]
    return graphs, tasks


class TestHeterogeneousDeterminism:
    def test_parallel_matches_serial_cold_warm_halfwarm(self, hetero_batch, tmp_path):
        """jobs=4 sha256 == serial on a multi-graph batch, for every cache state."""
        graphs, tasks = hetero_batch

        with EngineSession(jobs=1) as session:
            for graph in graphs:
                session.add_graph(graph)
            serial_sha = _sha256_of(session.run(tasks))

        # Cold cache.
        cold = EngineSession(jobs=4, cache=ShardedResultStore(tmp_path / "cold"))
        with cold as session:
            for graph in graphs:
                session.add_graph(graph)
            assert _sha256_of(session.run(tasks)) == serial_sha

        # Warm cache: everything answered from disk.
        warm_store = ShardedResultStore(tmp_path / "warm")
        with EngineSession(jobs=1, cache=warm_store) as session:
            for graph in graphs:
                session.add_graph(graph)
            session.run(tasks)
        replay_store = ShardedResultStore(tmp_path / "warm")
        with EngineSession(jobs=4, cache=replay_store) as session:
            for graph in graphs:
                session.add_graph(graph)
            assert _sha256_of(session.run(tasks)) == serial_sha
        assert replay_store.hits == len(tasks)

        # Half-warm: cached hits mixed with parallel misses.
        half_store = ShardedResultStore(tmp_path / "half")
        with EngineSession(jobs=1, cache=half_store) as session:
            for graph in graphs:
                session.add_graph(graph)
            session.run(tasks[: len(tasks) // 2])
        with EngineSession(jobs=4, cache=ShardedResultStore(tmp_path / "half")) as session:
            for graph in graphs:
                session.add_graph(graph)
            assert _sha256_of(session.run(tasks)) == serial_sha

    def test_parallel_executor_execute_batch_matches_serial(self, hetero_batch):
        graphs, tasks = hetero_batch
        with GraphStore() as store:
            for graph in graphs:
                store.add(graph)
            serial = SerialExecutor().execute_batch(tasks, store)
            parallel = ParallelExecutor(jobs=4).execute_batch(tasks, store)
        assert _sha256_of(parallel) == _sha256_of(serial)


class TestSessionLifecycle:
    def test_pool_persists_across_runs(self, hetero_batch):
        graphs, tasks = hetero_batch
        with EngineSession(jobs=2) as session:
            for graph in graphs:
                session.add_graph(graph)
            first = session.run(tasks)
            pool = session._pool
            assert pool is not None, "parallel run must create the pool"
            second = session.run(tasks)
            assert session._pool is pool, "pool must persist across run() calls"
        assert first == second

    def test_warm_cache_run_never_creates_a_pool(self, hetero_batch, tmp_path):
        """A fully cached batch at jobs>1 must not pay pool startup."""
        graphs, tasks = hetero_batch
        store = ShardedResultStore(tmp_path / "prewarm")
        with EngineSession(jobs=1, cache=store) as session:
            for graph in graphs:
                session.add_graph(graph)
            session.run(tasks)
        with EngineSession(jobs=4, cache=ShardedResultStore(tmp_path / "prewarm")) as session:
            for graph in graphs:
                session.add_graph(graph)
            session.run(tasks)
            assert session._pool is None, "warm replay forked workers for nothing"
            session.run([])
            assert session._pool is None, "empty batch forked workers for nothing"

    def test_add_graph_idempotent(self):
        graph = powerlaw_cluster_graph(50, 3, 0.4, rng=0)
        with EngineSession() as session:
            key_a, _ = session.add_graph(graph)
            key_b, _ = session.add_graph(graph)
            assert key_a == key_b
            assert len(session.graphs) == 1

    def test_closed_session_rejects_runs(self):
        session = EngineSession()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run([])
        session.close()  # idempotent

    def test_unregistered_graph_key_is_a_clear_error(self, hetero_batch):
        _, tasks = hetero_batch
        with EngineSession() as session:
            with pytest.raises(KeyError, match="not registered"):
                session.run(tasks)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            EngineSession(jobs=0)

    def test_from_config_uses_jobs_and_cache(self):
        from repro.experiments.config import ExperimentConfig

        session = EngineSession.from_config(ExperimentConfig(jobs=3, cache=False))
        try:
            assert session.jobs == 3
            assert isinstance(session.cache, NullCache)
        finally:
            session.close()


class TestChunking:
    def test_chunks_never_straddle_graphs(self, hetero_batch):
        _, tasks = hetero_batch
        for chunk_count in (1, 2, 3, 5, 16):
            chunks = _chunk_indices_by_graph(tasks, chunk_count)
            covered = sorted(index for chunk in chunks for index in chunk)
            assert covered == list(range(len(tasks)))
            for chunk in chunks:
                keys = {tasks[index].graph_key for index in chunk}
                assert len(keys) == 1, "a chunk must map exactly one graph"

    def test_min_parallel_tasks_env_knob(self, monkeypatch, hetero_batch):
        import repro.engine.executors as executors_module

        graphs, tasks = hetero_batch
        assert min_parallel_tasks() == 2  # default: parallelise all but singletons
        monkeypatch.setenv(MIN_PARALLEL_TASKS_ENV, "garbage")
        with pytest.warns(UserWarning, match="not an integer"):
            assert min_parallel_tasks() == 2
        monkeypatch.setenv(MIN_PARALLEL_TASKS_ENV, "1000000")
        assert min_parallel_tasks() == 1000000

        # Under the threshold a "parallel" batch must run in-process: creating
        # a pool at all fails the test.
        def no_pool(*args, **kwargs):
            raise AssertionError("sub-threshold batch must not create a pool")

        monkeypatch.setattr(executors_module, "_ProcessPool", no_pool)
        executor = ParallelExecutor(jobs=4)
        with GraphStore() as store:
            for graph in graphs:
                store.add(graph)
            gains = executor.execute_batch(tasks, store)
            assert gains == SerialExecutor().execute_batch(tasks, store)


class TestSessionCrashRecovery:
    def test_session_survives_worker_death(self, hetero_batch, monkeypatch, tmp_path):
        """One SIGKILLed worker must not poison the persistent pool.

        The run it crashed completes via retry (bit-identical to serial),
        the broken pool is replaced, and the *next* run() reuses the
        replacement — the session never needs to be rebuilt.
        """
        from tests.engine import crashkit

        graphs, tasks = hetero_batch
        with EngineSession(jobs=1) as session:
            for graph in graphs:
                session.add_graph(graph)
            serial_sha = _sha256_of(session.run(tasks))

        monkeypatch.setenv(crashkit.MARKER_ENV, str(tmp_path / "tripped"))
        monkeypatch.setattr(
            "repro.engine.executors._run_shared_chunk",
            crashkit.sigkill_once_chunk,
        )
        with EngineSession(jobs=2) as session:
            for graph in graphs:
                session.add_graph(graph)
            assert _sha256_of(session.run(tasks)) == serial_sha
            assert (tmp_path / "tripped").exists(), "injection never fired"
            recovered_pool = session._pool
            assert recovered_pool is not None
            assert _sha256_of(session.run(tasks)) == serial_sha
            assert session._pool is recovered_pool, (
                "the replacement pool must persist like the original"
            )
