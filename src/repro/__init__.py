"""Data Poisoning Attacks to Local Differential Privacy Protocols for Graphs.

A full reproduction of the ICDE 2025 paper: graph-LDP protocols (LF-GDPR,
LDPGen), the RVA/RNA/MGA poisoning attacks on degree centrality and
clustering coefficient, the frequency-oracle attack family they generalise,
two countermeasures, and a benchmark harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import (
        LFGDPRProtocol, ThreatModel, DegreeMGA, evaluate_attack, load_dataset,
    )

    graph = load_dataset("facebook", scale=0.25)
    protocol = LFGDPRProtocol(epsilon=4.0)
    threat = ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)
    outcome = evaluate_attack(graph, protocol, DegreeMGA(), threat,
                              metric="degree_centrality", rng=0)
    print(outcome.total_gain)
"""

from repro.core import (
    Attack,
    AttackerKnowledge,
    AttackOutcome,
    ClusteringMGA,
    ClusteringRNA,
    ClusteringRVA,
    DegreeMGA,
    DegreeRNA,
    DegreeRVA,
    FrequencyMGA,
    FrequencyRIA,
    FrequencyRPA,
    ThreatModel,
    average_gain,
    evaluate_attack,
    evaluate_frequency_attack,
    theorem1_degree_gain,
    theorem2_clustering_gain,
)
from repro.engine import (
    ATTACKS,
    DEFENSES,
    PROTOCOLS,
    EngineSession,
    GraphStore,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    ShardedResultStore,
    TrialTask,
)
from repro.graph import Graph, load_dataset
from repro.ldp import KRR, OLH, OUE
from repro.protocols import FakeReport, LDPGenProtocol, LFGDPRProtocol
from repro.scenarios import (
    SCENARIOS,
    ScenarioResult,
    ScenarioSpec,
    SeriesSpec,
    get_scenario,
    register_scenario,
    run_scenario,
    run_scenarios,
)
from repro.telemetry import (
    ProgressPrinter,
    RunManifest,
    TelemetryCallbacks,
    Tracer,
    current_tracer,
    set_tracer,
)

__version__ = "1.0.0"

__all__ = [
    "ATTACKS",
    "DEFENSES",
    "PROTOCOLS",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioSpec",
    "SeriesSpec",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "run_scenarios",
    "EngineSession",
    "GraphStore",
    "ParallelExecutor",
    "ResultCache",
    "SerialExecutor",
    "ShardedResultStore",
    "TrialTask",
    "Attack",
    "AttackerKnowledge",
    "AttackOutcome",
    "ClusteringMGA",
    "ClusteringRNA",
    "ClusteringRVA",
    "DegreeMGA",
    "DegreeRNA",
    "DegreeRVA",
    "FrequencyMGA",
    "FrequencyRIA",
    "FrequencyRPA",
    "ThreatModel",
    "average_gain",
    "evaluate_attack",
    "evaluate_frequency_attack",
    "theorem1_degree_gain",
    "theorem2_clustering_gain",
    "Graph",
    "load_dataset",
    "KRR",
    "OLH",
    "OUE",
    "FakeReport",
    "LDPGenProtocol",
    "LFGDPRProtocol",
    "ProgressPrinter",
    "RunManifest",
    "TelemetryCallbacks",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "__version__",
]
