"""Tests for the hybrid extension defense."""

import numpy as np
import pytest

from repro.core.clustering_attacks import ClusteringMGA
from repro.core.degree_attacks import DegreeMGA, DegreeRVA
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.defenses.base import detection_quality
from repro.defenses.evaluation import evaluate_defended_attack
from repro.defenses.hybrid import HybridDefense
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(400, 5, 0.5, rng=0)


@pytest.fixture(scope="module")
def threat(graph):
    return ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)


@pytest.fixture(scope="module")
def protocol():
    return LFGDPRProtocol(epsilon=4.0)


def attacked_reports(graph, threat, protocol, attack, seed=0):
    knowledge = AttackerKnowledge.from_protocol(protocol, graph)
    overrides = attack.craft(graph, threat, knowledge, rng=seed)
    return protocol.collect(graph, seed, overrides=overrides)


class TestConstruction:
    def test_rejects_bad_votes(self):
        with pytest.raises(ValueError):
            HybridDefense(min_votes=0)
        with pytest.raises(ValueError, match="vote count"):
            HybridDefense(min_votes=6)

    def test_rejects_bad_noise_z(self):
        with pytest.raises(ValueError):
            HybridDefense(noise_z=0.0)


class TestDetection:
    @pytest.mark.parametrize(
        "attack", [DegreeMGA(), DegreeRVA(), ClusteringMGA()],
        ids=lambda a: type(a).__name__,
    )
    def test_catches_every_attack_family(self, graph, threat, protocol, attack):
        """The point of the hybrid: no single-signal blind spot."""
        reports = attacked_reports(graph, threat, protocol, attack, seed=0)
        flagged = HybridDefense(itemset_threshold=50, min_votes=2).detect(reports)
        quality = detection_quality(flagged, threat.fake_users)
        assert quality.recall > 0.5, type(attack).__name__

    def test_clean_reports_low_false_positives(self, graph, protocol):
        clean = protocol.collect(graph, rng=0)
        flagged = HybridDefense(itemset_threshold=50, min_votes=2).detect(clean)
        assert flagged.size <= 0.02 * graph.num_nodes

    def test_union_flags_more_than_unanimous(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeMGA(), seed=0)
        union = HybridDefense(itemset_threshold=50, min_votes=1).detect(reports)
        unanimous = HybridDefense(itemset_threshold=50, min_votes=3).detect(reports)
        assert union.size >= unanimous.size

    def test_precision_better_than_individual_votes(self, graph, threat, protocol):
        """Two-vote agreement prunes single-signal false positives."""
        reports = attacked_reports(graph, threat, protocol, DegreeMGA(), seed=0)
        two_votes = HybridDefense(itemset_threshold=50, min_votes=2).detect(reports)
        one_vote = HybridDefense(itemset_threshold=50, min_votes=1).detect(reports)
        q2 = detection_quality(two_votes, threat.fake_users)
        q1 = detection_quality(one_vote, threat.fake_users)
        assert q2.precision >= q1.precision


class TestMitigation:
    def test_reduces_mga_degree_gain(self, graph, threat, protocol):
        from repro.core.gain import evaluate_attack

        undefended = np.mean(
            [
                evaluate_attack(graph, protocol, DegreeMGA(), threat, rng=s).total_gain
                for s in range(3)
            ]
        )
        defended = np.mean(
            [
                evaluate_defended_attack(
                    graph, protocol, DegreeMGA(),
                    HybridDefense(itemset_threshold=50), threat,
                    metric="degree_centrality", rng=s,
                ).total_gain
                for s in range(3)
            ]
        )
        assert defended < undefended
