"""The scenario catalog: every paper artifact plus cross-product extensions.

Importing this module (which ``repro.scenarios`` does eagerly) registers
each spec in :data:`~repro.scenarios.registry.SCENARIOS`.  A paper figure is
a ~10-line declaration here; adding a workload the paper never ran is a
one-liner combining registered attacks, protocols and defenses.

Naming: paper artifacts keep their figure names (``fig6`` ... ``fig15``,
``table2``); extensions live under ``xprod/`` to make their non-paper status
obvious in ``scenario list`` output.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.config import (
    BETAS,
    DATASET_NAMES,
    DETECT1_THRESHOLDS_CLUSTERING,
    DETECT1_THRESHOLDS_DEGREE,
    DETECT2_BETAS,
    EPSILONS,
    GAMMAS,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import (
    SWEEP_DEFENSE_ARG,
    SWEEP_FLAT,
    PanelSpec,
    ScenarioSpec,
    SeriesSpec,
)

#: The paper's attack series, in presentation order, per metric family.
DEGREE_SERIES = tuple(
    SeriesSpec(name=name, attack=f"degree/{name.lower()}") for name in ("RVA", "RNA", "MGA")
)
CLUSTERING_SERIES = tuple(
    SeriesSpec(name=name, attack=f"clustering/{name.lower()}")
    for name in ("RVA", "RNA", "MGA")
)


def _attack_sweep(
    name: str,
    figure: str,
    description: str,
    metric: str,
    parameter: str,
    values: Tuple[float, ...],
    series: Tuple[SeriesSpec, ...],
    tags: Tuple[str, ...],
) -> ScenarioSpec:
    """One Figs. 6-11 style sweep: three attacks, one swept point parameter."""
    return register_scenario(
        ScenarioSpec(
            name=name,
            description=description,
            metric=metric,
            parameter=parameter,
            values=values,
            panels=(PanelSpec(figure=figure, series=series),),
            tags=tags,
        )
    )


def _defense_threshold(
    name: str, figure: str, description: str, metric: str, attack: str,
    thresholds: Tuple[int, ...],
) -> ScenarioSpec:
    """One Figs. 12(a)/13(a) panel: Detect1 vs Naive1 vs no defense."""
    return register_scenario(
        ScenarioSpec(
            name=name,
            description=description,
            metric=metric,
            parameter="threshold",
            values=thresholds,
            seed_style="defense",
            panels=(
                PanelSpec(
                    figure=figure,
                    series=(
                        SeriesSpec(name="NoDefense", attack=attack, sweep=SWEEP_FLAT),
                        SeriesSpec(
                            name="Detect1", attack=attack, defense="detect1",
                            sweep=SWEEP_DEFENSE_ARG, sweep_arg="threshold",
                        ),
                        SeriesSpec(
                            name="Naive1", attack=attack, defense="naive1",
                            sweep=SWEEP_FLAT,
                        ),
                    ),
                ),
            ),
            tags=("defense",),
        )
    )


def _defense_beta(
    name: str, figure: str, description: str, metric: str, attack: str
) -> ScenarioSpec:
    """One Figs. 12(b)/13(b) panel: Detect2 vs Naive2 vs no defense over beta."""
    return register_scenario(
        ScenarioSpec(
            name=name,
            description=description,
            metric=metric,
            parameter="beta",
            values=DETECT2_BETAS,
            seed_style="defense",
            panels=(
                PanelSpec(
                    figure=figure,
                    series=(
                        SeriesSpec(name="NoDefense", attack=attack),
                        SeriesSpec(name="Detect2", attack=attack, defense="detect2"),
                        SeriesSpec(name="Naive2", attack=attack, defense="naive2"),
                    ),
                ),
            ),
            tags=("defense",),
        )
    )


def _protocol_panels(
    name: str, figure: str, description: str, metric: str
) -> ScenarioSpec:
    """One Figs. 14/15 comparison: the attack trio on LF-GDPR and on LDPGen."""
    panels = tuple(
        PanelSpec(
            figure=f"{figure}-{panel}",
            name=panel,
            series=tuple(
                SeriesSpec(name=s.name, attack=s.attack, protocol=protocol)
                for s in CLUSTERING_SERIES
            ),
        )
        for panel, protocol in (("LF-GDPR", "lfgdpr"), ("LDPGen", "ldpgen"))
    )
    return register_scenario(
        ScenarioSpec(
            name=name,
            description=description,
            metric=metric,
            parameter="epsilon",
            values=EPSILONS,
            panels=panels,
            tags=("protocols",),
        )
    )


# ---------------------------------------------------------------------------
# Paper artifacts (Table II and Figs. 6-15)
# ---------------------------------------------------------------------------
TABLE2 = register_scenario(
    ScenarioSpec(
        name="table2",
        description="Table II — dataset statistics (paper vs surrogate)",
        kind="stats",
        datasets=DATASET_NAMES,
    )
)

FIG6 = _attack_sweep(
    "fig6", "Fig6", "Fig. 6 — attacks to degree centrality vs epsilon",
    "degree_centrality", "epsilon", EPSILONS, DEGREE_SERIES, ("degree",),
)
FIG7 = _attack_sweep(
    "fig7", "Fig7", "Fig. 7 — impact of beta on degree-centrality attacks",
    "degree_centrality", "beta", BETAS, DEGREE_SERIES, ("degree",),
)
FIG8 = _attack_sweep(
    "fig8", "Fig8", "Fig. 8 — impact of gamma on degree-centrality attacks",
    "degree_centrality", "gamma", GAMMAS, DEGREE_SERIES, ("degree",),
)
FIG9 = _attack_sweep(
    "fig9", "Fig9", "Fig. 9 — attacks to clustering coefficient vs epsilon",
    "clustering_coefficient", "epsilon", EPSILONS, CLUSTERING_SERIES,
    ("clustering",),
)
FIG10 = _attack_sweep(
    "fig10", "Fig10", "Fig. 10 — impact of beta on clustering attacks",
    "clustering_coefficient", "beta", BETAS, CLUSTERING_SERIES,
    ("clustering",),
)
FIG11 = _attack_sweep(
    "fig11", "Fig11", "Fig. 11 — impact of gamma on clustering attacks",
    "clustering_coefficient", "gamma", GAMMAS, CLUSTERING_SERIES,
    ("clustering",),
)

FIG12A = _defense_threshold(
    "fig12a", "Fig12a", "Fig. 12(a) — Detect1 vs MGA on degree centrality",
    "degree_centrality", "degree/mga", DETECT1_THRESHOLDS_DEGREE,
)
FIG12B = _defense_beta(
    "fig12b", "Fig12b", "Fig. 12(b) — Detect2 vs RVA on degree centrality",
    "degree_centrality", "degree/rva",
)
FIG13A = _defense_threshold(
    "fig13a", "Fig13a", "Fig. 13(a) — Detect1 vs MGA on clustering coefficient",
    "clustering_coefficient", "clustering/mga", DETECT1_THRESHOLDS_CLUSTERING,
)
FIG13B = _defense_beta(
    "fig13b", "Fig13b", "Fig. 13(b) — Detect2 vs RVA on clustering coefficient",
    "clustering_coefficient", "clustering/rva",
)

FIG14 = _protocol_panels(
    "fig14", "Fig14", "Fig. 14 — LF-GDPR vs LDPGen, clustering coefficient",
    "clustering_coefficient",
)
FIG15 = _protocol_panels(
    "fig15", "Fig15", "Fig. 15 — LF-GDPR vs LDPGen, modularity",
    "modularity",
)

# ---------------------------------------------------------------------------
# Cross-product extensions (workloads the paper never ran)
# ---------------------------------------------------------------------------
UNTARGETED_HYBRID = register_scenario(
    ScenarioSpec(
        name="xprod/untargeted-vs-hybrid",
        description="Untargeted attack family with and without the hybrid defense",
        metric="degree_centrality",
        parameter="epsilon",
        values=(1.0, 2.0, 4.0, 8.0),
        panels=(
            PanelSpec(
                figure="XUntargetedHybrid",
                series=tuple(
                    SeriesSpec(name=f"{label}{suffix}", attack=attack, defense=defense)
                    for label, attack in (
                        ("U-Uniform", "untargeted/uniform"),
                        ("U-Concentrated", "untargeted/concentrated"),
                        ("U-Withdrawal", "untargeted/withdrawal"),
                    )
                    for suffix, defense in (("", ""), ("+Hybrid", "hybrid"))
                ),
            ),
        ),
        paper=False,
        tags=("untargeted", "defense"),
    )
)

PROTOCOL_DUEL_MGA = register_scenario(
    ScenarioSpec(
        name="xprod/protocol-duel-mga",
        description="LDPGen vs LF-GDPR under MGA at matched privacy budgets",
        metric="degree_centrality",
        parameter="epsilon",
        values=EPSILONS,
        panels=(
            PanelSpec(
                figure="XProtocolDuelMGA",
                series=(
                    SeriesSpec(name="LF-GDPR/MGA", attack="degree/mga", protocol="lfgdpr"),
                    SeriesSpec(name="LDPGen/MGA", attack="degree/mga", protocol="ldpgen"),
                ),
            ),
        ),
        paper=False,
        tags=("protocols",),
    )
)

#: One panel per dataset surrogate: the degree-attack trio measured on
#: facebook, enron and astroph in a single heterogeneous engine batch.
#: This is the canonical multi-graph workload — each panel's tasks carry a
#: different ``graph_key``, so a session fans the whole scenario out over
#: one persistent pool with every graph shared-memory-exported once
#: (gplus is left out to keep the golden replay laptop-fast).
CROSS_DATASET_MGA = register_scenario(
    ScenarioSpec(
        name="xprod/cross-dataset-mga",
        description="Degree-attack trio across three dataset surrogates in one batch",
        metric="degree_centrality",
        parameter="epsilon",
        values=(2.0, 4.0, 8.0),
        panels=tuple(
            PanelSpec(
                figure=f"XDataset-{dataset}",
                name=dataset,
                dataset=dataset,
                series=DEGREE_SERIES,
            )
            for dataset in ("facebook", "enron", "astroph")
        ),
        paper=False,
        tags=("datasets",),
    )
)

DEFENSE_MATRIX_MGA = register_scenario(
    ScenarioSpec(
        name="xprod/defense-matrix-mga",
        description="Every registered defense against clustering MGA across beta",
        metric="clustering_coefficient",
        parameter="beta",
        values=BETAS,
        panels=(
            PanelSpec(
                figure="XDefenseMatrixMGA",
                series=(
                    SeriesSpec(name="NoDefense", attack="clustering/mga"),
                    SeriesSpec(
                        name="Detect1", attack="clustering/mga", defense="detect1",
                        defense_args=(("threshold", 100),),
                    ),
                    SeriesSpec(name="Detect2", attack="clustering/mga", defense="detect2"),
                    SeriesSpec(name="Naive1", attack="clustering/mga", defense="naive1"),
                    SeriesSpec(name="Naive2", attack="clustering/mga", defense="naive2"),
                    SeriesSpec(name="Hybrid", attack="clustering/mga", defense="hybrid"),
                ),
            ),
        ),
        paper=False,
        tags=("defense",),
    )
)
