"""Catalog/registry tests: coverage and lookup semantics.

The coverage tests are deliberate gatekeepers: every attack, protocol and
defense registered in the engine must be reachable from at least one
registered scenario, so the golden harness exercises the *whole* component
surface — a newly registered component without a scenario fails here.
"""

import pytest

from repro.engine.registry import ATTACKS, DEFENSES, PROTOCOLS
from repro.scenarios.registry import SCENARIOS, get_scenario, register_scenario, scenario_names
from repro.scenarios.spec import PanelSpec, ScenarioSpec, SeriesSpec


def _all_series():
    for name in SCENARIOS:
        spec = SCENARIOS.create(name)
        for series in spec.all_series():
            yield spec, series


class TestComponentCoverage:
    def test_every_attack_has_a_scenario(self):
        used = {series.attack for _, series in _all_series()}
        missing = sorted(set(ATTACKS.names()) - used)
        assert not missing, f"attacks not covered by any scenario: {missing}"

    def test_every_defense_has_a_scenario(self):
        used = {series.defense for _, series in _all_series() if series.defense}
        missing = sorted(set(DEFENSES.names()) - used)
        assert not missing, f"defenses not covered by any scenario: {missing}"

    def test_every_protocol_has_a_scenario(self):
        used = {series.protocol for _, series in _all_series()}
        missing = sorted(set(PROTOCOLS.names()) - used)
        assert not missing, f"protocols not covered by any scenario: {missing}"

    def test_all_paper_artifacts_registered(self):
        names = set(SCENARIOS)
        for figure in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                       "fig12a", "fig12b", "fig13a", "fig13b", "fig14", "fig15",
                       "table2"):
            assert figure in names

    def test_at_least_three_extensions(self):
        extensions = scenario_names(paper=False)
        assert len(extensions) >= 3, extensions


class TestLookup:
    def test_get_scenario_retargets_dataset(self):
        spec = get_scenario("fig6", dataset="enron")
        assert spec.dataset == "enron"
        assert get_scenario("fig6").dataset == "facebook"

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            get_scenario("fig99")

    def test_tag_filter(self):
        degree = scenario_names(tag="degree")
        assert "fig6" in degree and "fig9" not in degree

    def test_origin_tags_derived_from_paper_flag(self):
        """paper/extension are never hand-written tags; they derive from
        spec.paper, so --tag and --extensions can't drift apart."""
        assert set(scenario_names(tag="paper")) == set(scenario_names(paper=True))
        assert set(scenario_names(tag="extension")) == set(scenario_names(paper=False))
        for name in scenario_names():
            assert "paper" not in SCENARIOS.create(name).tags
            assert "extension" not in SCENARIOS.create(name).tags

    def test_reregistration_rejected(self):
        spec = SCENARIOS.create("fig6")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)

    def test_registration_validates_components(self):
        bogus = ScenarioSpec(
            name="bogus/typo",
            description="d",
            values=(1.0,),
            panels=(
                PanelSpec(
                    figure="B", series=(SeriesSpec(name="X", attack="degree/typo"),)
                ),
            ),
        )
        with pytest.raises(KeyError, match="degree/typo"):
            register_scenario(bogus)
        assert "bogus/typo" not in SCENARIOS
