"""run_scenario / run_scenarios aggregation tests (tiny scales)."""

import pytest

from repro.engine.cache import NullCache
from repro.engine.session import EngineSession
from repro.experiments.config import ExperimentConfig
from repro.scenarios.registry import get_scenario
from repro.scenarios.run import prepare_scenario, run_scenario, run_scenarios

TINY = ExperimentConfig(trials=1, scale=0.02, seed=0, cache=False)


def _run(name, config=TINY):
    return run_scenario(get_scenario(name), config, cache=NullCache())


class TestSweepAggregation:
    def test_single_panel_unwraps(self):
        result = _run("fig6")
        sweep = result.sweep()
        assert set(sweep.series) == {"RVA", "RNA", "MGA"}
        assert len(sweep.series["MGA"]) == len(sweep.values) == 8

    def test_flat_series_replicated_across_grid(self):
        result = _run("fig12a")
        sweep = result.sweep()
        flat = sweep.series["NoDefense"]
        assert len(flat) == len(sweep.values)
        assert len(set(flat)) == 1, "flat reference must repeat one measurement"
        assert len(set(sweep.series["Detect1"])) > 1 or len(sweep.values) == 1

    def test_multi_panel_keys_and_unwrap_refusal(self):
        result = _run("fig14")
        assert sorted(result.panels) == ["LDPGen", "LF-GDPR"]
        with pytest.raises(ValueError, match="pick one explicitly"):
            result.sweep()

    def test_format_contains_every_panel(self):
        text = _run("fig14").format()
        assert "Fig14-LF-GDPR" in text and "Fig14-LDPGen" in text

    def test_series_order_matches_spec(self):
        spec = get_scenario("fig12a")
        sweep = _run("fig12a").sweep()
        assert list(sweep.series) == [s.name for s in spec.panels[0].series]


class TestStats:
    def test_table2_rows(self):
        result = _run("table2")
        assert result.table is not None
        assert [row[0] for row in result.table] == ["facebook", "enron", "astroph", "gplus"]
        assert "facebook" in result.format()

    def test_dataset_override_narrows_stats(self):
        spec = get_scenario("table2", dataset="enron")
        result = run_scenario(spec, TINY)
        assert [row[0] for row in result.table] == ["enron"]


class TestOverrides:
    def test_dataset_override_changes_graph(self):
        facebook = _run("fig6").sweep()
        enron = run_scenario(
            get_scenario("fig6", dataset="enron"), TINY, cache=NullCache()
        ).sweep()
        assert facebook.dataset == "facebook" and enron.dataset == "enron"
        assert facebook.series != enron.series


class TestCrossDataset:
    """Panels pinned to different datasets compile to one multi-graph batch."""

    def test_panels_carry_their_own_graphs(self):
        spec = get_scenario("xprod/cross-dataset-mga")
        graphs, labels, tasks = prepare_scenario(spec, TINY)
        assert list(graphs) == ["facebook", "enron", "astroph"]
        assert len({id(graph) for graph in graphs.values()}) == 3
        keys_by_panel = {
            panel: {task.graph_key for task in tasks if task.figure == f"XDataset-{panel}"}
            for panel in graphs
        }
        assert all(len(keys) == 1 for keys in keys_by_panel.values())
        assert len(set().union(*keys_by_panel.values())) == 3, "distinct graphs per panel"

    def test_result_has_one_sweep_per_dataset(self):
        result = _run("xprod/cross-dataset-mga")
        assert list(result.panels) == ["facebook", "enron", "astroph"]
        for dataset, sweep in result.panels.items():
            assert sweep.dataset == dataset
            assert set(sweep.series) == {"RVA", "RNA", "MGA"}

    def test_dataset_override_does_not_move_pinned_panels(self):
        spec = get_scenario("xprod/cross-dataset-mga", dataset="enron")
        assert [panel.dataset for panel in spec.panels] == ["facebook", "enron", "astroph"]


class TestRunScenarios:
    """Several scenarios batch into one session and stay bit-identical."""

    def test_matches_individual_runs(self):
        names = ["fig6", "xprod/cross-dataset-mga", "table2"]
        specs = [get_scenario(name) for name in names]
        batched = run_scenarios(specs, TINY)
        assert list(batched) == names
        for spec in specs:
            alone = run_scenario(spec, TINY, cache=NullCache())
            together = batched[spec.name]
            if alone.table is not None:
                assert together.table == alone.table
                continue
            for key, sweep in alone.panels.items():
                assert together.panels[key].series == sweep.series
                assert together.panels[key].stderr == sweep.stderr

    def test_shared_session_registers_each_graph_once(self):
        specs = [get_scenario("fig6"), get_scenario("fig7")]  # same dataset
        with EngineSession(jobs=1) as session:
            run_scenarios(specs, TINY, session=session)
            assert len(session.graphs) == 1, "one facebook surrogate, one entry"

    def test_duplicate_names_rejected(self):
        spec = get_scenario("fig6")
        with pytest.raises(ValueError, match="duplicate"):
            run_scenarios([spec, spec], TINY)
