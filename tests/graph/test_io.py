"""Tests for repro.graph.io."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        # Node 2..4 appear in edges, so compaction preserves the edge structure;
        # read with explicit num_nodes to preserve isolated-node labelling.
        back = read_edge_list(path, num_nodes=5)
        assert back == g

    def test_header_is_comment(self, tmp_path):
        g = Graph(3, [(0, 1)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("#")


class TestRead:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_compaction(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("100 200\n200 300\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_self_loops_rejected_by_default(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 0\n0 1\n")
        with pytest.raises(ValueError, match=r"edges\.txt:1: self-loop 0 0"):
            read_edge_list(path)

    def test_self_loops_skipped_on_opt_out(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 0\n0 1\n")
        g = read_edge_list(path, allow_self_loops=True)
        assert g.num_edges == 1

    def test_explicit_num_nodes(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_nodes=10)
        assert g.num_nodes == 10

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected 'u v'"):
            read_edge_list(path)

    def test_non_integer_id_names_the_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 two\n")
        with pytest.raises(ValueError, match=r"edges\.txt:2: non-integer"):
            read_edge_list(path)

    def test_negative_id_names_the_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n-3 2\n")
        with pytest.raises(ValueError, match=r"edges\.txt:2: negative node id -3"):
            read_edge_list(path)

    def test_id_out_of_range_for_num_nodes(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 7\n")
        with pytest.raises(ValueError, match=r"edges\.txt:2: node id 7 out of range"):
            read_edge_list(path, num_nodes=5)

    def test_duplicate_edges_rejected_by_default(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(
            ValueError, match=r"edges\.txt:2: duplicate edge 1 0 \(first at line 1"
        ):
            read_edge_list(path)

    def test_duplicate_edges_collapse_on_opt_out(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        g = read_edge_list(path, allow_duplicates=True)
        assert g.num_edges == 1
