"""Extension — the hybrid defense vs the paper's countermeasures.

Not a paper figure: this bench evaluates the "new defense" the paper's
conclusion calls for.  For each attack family the residual gain and detector
quality of every defense are reported side by side.

What the table shows: *detection* is solvable — the hybrid reaches full
recall on every attack family, closing the single-signal blind spots
(Detect1 cannot see RVA, Detect2 alone can be fooled by consistent crafted
degrees).  *Repair* is not: with tens of flagged users, any repair
(removal or resampling) perturbs enough genuine pairs that the residual
distortion stays comparable to the smaller attacks.  That is a quantified
restatement of the paper's conclusion that current countermeasures cannot
effectively offset the attacks.
"""

import numpy as np
from conftest import bench_config, bench_trials, emit

from repro.core.clustering_attacks import ClusteringMGA
from repro.core.degree_attacks import DegreeMGA, DegreeRVA
from repro.core.gain import evaluate_attack
from repro.core.threat_model import ThreatModel
from repro.defenses.degree_consistency import DegreeConsistencyDefense
from repro.defenses.evaluation import evaluate_defended_attack
from repro.defenses.frequent_itemset import FrequentItemsetDefense
from repro.defenses.hybrid import HybridDefense
from repro.experiments.reporting import format_table
from repro.graph.datasets import load_dataset
from repro.protocols.lfgdpr import LFGDPRProtocol

def _evading_mga():
    return DegreeMGA(evade_consistency=True)


ATTACKS = [
    ("MGA/degree", DegreeMGA, "degree_centrality"),
    ("MGA-evade/degree", _evading_mga, "degree_centrality"),
    ("RVA/degree", DegreeRVA, "degree_centrality"),
    ("MGA/clustering", ClusteringMGA, "clustering_coefficient"),
]


def _defenses():
    return [
        ("Detect1", FrequentItemsetDefense(threshold=75)),
        ("Detect2", DegreeConsistencyDefense()),
        ("Hybrid", HybridDefense(itemset_threshold=75)),
    ]


def test_hybrid_defense_comparison(benchmark):
    config = bench_config("facebook")
    graph = load_dataset("facebook", scale=config.scale, rng=config.seed)
    protocol = LFGDPRProtocol(epsilon=4.0)
    trials = max(2, bench_trials())

    def run():
        rows = []
        for attack_name, attack_cls, metric in ATTACKS:
            threat = ThreatModel.sample(graph, 0.05, 0.05, rng=0)
            undefended = np.mean(
                [
                    evaluate_attack(
                        graph, protocol, attack_cls(), threat, metric=metric, rng=s
                    ).total_gain
                    for s in range(trials)
                ]
            )
            rows.append([attack_name, "(none)", undefended, np.nan, np.nan])
            for defense_name, defense in _defenses():
                outcomes = [
                    evaluate_defended_attack(
                        graph, protocol, attack_cls(), defense, threat,
                        metric=metric, rng=s,
                    )
                    for s in range(trials)
                ]
                rows.append(
                    [
                        attack_name,
                        defense_name,
                        float(np.mean([o.total_gain for o in outcomes])),
                        float(np.mean([o.quality.precision for o in outcomes])),
                        float(np.mean([o.quality.recall for o in outcomes])),
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_hybrid_defense",
        format_table(
            ["attack", "defense", "residual gain", "precision", "recall"],
            rows,
            title="Extension — hybrid defense vs the paper's countermeasures (eps=4)",
        ),
    )
    recalls = {(row[0], row[1]): row[4] for row in rows if row[1] != "(none)"}
    gains = {(row[0], row[1]): row[2] for row in rows}
    for attack_name, _, _ in ATTACKS:
        # Detection claim: the hybrid has no blind spot — its recall matches
        # the best single-signal detector on every family.
        best_single = max(
            recalls[(attack_name, "Detect1")], recalls[(attack_name, "Detect2")]
        )
        assert recalls[(attack_name, "Hybrid")] >= best_single - 1e-9, attack_name
    # Repair headroom exists where the attack is large: degree MGA shrinks.
    assert gains[("MGA/degree", "Hybrid")] < gains[("MGA/degree", "(none)")]
