"""Tests for the storage-plane integrity layer.

Pinned here:

* every appended shard line carries a CRC32 checksum; pre-checksum lines
  stay readable (no ``CACHE_VERSION`` bump);
* a flipped byte is **detected** (``cache verify``, exit 1), **quarantined**
  (``cache repair``) and **recomputed exactly once** — the replayed sweep is
  bit-identical (sha256) to the original;
* repair preserves last-writer-wins winners byte for byte and leaves clean
  shards untouched;
* a non-finite gain raises a structured error naming the task at the
  estimator→store boundary, before it can reach disk;
* gc prunes expired leases, stale temps and migrated legacy files — and
  nothing live.
"""

import hashlib
import io
import json
import math
import os
import time

import pytest

from repro.engine import integrity
from repro.engine.cache import CACHE_VERSION, NullCache, ResultCache
from repro.engine.executors import SerialExecutor, run_tasks
from repro.engine.integrity import (
    REASON_BAD_CHECKSUM,
    REASON_NON_FINITE,
    REASON_TORN_LINE,
    REASON_UNPARSEABLE,
    CHECKSUM_FIELD,
    NonFiniteGainError,
    Quarantine,
    canonical_json,
    ensure_finite_gain,
    entry_checksum,
    gc_store,
    inspect_line,
    repair_store,
    salvage_line,
    stamp_checksum,
    verify_store,
)
from repro.engine.result_store import ShardedResultStore
from repro.engine.tasks import (
    TrialTask,
    derive_trial_seed,
    graph_fingerprint,
    identity_payload,
)
from repro.experiments.cli import run as cli_run
from repro.graph.generators import powerlaw_cluster_graph


class CountingExecutor(SerialExecutor):
    def __init__(self):
        self.executed = 0

    def execute(self, tasks, graph, labels=None):
        self.executed += len(tasks)
        return super().execute(tasks, graph, labels)


class NaNExecutor(SerialExecutor):
    """An estimator gone wrong: returns NaN for every task."""

    def execute(self, tasks, graph, labels=None):
        return [float("nan")] * len(tasks)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(100, 3, 0.4, rng=0)


def make_tasks(graph, count, tag="integrity"):
    graph_key = graph_fingerprint(graph)
    return [
        TrialTask(
            graph_key=graph_key, metric="degree_centrality",
            attack="degree/rva", protocol="lfgdpr",
            epsilon=4.0, beta=0.05, gamma=0.05,
            seed=derive_trial_seed(0, f"{tag}|{index}"), trial=index,
        )
        for index in range(count)
    ]


def _sha256_of(gains):
    return hashlib.sha256(
        json.dumps([float(g) for g in gains]).encode("ascii")
    ).hexdigest()


def _flip_gain_digit(shard_path):
    """Flip one gain digit in the first shard line: valid JSON, wrong CRC."""
    lines = shard_path.read_text(encoding="utf-8").splitlines(keepends=True)
    target = lines[0]
    start = target.index('"gain":') + len('"gain":')
    for offset in range(start, len(target)):
        if target[offset].isdigit():
            flipped = "7" if target[offset] != "7" else "3"
            lines[0] = target[:offset] + flipped + target[offset + 1:]
            break
    else:  # pragma: no cover - gains always carry digits
        raise AssertionError("no digit to flip")
    shard_path.write_text("".join(lines), encoding="utf-8")


class TestChecksums:
    def test_stamp_and_inspect_roundtrip(self):
        entry = {"cache_version": 1, "hash": "ab" * 32, "task": {}, "gain": 0.5}
        stamped = stamp_checksum(entry)
        assert stamped[CHECKSUM_FIELD] == entry_checksum(entry)
        parsed, reason = inspect_line(canonical_json(stamped))
        assert reason is None and parsed == stamped

    def test_put_stamps_a_verifiable_crc(self, graph, tmp_path):
        store = ShardedResultStore(tmp_path)
        (task,) = make_tasks(graph, 1, "crc")
        store.put(task, 1.25)
        (line,) = store.shard_path(task.content_hash()[:2]).read_text().splitlines()
        entry = json.loads(line)
        assert entry[CHECKSUM_FIELD] == entry_checksum(entry)

    def test_unchecksummed_lines_stay_readable(self, graph, tmp_path):
        """Pre-integrity shards answer unchanged — no CACHE_VERSION bump."""
        (task,) = make_tasks(graph, 1, "legacyline")
        digest = task.content_hash()
        legacy_entry = {
            "cache_version": CACHE_VERSION, "hash": digest,
            "task": identity_payload(task),
            "gain": 2.5,
        }
        store = ShardedResultStore(tmp_path)
        store._append(digest, legacy_entry)  # exactly what old code wrote
        fresh = ShardedResultStore(tmp_path)
        assert fresh.get(task) == 2.5
        assert fresh.stats()["corrupt"] == 0

    def test_flipped_byte_is_a_counted_quarantined_miss(self, graph, tmp_path):
        (task,) = make_tasks(graph, 1, "flip")
        store = ShardedResultStore(tmp_path)
        store.put(task, 1.5)
        _flip_gain_digit(store.shard_path(task.content_hash()[:2]))
        fresh = ShardedResultStore(tmp_path)
        assert fresh.get(task) is None, "a corrupt entry must never answer"
        assert fresh.corrupt == 1
        records = fresh.quarantine.entries()
        assert len(records) == 1
        assert records[0]["reason"] == REASON_BAD_CHECKSUM
        assert records[0]["source"] == f"shard-{task.content_hash()[:2]}.jsonl"


class TestInspectAndSalvage:
    def test_torn_prefix_classified_as_torn(self):
        entry, reason = inspect_line('{"cache_version":1,"hash":"de')
        assert entry is None and reason == REASON_TORN_LINE

    def test_garbage_object_classified_unparseable(self):
        entry, reason = inspect_line('{"cache_version": oops}')
        assert entry is None and reason == REASON_UNPARSEABLE
        entry, reason = inspect_line('{"cache_version":1,"hash":42,"gain":1.0}')
        assert entry is None and reason == REASON_UNPARSEABLE

    def test_nonfinite_gain_literal_rejected(self):
        raw = '{"cache_version":1,"gain":NaN,"hash":"ab","task":{}}'
        entry, reason = inspect_line(raw)
        assert entry is None and reason == REASON_NON_FINITE

    def test_salvage_recovers_record_behind_torn_fragment(self):
        good = stamp_checksum(
            {"cache_version": 1, "hash": "ff" * 32, "task": {}, "gain": 3.0}
        )
        merged = '{"cache_version":1,"hash":"dead' + canonical_json(good)
        entry, fragment = salvage_line(merged)
        assert entry == good
        assert fragment == '{"cache_version":1,"hash":"dead'

    def test_salvage_refuses_corrupt_suffix(self):
        good = stamp_checksum(
            {"cache_version": 1, "hash": "ff" * 32, "task": {}, "gain": 3.0}
        )
        tampered = canonical_json(good).replace('"gain":3.0', '"gain":4.0')
        entry, fragment = salvage_line('{"cache_version":1,"x' + tampered)
        assert entry is None and fragment is None


class TestQuarantine:
    def test_layout_and_roundtrip(self, tmp_path):
        quarantine = Quarantine(tmp_path)
        assert quarantine.add("shard-ab.jsonl", 3, '{"torn', REASON_TORN_LINE)
        path = tmp_path / "quarantine" / "shard-ab.jsonl.jsonl"
        assert path.is_file()
        (record,) = quarantine.entries()
        assert record == {
            "source": "shard-ab.jsonl", "line": 3,
            "reason": REASON_TORN_LINE, "raw": '{"torn',
        }

    def test_same_damage_recorded_once(self, tmp_path):
        quarantine = Quarantine(tmp_path)
        assert quarantine.add("shard-ab.jsonl", 3, "xyz", REASON_UNPARSEABLE)
        assert not quarantine.add("shard-ab.jsonl", 3, "xyz", REASON_UNPARSEABLE)
        assert quarantine.added == 1


class TestNonFiniteGuard:
    def test_error_names_the_task_and_seed(self, graph):
        (task,) = make_tasks(graph, 1, "nan")
        with pytest.raises(NonFiniteGainError) as excinfo:
            ensure_finite_gain(task, float("inf"))
        message = str(excinfo.value)
        assert task.content_hash() in message
        assert f"seed={task.seed}" in message
        assert excinfo.value.task is task

    def test_store_put_refuses_nan(self, graph, tmp_path):
        store = ShardedResultStore(tmp_path)
        (task,) = make_tasks(graph, 1, "nanput")
        with pytest.raises(NonFiniteGainError):
            store.put(task, float("nan"))
        assert store.appends == 0
        assert not list(tmp_path.glob("shard-*.jsonl"))

    def test_estimator_boundary_guard_fires_even_uncached(self, graph):
        (task,) = make_tasks(graph, 1, "nanexec")
        with pytest.raises(NonFiniteGainError):
            run_tasks([task], graph, executor=NaNExecutor(), cache=NullCache())

    def test_nonfinite_legacy_entry_is_counted_corrupt(self, graph, tmp_path):
        (task,) = make_tasks(graph, 1, "nanlegacy")
        legacy = ResultCache(tmp_path)
        legacy.put(task, 1.0)
        path = tmp_path / task.content_hash()[:2] / f"{task.content_hash()}.json"
        path.write_text(path.read_text().replace("1.0", "NaN"))
        store = ShardedResultStore(tmp_path)
        assert store.get(task) is None
        assert store.legacy_corrupt == 1
        (record,) = store.quarantine.entries()
        assert record["reason"] == REASON_NON_FINITE


class TestLegacyCorruptCounter:
    def test_unparseable_legacy_file_is_counted_and_quarantined(self, graph, tmp_path):
        (task,) = make_tasks(graph, 1, "legacycorrupt")
        digest = task.content_hash()
        directory = tmp_path / digest[:2]
        directory.mkdir(parents=True)
        (directory / f"{digest}.json").write_text("{not json")
        store = ShardedResultStore(tmp_path)
        assert store.get(task) is None
        assert store.legacy_corrupt == 1
        assert store.stats()["legacy_corrupt"] == 1
        (record,) = store.quarantine.entries()
        assert record["reason"] == REASON_UNPARSEABLE


class TestVerifyRepairAcceptance:
    def test_flip_detect_repair_replay_bit_identical(self, graph, tmp_path):
        """The ISSUE's acceptance flow, end to end."""
        tasks = make_tasks(graph, 8, "accept")
        store = ShardedResultStore(tmp_path)
        original = run_tasks(tasks, graph, executor=SerialExecutor(), cache=store)
        clean_sha = _sha256_of(original)

        # Flip one byte in a warm shard.
        victim = tasks[0].content_hash()[:2]
        _flip_gain_digit(store.shard_path(victim))

        # verify detects (exit 1, names the shard and reason)...
        out = io.StringIO()
        assert cli_run(["cache", "verify", "--dir", str(tmp_path)], out=out) == 1
        report = out.getvalue()
        assert f"shard-{victim}.jsonl" in report and REASON_BAD_CHECKSUM in report

        # ...repair quarantines...
        out = io.StringIO()
        assert cli_run(["cache", "repair", "--dir", str(tmp_path)], out=out) == 0
        assert "quarantined 1 corrupt line(s)" in out.getvalue()
        assert len(Quarantine(tmp_path).entries()) == 1

        # ...the store is clean again...
        assert cli_run(["cache", "verify", "--dir", str(tmp_path)], out=io.StringIO()) == 0

        # ...and the replay recomputes exactly the quarantined task,
        # landing bit-identical to the clean run.
        executor = CountingExecutor()
        replay = run_tasks(
            tasks, graph, executor=executor, cache=ShardedResultStore(tmp_path)
        )
        assert executor.executed == 1
        assert _sha256_of(replay) == clean_sha

    def test_repair_preserves_winners_bit_identically(self, graph, tmp_path):
        """Superseded duplicates drop; the winning raw line's bytes survive."""
        (task,) = make_tasks(graph, 1, "winner")
        digest = task.content_hash()
        store = ShardedResultStore(tmp_path)
        loser = stamp_checksum({
            "cache_version": CACHE_VERSION, "hash": digest, "task": {}, "gain": 1.0,
        })
        store._append(digest, loser)
        store.put(task, 2.0)  # the last writer: must win repair verbatim
        shard = store.shard_path(digest[:2])
        winning_line = shard.read_text().splitlines()[-1]

        report = repair_store(tmp_path)
        assert report.superseded_dropped == 1 and report.shards_rewritten == 1
        assert shard.read_text() == winning_line + "\n"
        assert ShardedResultStore(tmp_path).get(task) == 2.0

    def test_repair_leaves_clean_shards_untouched(self, graph, tmp_path):
        tasks = make_tasks(graph, 4, "clean")
        store = ShardedResultStore(tmp_path)
        for index, task in enumerate(tasks):
            store.put(task, float(index))
        before = {
            path.name: path.read_bytes()
            for path in tmp_path.glob("shard-*.jsonl")
        }
        report = repair_store(tmp_path)
        assert report.shards_rewritten == 0 and report.quarantined == 0
        after = {
            path.name: path.read_bytes()
            for path in tmp_path.glob("shard-*.jsonl")
        }
        assert after == before

    def test_verify_reports_unchecksummed_and_superseded(self, graph, tmp_path):
        (task,) = make_tasks(graph, 1, "mixed")
        digest = task.content_hash()
        store = ShardedResultStore(tmp_path)
        store._append(digest, {
            "cache_version": CACHE_VERSION, "hash": digest, "task": {}, "gain": 1.0,
        })
        store.put(task, 2.0)
        report = verify_store(tmp_path)
        assert report.corrupt_total == 0
        assert report.distinct_total == 1
        (shard,) = report.shards
        assert shard.superseded == 1
        assert shard.unchecksummed == 1 and shard.checksummed == 1


class TestGc:
    def test_gc_prunes_expired_not_live(self, graph, tmp_path):
        leases = tmp_path / "leases"
        leases.mkdir(parents=True)
        dead = leases / "range-00-7f.json"
        dead.write_text('{"owner": "crashed", "beat": 3}')
        stale_temp = leases / ".range-80-ff.json.crashed.tmp"
        stale_temp.write_text("{")
        old = time.time() - 3600
        os.utime(dead, (old, old))
        os.utime(stale_temp, (old, old))
        live = leases / "range-80-ff.json"
        live.write_text('{"owner": "alive", "beat": 9}')

        # A migrated legacy file (its hash answers from the shard) and an
        # unmigrated one (shard knows nothing about it).
        migrated, unmigrated = make_tasks(graph, 2, "gc")
        legacy = ResultCache(tmp_path)
        legacy.put(migrated, 1.0)
        legacy.put(unmigrated, 2.0)
        store = ShardedResultStore(tmp_path)
        assert store.get(migrated) == 1.0  # read-through migrates forward

        report = gc_store(tmp_path, lease_ttl=30.0)
        assert report.leases_pruned == 1 and report.temp_files_pruned == 1
        assert report.legacy_pruned == 1
        assert live.is_file() and not dead.exists() and not stale_temp.exists()
        fresh = ShardedResultStore(tmp_path)
        assert fresh.get(migrated) == 1.0, "migrated results must survive gc"
        assert fresh.get(unmigrated) == 2.0, "unmigrated legacy files are live"

    def test_cli_gc_and_stats(self, tmp_path):
        out = io.StringIO()
        assert cli_run(["cache", "gc", "--dir", str(tmp_path)], out=out) == 0
        assert "pruned 0 expired lease(s)" in out.getvalue()
        out = io.StringIO()
        assert cli_run(["cache", "stats", "--dir", str(tmp_path)], out=out) == 0
        assert "store is clean" in out.getvalue()
