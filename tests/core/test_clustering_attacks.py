"""Tests for the clustering-coefficient attacks."""

import numpy as np
import pytest

from repro.core.clustering_attacks import ClusteringMGA, ClusteringRNA, ClusteringRVA
from repro.core.gain import evaluate_attack
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(400, 5, 0.5, rng=0)


@pytest.fixture(scope="module")
def threat(graph):
    return ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)


@pytest.fixture(scope="module")
def knowledge(graph):
    return AttackerKnowledge.from_protocol(LFGDPRProtocol(epsilon=4.0), graph)


class TestCraftingContracts:
    @pytest.mark.parametrize(
        "attack", [ClusteringRVA(), ClusteringRNA(), ClusteringMGA()]
    )
    def test_one_report_per_fake_user(self, attack, graph, threat, knowledge):
        overrides = attack.craft(graph, threat, knowledge, rng=0)
        assert sorted(overrides) == threat.fake_users.tolist()

    @pytest.mark.parametrize(
        "attack", [ClusteringRVA(), ClusteringRNA(), ClusteringMGA()]
    )
    def test_no_self_claims(self, attack, graph, threat, knowledge):
        overrides = attack.craft(graph, threat, knowledge, rng=1)
        for fake, report in overrides.items():
            assert fake not in report.claimed_neighbors


class TestMGAPairing:
    def test_paired_fakes_claim_each_other(self, graph, threat, knowledge):
        overrides = ClusteringMGA().craft(graph, threat, knowledge, rng=0)
        fake_set = set(threat.fake_users.tolist())
        mutual = 0
        for fake, report in overrides.items():
            partners = fake_set.intersection(report.claimed_neighbors.tolist())
            for partner in partners:
                if fake in overrides[partner].claimed_neighbors:
                    mutual += 1
        # m=20 fakes -> 10 pairs -> 20 mutual claim endpoints.
        assert mutual == 2 * (threat.num_fake // 2)

    def test_pairs_share_targets(self, graph, threat, knowledge):
        overrides = ClusteringMGA().craft(graph, threat, knowledge, rng=0)
        fake_set = set(threat.fake_users.tolist())
        for fake, report in overrides.items():
            partners = fake_set.intersection(report.claimed_neighbors.tolist())
            for partner in partners:
                mine = np.intersect1d(report.claimed_neighbors, threat.targets)
                theirs = np.intersect1d(
                    overrides[partner].claimed_neighbors, threat.targets
                )
                assert np.array_equal(mine, theirs), "pair must share its target set"

    def test_budget_respected(self, graph, threat, knowledge):
        overrides = ClusteringMGA().craft(graph, threat, knowledge, rng=0)
        for report in overrides.values():
            assert report.claimed_neighbors.size <= knowledge.connection_budget

    def test_no_pairing_variant_has_no_fake_fake_edges(self, graph, threat, knowledge):
        overrides = ClusteringMGA(prioritize_fake_edges=False).craft(
            graph, threat, knowledge, rng=0
        )
        fake_set = set(threat.fake_users.tolist())
        for report in overrides.values():
            assert not fake_set.intersection(report.claimed_neighbors.tolist())

    def test_odd_fake_count_leftover_targets_only(self, graph, knowledge):
        threat = ThreatModel(
            fake_users=np.arange(5), targets=np.arange(10, 30), num_nodes=graph.num_nodes
        )
        overrides = ClusteringMGA().craft(graph, threat, knowledge, rng=0)
        assert len(overrides) == 5
        fake_set = set(range(5))
        solo_reports = [
            report
            for report in overrides.values()
            if not fake_set.intersection(report.claimed_neighbors.tolist())
        ]
        assert len(solo_reports) == 1

    def test_unbounded_variant_claims_all_targets(self, graph, threat, knowledge):
        overrides = ClusteringMGA(respect_budget=False).craft(
            graph, threat, knowledge, rng=0
        )
        for report in overrides.values():
            claimed_targets = np.intersect1d(report.claimed_neighbors, threat.targets)
            assert claimed_targets.size == threat.num_targets

    def test_degree_report_noisy(self, graph, threat, knowledge):
        overrides = ClusteringMGA().craft(graph, threat, knowledge, rng=0)
        degrees = [report.reported_degree for report in overrides.values()]
        assert any(abs(d - round(d)) > 1e-9 for d in degrees)


class TestAttackOrdering:
    def test_mga_beats_rva_beats_rna(self, graph, threat):
        """The paper's headline ordering on clustering coefficient (Exp 4-6)."""
        protocol = LFGDPRProtocol(epsilon=4.0)
        gains = {}
        for attack in (ClusteringMGA(), ClusteringRVA(), ClusteringRNA()):
            totals = [
                evaluate_attack(
                    graph,
                    protocol,
                    attack,
                    threat,
                    metric="clustering_coefficient",
                    rng=seed,
                ).total_gain
                for seed in range(3)
            ]
            gains[attack.name] = np.mean(totals)
        assert gains["MGA"] > gains["RVA"] > gains["RNA"]

    def test_prioritized_allocation_matters(self, graph, threat):
        """Without fake-fake edges MGA cannot close triangles (ablation)."""
        protocol = LFGDPRProtocol(epsilon=4.0)

        def mean_gain(attack):
            return np.mean(
                [
                    evaluate_attack(
                        graph,
                        protocol,
                        attack,
                        threat,
                        metric="clustering_coefficient",
                        rng=seed,
                    ).total_gain
                    for seed in range(4)
                ]
            )

        assert mean_gain(ClusteringMGA()) > mean_gain(
            ClusteringMGA(prioritize_fake_edges=False)
        )
