"""Tests for the lease-coordinated distributed executor.

Load-bearing guarantees pinned here:

* any fleet size, interleaving or crash pattern produces gains
  **bit-identical** to a serial run (tasks are self-seeded, the store is
  last-writer-wins);
* leases actually partition work — concurrent workers never duplicate a
  task's computation while both are alive;
* dead workers' ranges are reclaimed after the lease TTL, live workers'
  never are.
"""

import hashlib
import json
import threading
import time

import pytest

from repro.engine.cache import NullCache
from repro.engine.distributed import (
    PREFIX_SPACE,
    DistributedExecutor,
    LeaseDirectory,
    default_worker_id,
    shard_ranges,
)
from repro.engine.executors import SerialExecutor, run_batch
from repro.engine.graph_store import GraphStore
from repro.engine.result_store import ShardedResultStore
from repro.engine.tasks import TrialTask, derive_trial_seed, graph_fingerprint
from repro.graph.generators import powerlaw_cluster_graph


def _sha256_of(gains):
    return hashlib.sha256(
        json.dumps([float(g) for g in gains]).encode("ascii")
    ).hexdigest()


def make_tasks(graph, count, tag="dist"):
    graph_key = graph_fingerprint(graph)
    return [
        TrialTask(
            graph_key=graph_key, metric="degree_centrality",
            attack=("degree/mga" if index % 2 else "degree/rva"),
            protocol="lfgdpr", epsilon=4.0, beta=0.05, gamma=0.05,
            seed=derive_trial_seed(0, f"{tag}|{index}"), trial=index,
        )
        for index in range(count)
    ]


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(80, 3, 0.4, rng=0)


@pytest.fixture(scope="module")
def batch(graph):
    return make_tasks(graph, 16)


@pytest.fixture(scope="module")
def serial_sha(graph, batch):
    with GraphStore() as graphs:
        graphs.add(graph)
        return _sha256_of(
            run_batch(batch, graphs, executor=SerialExecutor(), cache=NullCache())
        )


class TestShardRanges:
    def test_ranges_tile_the_prefix_space(self):
        for count in (1, 2, 16, 100, 256):
            ranges = shard_ranges(count)
            covered = [
                prefix for lo, hi in ranges for prefix in range(lo, hi + 1)
            ]
            assert covered == list(range(PREFIX_SPACE)), count
            assert len(ranges) == count

    def test_degenerate_counts_clamp(self):
        assert shard_ranges(0) == [(0, 255)]
        assert shard_ranges(-5) == [(0, 255)]
        assert len(shard_ranges(10_000)) == PREFIX_SPACE


class TestLeaseDirectory:
    def test_claim_is_exclusive_and_readoptable(self, tmp_path):
        bounds = (0, 255)
        mine = LeaseDirectory(tmp_path, "alice", ttl=60)
        other = LeaseDirectory(tmp_path, "bob", ttl=60)
        assert mine.try_claim(bounds)
        assert mine.holds(bounds)
        assert not other.try_claim(bounds), "a live foreign lease was stolen"
        assert mine.try_claim(bounds), "re-claiming our own lease must work"
        mine.release(bounds)
        assert other.try_claim(bounds), "a released lease must be claimable"

    def test_expired_lease_is_reclaimed(self, tmp_path):
        bounds = (0, 255)
        dead = LeaseDirectory(tmp_path, "dead-worker", ttl=60)
        assert dead.try_claim(bounds)
        vulture = LeaseDirectory(tmp_path, "vulture", ttl=0.1)
        assert not vulture.try_claim(bounds), "first sight only starts the clock"
        time.sleep(0.15)
        assert vulture.try_claim(bounds), "a silent lease must expire"
        assert vulture.holds(bounds)

    def test_heartbeats_block_reclaim(self, tmp_path):
        bounds = (0, 255)
        alive = LeaseDirectory(tmp_path, "alive", ttl=60)
        assert alive.try_claim(bounds)
        vulture = LeaseDirectory(tmp_path, "vulture", ttl=0.2)
        deadline = time.monotonic() + 0.6
        with alive.heartbeats(interval=0.05):
            while time.monotonic() < deadline:
                assert not vulture.try_claim(bounds), (
                    "a heartbeating lease must never be reclaimed"
                )
                time.sleep(0.05)
        assert alive.beats > 0

    def test_lost_lease_is_detected_and_dropped(self, tmp_path):
        bounds = (0, 255)
        slow = LeaseDirectory(tmp_path, "slow", ttl=60)
        assert slow.try_claim(bounds)
        vulture = LeaseDirectory(tmp_path, "vulture", ttl=0.1)
        vulture.try_claim(bounds)
        time.sleep(0.15)
        assert vulture.try_claim(bounds)
        slow.heartbeat_all()
        assert slow.lost == 1
        assert not slow.holds(bounds), "a usurped lease must be abandoned"
        assert vulture.holds(bounds)

    def test_corrupt_lease_file_expires_like_a_silent_owner(self, tmp_path):
        bounds = (0, 255)
        directory = LeaseDirectory(tmp_path, "w", ttl=0.1)
        directory.root.mkdir(parents=True, exist_ok=True)
        directory.lease_path(bounds).write_text("not json{{{")
        assert not directory.try_claim(bounds)
        time.sleep(0.15)
        assert directory.try_claim(bounds)

    def test_default_worker_id_is_host_and_pid(self):
        import os

        assert default_worker_id().endswith(f":{os.getpid()}")

    def test_rejects_bad_ttl(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            LeaseDirectory(tmp_path, "w", ttl=0)


class TestDistributedExecution:
    def test_single_worker_matches_serial(self, graph, batch, serial_sha, tmp_path):
        store = ShardedResultStore(tmp_path)
        executor = DistributedExecutor(store, worker_id="solo")
        with GraphStore() as graphs:
            graphs.add(graph)
            gains = executor.execute_batch(batch, graphs)
        assert _sha256_of(gains) == serial_sha
        assert store.appends == len(batch)
        assert not list((tmp_path / "leases").glob("range-*")), (
            "every lease must be released on the way out"
        )

    def test_warm_store_computes_nothing(self, graph, batch, serial_sha, tmp_path):
        with GraphStore() as graphs:
            graphs.add(graph)
            DistributedExecutor(
                ShardedResultStore(tmp_path), worker_id="first"
            ).execute_batch(batch, graphs)
            replay_store = ShardedResultStore(tmp_path)
            gains = DistributedExecutor(
                replay_store, worker_id="second"
            ).execute_batch(batch, graphs)
        assert _sha256_of(gains) == serial_sha
        assert replay_store.appends == 0
        assert replay_store.hits == len(batch)

    def test_two_workers_partition_without_duplicating(
        self, graph, batch, serial_sha, tmp_path
    ):
        """Concurrent workers split the batch; appends sum exactly to it."""
        with GraphStore() as graphs:
            graphs.add(graph)
            stores = [ShardedResultStore(tmp_path) for _ in range(2)]
            workers = [
                DistributedExecutor(
                    store, worker_id=f"w{index}", lease_ttl=60,
                    range_count=8, poll_interval=0.05,
                )
                for index, store in enumerate(stores)
            ]
            appended = [None, None]

            def drain(index):
                appended[index] = workers[index].work(batch, graphs)

            threads = [
                threading.Thread(target=drain, args=(index,), daemon=True)
                for index in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert all(not thread.is_alive() for thread in threads)
            assert sum(appended) == len(batch), (
                "live leases must prevent duplicated work"
            )
            # The full batch is now answerable from the shared store.
            verify_store = ShardedResultStore(tmp_path)
            gains = DistributedExecutor(
                verify_store, worker_id="verify"
            ).execute_batch(batch, graphs)
        assert _sha256_of(gains) == serial_sha
        assert verify_store.appends == 0

    def test_driver_waits_out_a_foreign_range(self, graph, batch, serial_sha, tmp_path):
        """execute_batch must poll — not steal — a live foreign lease.

        The 'foreign worker' here is a thread holding the (single) range
        with heartbeats on; the driver can only finish by observing the
        results that thread appends through the shared store.
        """
        foreign_leases = LeaseDirectory(tmp_path, "foreign", ttl=60)
        assert foreign_leases.try_claim((0, 255))
        finished = {}

        def drive():
            store = ShardedResultStore(tmp_path)
            executor = DistributedExecutor(
                store, worker_id="driver", range_count=1,
                lease_ttl=60, poll_interval=0.02,
            )
            with GraphStore() as graphs:
                graphs.add(graph)
                finished["gains"] = executor.execute_batch(batch, graphs)
            finished["appends"] = store.appends

        driver = threading.Thread(target=drive, daemon=True)
        with foreign_leases.heartbeats(interval=0.05):
            driver.start()
            time.sleep(0.2)
            assert "gains" not in finished, "driver stole a heartbeating lease"
            # The foreign owner delivers through the shared store...
            foreign_store = ShardedResultStore(tmp_path)
            with GraphStore() as graphs:
                graphs.add(graph)
                run_batch(
                    batch, graphs, executor=SerialExecutor(), cache=foreign_store
                )
        foreign_leases.release_all()
        driver.join(timeout=60)
        assert not driver.is_alive(), "driver never observed the foreign results"
        assert _sha256_of(finished["gains"]) == serial_sha
        assert finished["appends"] == 0, "the driver had nothing left to compute"

    def test_dead_workers_range_is_reclaimed_and_finished(
        self, graph, batch, serial_sha, tmp_path
    ):
        """A lease with no heartbeat expires; a survivor finishes the range."""
        abandoned = LeaseDirectory(tmp_path, "crashed-worker", ttl=60)
        for bounds in shard_ranges(4):
            assert abandoned.try_claim(bounds)
        # No heartbeats — exactly what a SIGKILLed worker leaves behind.
        store = ShardedResultStore(tmp_path)
        survivor = DistributedExecutor(
            store, worker_id="survivor", range_count=4,
            lease_ttl=0.2, poll_interval=0.05,
        )
        with GraphStore() as graphs:
            graphs.add(graph)
            gains = survivor.execute_batch(batch, graphs)
        assert _sha256_of(gains) == serial_sha
        assert store.appends == len(batch)

    def test_homogeneous_execute_surface(self, graph, batch, serial_sha, tmp_path):
        gains = DistributedExecutor(
            ShardedResultStore(tmp_path), worker_id="homo"
        ).execute(batch, graph)
        assert _sha256_of(gains) == serial_sha

    def test_parallel_inner_executor_matches_serial(
        self, graph, batch, serial_sha, tmp_path
    ):
        store = ShardedResultStore(tmp_path)
        executor = DistributedExecutor(store, worker_id="wide", jobs=2)
        with GraphStore() as graphs:
            graphs.add(graph)
            gains = executor.execute_batch(batch, graphs)
        assert _sha256_of(gains) == serial_sha

    def test_rejects_bad_parameters(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        with pytest.raises(ValueError, match="jobs"):
            DistributedExecutor(store, jobs=0)
        with pytest.raises(ValueError, match="poll_interval"):
            DistributedExecutor(store, poll_interval=0)
