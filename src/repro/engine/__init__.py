"""Task-graph experiment execution engine.

The engine turns an experiment sweep into a flat list of declarative
:class:`~repro.engine.tasks.TrialTask` specs — one per (parameter value ×
attack × trial) — and executes them through pluggable
:class:`~repro.engine.executors.Executor` backends with an on-disk result
cache in front:

* :mod:`repro.engine.registry` — string-keyed registries of attacks,
  protocols and defenses, so every scenario is addressable by name from
  configs, task specs and the CLI;
* :mod:`repro.engine.tasks` — the frozen task spec and its stable content
  hash (the cache key);
* :mod:`repro.engine.cache` — the legacy per-task JSON result cache;
* :mod:`repro.engine.result_store` — the sharded append-only result store
  (the default cache), with transparent read-through of the legacy layout;
* :mod:`repro.engine.graph_store` — graphs registered by content key and
  exported once into shared memory for zero-copy worker attach;
* :mod:`repro.engine.executors` — serial and process-pool execution plus
  :func:`~repro.engine.executors.run_tasks` /
  :func:`~repro.engine.executors.run_batch`, the cache-aware orchestrators;
* :mod:`repro.engine.kernels` — cross-trial batched execution: cache-miss
  tasks group by figure-point identity and eligible groups run through the
  stacked bit-plane kernels (``REPRO_BATCH_TRIALS=0`` forces per-trial);
* :mod:`repro.engine.session` — :class:`~repro.engine.session.EngineSession`,
  the persistent pool + graph store + cache driving heterogeneous
  (multi-graph) batches;
* :mod:`repro.engine.distributed` — lease-coordinated fleets: independent
  worker processes (one host or many sharing a cache root) claim
  shard ranges of a batch, append results to the shared store, and any
  interrupted sweep resumes bit-identically from what survived.

Determinism is the design invariant: every task carries its own derived
seed, so the result of a task is a pure function of its spec and the graph.
Serial and parallel executions are bit-identical, and cached results are
indistinguishable from recomputed ones.
"""

from repro.engine.cache import CACHE_VERSION, NullCache, ResultCache, default_cache_dir
from repro.engine.distributed import (
    DistributedExecutor,
    LeaseDirectory,
    default_worker_id,
    shard_ranges,
)
from repro.engine.executors import (
    ChunkTimeoutError,
    Executor,
    ParallelExecutor,
    PoolManager,
    SerialExecutor,
    cache_for,
    execute_task,
    executor_for,
    min_parallel_tasks,
    run_batch,
    run_tasks,
)
from repro.engine.graph_store import GraphStore
from repro.engine.kernels import (
    batch_trials_enabled,
    execute_tasks_grouped,
    point_key,
)
from repro.engine.registry import ATTACKS, DEFENSES, PROTOCOLS, Registry
from repro.engine.result_store import ShardedResultStore
from repro.engine.session import EngineSession, session_scope
from repro.engine.tasks import (
    TrialTask,
    derive_trial_seed,
    graph_fingerprint,
    labels_fingerprint,
)

__all__ = [
    "ATTACKS",
    "DEFENSES",
    "PROTOCOLS",
    "Registry",
    "TrialTask",
    "derive_trial_seed",
    "graph_fingerprint",
    "labels_fingerprint",
    "CACHE_VERSION",
    "NullCache",
    "ResultCache",
    "default_cache_dir",
    "ChunkTimeoutError",
    "DistributedExecutor",
    "Executor",
    "LeaseDirectory",
    "PoolManager",
    "SerialExecutor",
    "ParallelExecutor",
    "default_worker_id",
    "shard_ranges",
    "EngineSession",
    "GraphStore",
    "ShardedResultStore",
    "batch_trials_enabled",
    "cache_for",
    "execute_task",
    "execute_tasks_grouped",
    "executor_for",
    "point_key",
    "min_parallel_tasks",
    "run_batch",
    "run_tasks",
    "session_scope",
]
