"""Protocol-facing interfaces shared by LF-GDPR and LDPGen.

A *protocol* collects two atomic metrics from every user — the adjacency bit
vector and the degree — and estimates graph metrics server-side.  An *attack*
replaces the reports of the users it controls with :class:`FakeReport`
objects; the protocol treats those as the submitted (already perturbed)
values, exactly as the paper's threat model prescribes (fake users "can send
arbitrary data to the central server").

Common-random-numbers evaluation: ``collect`` derives all genuine-user noise
from named child streams of the supplied seed, so calling it twice with the
same seed — once without overrides, once with them — changes *only* what the
attacker changed.  That pairing is what ``repro.core.gain`` relies on.

Shared-collection contract (``collect_paired``): because the honest-world
randomness is a pure function of the seed, a paired run never needs to *draw*
it twice.  :meth:`GraphLDPProtocol.collect_paired` materialises the honest
state once and manufactures after-views by applying overrides to that shared
state; the result is bit-identical to two ``collect`` calls with the same
seed by construction.  After-views of pair-level protocols additionally carry
a :class:`PairedBaseline` naming the honest reports, the touched rows and the
net edge changes, which lets estimators update the honest estimates
incrementally instead of recomputing from scratch (see
``repro.graph.metrics.triangles_per_node_incremental``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.graph.adjacency import Graph
from repro.utils.rng import RngLike
from repro.utils.sparse import (
    decode_pairs,
    encode_pairs,
    merge_sorted_disjoint,
    reject_members,
)


@dataclass(frozen=True)
class FakeReport:
    """The crafted submission of one fake user.

    Two crafting modes cover all the paper's attacks:

    * **replace** (``augment=False``, the default): the user's entire report
      is attacker-crafted — ``claimed_neighbors`` becomes its bit vector
      verbatim and ``reported_degree`` its degree value.  RVA and MGA work
      this way.
    * **augment** (``augment=True``): the user runs the *honest* protocol on
      its organic data (keeping the same perturbation noise as in the
      unattacked world) and the attacker merely injects extra claimed edges
      on top, shifting the degree report by ``degree_delta``.  This models
      RNA, which adds one edge to the local data and lets the LDP client
      perturb as usual — under common random numbers the only difference
      from the honest run is the crafted edge.  Any pre-perturbation of the
      extra edges (RNA flips them with the RR probabilities) is the
      attack's job before building the report.

    Attributes
    ----------
    claimed_neighbors:
        Replace mode: the full claimed bit vector.  Augment mode: extra
        edges added on top of the honest report.
    reported_degree:
        Replace mode: the degree value sent.  Ignored in augment mode.
    augment:
        Selects the mode.
    degree_delta:
        Augment mode: shift applied to the honest noisy degree report.
    """

    claimed_neighbors: np.ndarray
    reported_degree: float
    augment: bool = False
    degree_delta: float = 0.0

    def __post_init__(self):
        neighbors = np.unique(np.asarray(self.claimed_neighbors, dtype=np.int64))
        object.__setattr__(self, "claimed_neighbors", neighbors)


#: Mapping from fake-node id to its crafted report.
Overrides = Mapping[int, FakeReport]


@dataclass
class PairedBaseline:
    """Link from a paired-run view to the shared honest collection.

    Attached to the :class:`CollectedReports` of a
    :meth:`GraphLDPProtocol.collect_paired` run.  For the honest view itself
    ``honest`` is the carrying reports object and ``touched`` is empty; for
    an after-view ``touched`` names the rows the overrides may have changed.
    Estimators treat this as an *optimisation hint only*: every quantity
    derived through it must be bit-identical to a from-scratch computation
    on the carrying reports, and ``touched=None`` (changes not localisable,
    e.g. LDPGen's regenerated synthetic graph) mandates a full recompute.

    Attributes
    ----------
    honest:
        The shared honest reports (the before-world view).
    touched:
        Sorted ids of users whose adjacency rows may differ from the honest
        graph — a vertex cover of every changed pair.  ``None`` = unknown.
    added_codes / removed_codes:
        Net sorted pair codes of edges present only in this view / only in
        the honest graph.  ``None`` when not tracked.
    cache:
        Scratch shared by all views of one paired run (honest triangle
        counts, the packed honest matrix, intra-community counts, ...).
    """

    honest: "CollectedReports"
    touched: Optional[np.ndarray]
    added_codes: Optional[np.ndarray] = None
    removed_codes: Optional[np.ndarray] = None
    cache: dict = field(default_factory=dict)


@dataclass
class CollectedReports:
    """Server-side view after one collection round.

    Attributes
    ----------
    perturbed_graph:
        The adjacency information the server holds: randomized-response
        output for pairs between non-overridden users, attacker-claimed bits
        for pairs involving overridden users.
    reported_degrees:
        Per-node degree reports (Laplace-perturbed for genuine users,
        attacker-chosen for fake users).
    adjacency_epsilon / degree_epsilon:
        The sub-budgets the reports were produced under.
    overridden:
        Ids of users whose reports were replaced by the attacker.  Stored for
        bookkeeping and for defense experiments; estimators never look at it
        (the server cannot distinguish fake users a priori).
    excluded:
        Ids of users a *defense* removed from the collection (their pairs are
        gone from ``perturbed_graph``).  Unlike ``overridden`` this is
        server-side knowledge: estimators must shrink the per-row bit count
        from ``N - 1`` to ``N - 1 - |excluded|`` and extrapolate, otherwise
        every removal shifts all degree estimates downward.
    baseline:
        Present only on the views of a paired run
        (:meth:`GraphLDPProtocol.collect_paired`): the shared honest state
        and the localisation of this view's changes, enabling incremental
        estimation.  Never part of equality or the server's knowledge model;
        defenses drop it when they rebuild reports.
    """

    perturbed_graph: Graph
    reported_degrees: np.ndarray
    adjacency_epsilon: float
    degree_epsilon: float
    overridden: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    excluded: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    baseline: Optional[PairedBaseline] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        degrees = np.asarray(self.reported_degrees, dtype=np.float64)
        if degrees.shape != (self.perturbed_graph.num_nodes,):
            raise ValueError(
                f"reported_degrees has shape {degrees.shape}, expected "
                f"({self.perturbed_graph.num_nodes},) — one report per user"
            )
        self.reported_degrees = degrees

    @property
    def num_nodes(self) -> int:
        """Total number of participating users N."""
        return self.perturbed_graph.num_nodes


class GraphLDPProtocol(abc.ABC):
    """Interface of an LDP graph-collection protocol."""

    @abc.abstractmethod
    def collect(
        self, graph: Graph, rng: RngLike, overrides: Overrides | None = None
    ) -> CollectedReports:
        """Run one collection round and return the server-side reports.

        All genuine-user noise must derive from named child streams of
        ``rng``, so two calls with the same seed — with and without
        ``overrides`` — differ only by the attacker's action (the
        common-random-numbers contract :meth:`collect_paired` and
        ``repro.core.gain`` build on).
        """

    def collect_paired(self, graph: Graph, rng: RngLike) -> "PairedCollection":
        """One honest collection shared across before/after views.

        ``rng`` must be replayable (an ``int`` or ``SeedSequence``), because
        the paired contract is defined against re-running :meth:`collect`
        with the same seed.  The default implementation literally re-runs
        :meth:`collect` per view; protocols override it to materialise the
        honest randomness once and derive after-views by applying overrides
        to the shared state — bit-identical by construction, collected once.
        """
        return TwoRunPairedCollection(self, graph, rng)

    @abc.abstractmethod
    def estimate_degree_centrality(self, reports: CollectedReports) -> np.ndarray:
        """Per-node degree-centrality estimates (Eq. 8 on estimated degrees)."""

    @abc.abstractmethod
    def estimate_clustering_coefficient(self, reports: CollectedReports) -> np.ndarray:
        """Per-node clustering-coefficient estimates (Eqs. 15–17)."""

    @abc.abstractmethod
    def estimate_modularity(self, reports: CollectedReports, labels: np.ndarray) -> float:
        """Modularity estimate for a given community labelling."""


def _crafted_pair_codes(overrides: Overrides, num_nodes: int) -> np.ndarray:
    """Validated, deduplicated pair codes of every claimed (node, neighbor).

    Builds the full (node, neighbor) arrays in one shot and validates them
    with numpy masks instead of a per-edge python loop; error messages name
    the first offending fake user.
    """
    sizes = [report.claimed_neighbors.size for report in overrides.values()]
    total = sum(sizes)
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nodes = np.repeat(np.fromiter(overrides.keys(), dtype=np.int64, count=len(overrides)), sizes)
    neighbors = np.concatenate(
        [report.claimed_neighbors for report in overrides.values()]
    ).astype(np.int64, copy=False)
    self_loops = nodes == neighbors
    if self_loops.any():
        raise ValueError(f"fake user {int(nodes[self_loops][0])} claims a self-loop")
    out_of_range = (neighbors < 0) | (neighbors >= num_nodes)
    if out_of_range.any():
        position = int(np.flatnonzero(out_of_range)[0])
        raise ValueError(
            f"fake user {int(nodes[position])} claims out-of-range "
            f"neighbor {int(neighbors[position])}"
        )
    return np.unique(encode_pairs(nodes, neighbors, num_nodes))


def apply_overrides_tracked(
    perturbed: Graph, overrides: Overrides | None
) -> tuple[Graph, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`apply_overrides` that also reports the net edge changes.

    Returns ``(graph, overridden, added_codes, removed_codes)`` where the
    code arrays are the sorted pair codes present only in the result /
    only in ``perturbed``.  Both are incident to ``overridden`` by
    construction — the localisation guarantee incremental estimators need.
    """
    if not overrides:
        empty = np.empty(0, dtype=np.int64)
        return perturbed, empty, empty, empty

    overridden = np.sort(np.fromiter(overrides.keys(), dtype=np.int64))
    n = perturbed.num_nodes
    if overridden[0] < 0 or overridden[-1] >= n:
        raise ValueError("override node id out of range")

    replaced = np.array(
        [node for node, report in overrides.items() if not report.augment], dtype=np.int64
    )
    flags = np.zeros(n, dtype=bool)
    flags[replaced] = True
    rows, cols = perturbed.edge_arrays()
    keep = ~(flags[rows] | flags[cols])
    # edge_arrays() is aligned with edge_codes, so the kept codes are already
    # sorted and unique — no python-tuple round trip, no np.unique re-sort.
    kept_codes = perturbed.edge_codes[keep]
    dropped_codes = perturbed.edge_codes[~keep]

    # Net changes: a crafted edge that coincides with a surviving RR pair is
    # no change at all, and one that re-creates a dropped pair cancels the
    # removal.  All code arrays are sorted and unique, so membership runs as
    # binary search and the union as a disjoint merge — no hash-based
    # np.unique/np.union1d pass over the near-dense kept set.
    crafted = _crafted_pair_codes(overrides, n)
    merged = merge_sorted_disjoint(kept_codes, reject_members(crafted, kept_codes))
    result = Graph.from_codes(n, merged, assume_sorted_unique=True)
    added_codes = reject_members(crafted, perturbed.edge_codes)
    removed_codes = reject_members(dropped_codes, crafted)
    return result, overridden, added_codes, removed_codes


def apply_overrides(
    perturbed: Graph, overrides: Overrides | None
) -> tuple[Graph, np.ndarray]:
    """Replace overridden users' adjacency pairs with their claimed edges.

    Replace-mode reports control every pair incident to their user: the
    randomized-response bits for those pairs are dropped and the claimed
    edges inserted.  Augment-mode reports keep the user's RR pairs and only
    add the extra claimed edges (duplicates of surviving RR pairs are
    deduplicated — the graph is simple).  Pairs between two non-overridden
    users always keep their RR bits, which preserves common random numbers
    across paired runs: this is the invariant that makes the after-world of
    a shared honest collection (:meth:`GraphLDPProtocol.collect_paired`)
    bit-identical to an independent re-collection under the same seed.

    Returns the resulting graph and the sorted array of overridden ids.
    """
    result, overridden, _, _ = apply_overrides_tracked(perturbed, overrides)
    return result, overridden


def apply_degree_overrides(
    noisy_degrees: np.ndarray, overrides: Overrides | None
) -> np.ndarray:
    """Apply crafted degree reports (replace) or shifts (augment).

    Replace-mode reports substitute ``reported_degree`` verbatim;
    augment-mode reports shift the honest noisy report by exactly
    ``degree_delta``.  Vectorised over the override mapping (one fancy
    assignment per mode); because the honest noisy degrees are an input,
    the same array can serve every after-view of a shared collection.
    """
    result = np.array(noisy_degrees, dtype=np.float64, copy=True)
    if overrides:
        nodes = np.fromiter(overrides.keys(), dtype=np.int64, count=len(overrides))
        augment = np.fromiter(
            (report.augment for report in overrides.values()), dtype=bool, count=len(overrides)
        )
        if augment.any():
            deltas = np.fromiter(
                (float(report.degree_delta) for report in overrides.values()),
                dtype=np.float64,
                count=len(overrides),
            )
            result[nodes[augment]] += deltas[augment]
        if not augment.all():
            values = np.fromiter(
                (float(report.reported_degree) for report in overrides.values()),
                dtype=np.float64,
                count=len(overrides),
            )
            result[nodes[~augment]] = values[~augment]
    return result


def require_replayable_seed(rng: RngLike) -> RngLike:
    """Reject seeds the paired contract cannot replay.

    A live ``Generator`` advances on use and ``None`` means fresh entropy —
    either would give every view *different* honest randomness, silently
    unpairing the before/after comparison.
    """
    if rng is None or isinstance(rng, np.random.Generator):
        raise TypeError(
            "collect_paired needs a replayable seed (int or SeedSequence), "
            f"not {type(rng).__name__} — paired views must re-derive identical streams"
        )
    return rng


class PairedCollection(abc.ABC):
    """One honest collection exposed as a before-view plus after-views.

    ``before`` is the honest world; ``after(overrides)`` the attacked world
    under common random numbers.  Implementations guarantee both views are
    bit-identical to independent ``collect`` calls with the shared seed.
    """

    @property
    @abc.abstractmethod
    def before(self) -> CollectedReports:
        """The honest (before-world) reports."""

    @abc.abstractmethod
    def after(self, overrides: Overrides | None) -> CollectedReports:
        """An attacked after-view under the shared randomness."""


class TwoRunPairedCollection(PairedCollection):
    """Fallback pairing that re-runs ``collect`` per view.

    Used by protocols without a shared-state implementation; views are
    paired through seed replay exactly as the legacy two-run path, so
    results are identical — only the redundant honest computation remains.
    """

    def __init__(self, protocol: GraphLDPProtocol, graph: Graph, rng: RngLike):
        self._protocol = protocol
        self._graph = graph
        self._seed = require_replayable_seed(rng)
        self._before = protocol.collect(graph, rng)

    @property
    def before(self) -> CollectedReports:
        return self._before

    def after(self, overrides: Overrides | None) -> CollectedReports:
        if not overrides:
            return self._before
        return self._protocol.collect(self._graph, self._seed, overrides=overrides)


class SharedGraphPairedCollection(PairedCollection):
    """Paired views over one shared honest perturbed graph + degree vector.

    The shape used by pair-level protocols (LF-GDPR): the honest randomness
    lives entirely in ``honest.perturbed_graph`` and
    ``honest.reported_degrees``, and an after-view is a pure function of
    that state and the overrides (:func:`apply_overrides` +
    :func:`apply_degree_overrides`).  Every view carries a
    :class:`PairedBaseline`, so estimators can reuse honest intermediates
    and update them incrementally; the after-graph's degree array is seeded
    from the honest degrees plus the net edge changes (exact integers, so
    downstream estimates stay bit-identical while skipping the O(E)
    recount).
    """

    def __init__(self, honest: CollectedReports):
        self._cache: dict = {}
        honest.baseline = PairedBaseline(
            honest=honest,
            touched=np.empty(0, dtype=np.int64),
            added_codes=np.empty(0, dtype=np.int64),
            removed_codes=np.empty(0, dtype=np.int64),
            cache=self._cache,
        )
        self._before = honest

    @property
    def before(self) -> CollectedReports:
        return self._before

    def after(self, overrides: Overrides | None) -> CollectedReports:
        honest = self._before
        if not overrides:
            return honest
        graph, overridden, added, removed = apply_overrides_tracked(
            honest.perturbed_graph, overrides
        )
        if graph is not honest.perturbed_graph:
            degrees = np.array(honest.perturbed_graph.degrees(), dtype=np.int64, copy=True)
            for codes, sign in ((added, 1), (removed, -1)):
                if codes.size:
                    rows, cols = decode_pairs(codes, graph.num_nodes)
                    degrees += sign * (
                        np.bincount(rows, minlength=graph.num_nodes)
                        + np.bincount(cols, minlength=graph.num_nodes)
                    )
            graph._seed_degrees(degrees)
        reported = apply_degree_overrides(honest.reported_degrees, overrides)
        return CollectedReports(
            perturbed_graph=graph,
            reported_degrees=reported,
            adjacency_epsilon=honest.adjacency_epsilon,
            degree_epsilon=honest.degree_epsilon,
            overridden=overridden,
            baseline=PairedBaseline(
                honest=honest,
                touched=overridden,
                added_codes=added,
                removed_codes=removed,
                cache=self._cache,
            ),
        )
