"""The frozen scenario spec: a declarative description of one experiment.

A scenario is everything the engine needs to reproduce a figure (or an
experiment the paper never ran) as plain values: which dataset and metric,
which parameter sweeps over which grid, and which (attack, protocol,
defense) series are measured at every point.  Specs are frozen dataclasses
of primitives, so they are hashable, diffable and trivially serialisable —
the same design that makes :class:`~repro.engine.tasks.TrialTask` cacheable,
one level up.

The hierarchy mirrors how the paper presents results:

* a :class:`ScenarioSpec` is one figure/table;
* a :class:`PanelSpec` is one sub-plot sharing a value grid (Fig. 14 has an
  LF-GDPR panel and an LDPGen panel);
* a :class:`SeriesSpec` is one curve within a panel (one attack, protocol
  and optional defense).

``repro.scenarios.compiler`` lowers a spec into the flat
:class:`~repro.engine.tasks.TrialTask` batch the engine executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple, Union

from repro.core.gain import METRICS
from repro.engine.registry import ATTACKS, DEFENSES, PROTOCOLS
from repro.graph.datasets import DATASETS, REAL_DATASETS, known_dataset_names

#: Series sweep roles (how the swept value reaches one series' tasks).
SWEEP_POINT = "point"  #: the value sets the protocol point (epsilon/beta/gamma)
SWEEP_DEFENSE_ARG = "defense_arg"  #: the value becomes a defense argument
SWEEP_FLAT = "flat"  #: the series ignores the sweep (flat reference line)

#: Seed-key styles.  ``sweep`` reproduces the historical
#: :func:`repro.experiments.runner.build_sweep_tasks` keys; ``defense``
#: reproduces the historical Figs. 12-13 countermeasure keys.  Keeping both
#: styles keeps every pre-scenario figure output bit-identical.
SEED_STYLES = ("sweep", "defense")

#: Scenario kinds: ``sweep`` compiles to engine tasks; ``stats`` reports
#: dataset statistics (Table II) and runs no tasks.
KINDS = ("sweep", "stats")

ScalarArg = Union[int, float, str]


@dataclass(frozen=True)
class SeriesSpec:
    """One curve: an attack measured under one protocol and defense.

    Attributes
    ----------
    name:
        Display name of the series ("MGA", "Detect1", ...); unique within a
        panel and part of every task's seed-derivation key.
    attack / protocol / defense:
        Engine registry names (:data:`~repro.engine.registry.ATTACKS`, ...).
        ``defense`` is empty for undefended series.
    defense_args:
        Sorted ``(name, value)`` pairs for the defense factory.
    sweep:
        How the scenario's swept value reaches this series — one of
        :data:`SWEEP_POINT`, :data:`SWEEP_DEFENSE_ARG`, :data:`SWEEP_FLAT`.
    sweep_arg:
        Defense-argument name receiving the swept value (only for
        ``sweep == SWEEP_DEFENSE_ARG``; Detect1's ``threshold``).
    """

    name: str
    attack: str
    protocol: str = "lfgdpr"
    defense: str = ""
    defense_args: Tuple[Tuple[str, ScalarArg], ...] = ()
    sweep: str = SWEEP_POINT
    sweep_arg: str = ""

    def __post_init__(self):
        if self.sweep not in (SWEEP_POINT, SWEEP_DEFENSE_ARG, SWEEP_FLAT):
            raise ValueError(
                f"series {self.name!r}: sweep must be point/defense_arg/flat, "
                f"got {self.sweep!r}"
            )
        if self.sweep == SWEEP_DEFENSE_ARG and not self.sweep_arg:
            raise ValueError(
                f"series {self.name!r}: sweep_arg is required when the swept "
                "value is a defense argument"
            )
        if self.sweep == SWEEP_DEFENSE_ARG and not self.defense:
            raise ValueError(
                f"series {self.name!r}: cannot sweep a defense argument "
                "without a defense"
            )


@dataclass(frozen=True)
class PanelSpec:
    """One sub-plot: a set of series sharing the scenario's value grid.

    ``figure`` is the label embedded in every task's seed-derivation key
    (and shown as the table title); panels of one scenario must use distinct
    labels so their series draw independent random streams.

    ``dataset`` pins this panel to its own dataset surrogate; empty means
    the scenario's dataset.  A scenario whose panels pin different datasets
    compiles to one heterogeneous engine batch — every panel's tasks carry
    their own ``graph_key`` and fan out together over the session's graph
    store instead of running dataset by dataset.
    """

    figure: str
    series: Tuple[SeriesSpec, ...]
    name: str = ""  #: panel key in results; defaults to ``figure``.
    dataset: str = ""  #: per-panel dataset override; '' -> scenario dataset.

    @property
    def key(self) -> str:
        """The key this panel's sweep is stored under in a result."""
        return self.name or self.figure

    def dataset_or(self, default: str) -> str:
        """This panel's dataset: its own pin, else the scenario default."""
        return self.dataset or default

    def __post_init__(self):
        if not self.series:
            raise ValueError(f"panel {self.figure!r} has no series")
        names = [series.name for series in self.series]
        if len(set(names)) != len(names):
            raise ValueError(f"panel {self.figure!r} has duplicate series names: {names}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: the unit the registry and CLI work with.

    Attributes
    ----------
    name:
        Registry name (``fig6``, ``duel/mga-protocols``, ...).
    description:
        One-line summary shown by ``python -m repro scenario list``.
    dataset:
        Default dataset surrogate; override per run with :meth:`on_dataset`.
    metric:
        One of :data:`repro.core.gain.METRICS`.
    parameter:
        Swept parameter name (``epsilon``/``beta``/``gamma`` for protocol
        points, or a defense-argument name such as ``threshold``).
    values:
        The sweep grid.  Kept as the original numbers (ints for thresholds)
        because they are formatted into seed-derivation keys.
    panels:
        The sub-plots; most scenarios have exactly one.
    seed_style:
        Seed-key style (see :data:`SEED_STYLES`).
    kind:
        ``sweep`` (default) or ``stats`` (Table II; no tasks).
    datasets:
        For ``stats`` scenarios: which datasets to tabulate.
    paper:
        True for scenarios reproducing a paper artifact, False for the
        cross-product scenarios the paper never ran.
    tags:
        Free-form labels for CLI filtering ("degree", "defense", ...).
    """

    name: str
    description: str
    dataset: str = "facebook"
    metric: str = "degree_centrality"
    parameter: str = "epsilon"
    values: Tuple[ScalarArg, ...] = ()
    panels: Tuple[PanelSpec, ...] = ()
    seed_style: str = "sweep"
    kind: str = "sweep"
    datasets: Tuple[str, ...] = ()
    paper: bool = True
    tags: Tuple[str, ...] = ()
    #: Tolerances used when this scenario's goldens are checked.
    golden_rtol: float = field(default=1e-9)
    golden_atol: float = field(default=1e-12)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.seed_style not in SEED_STYLES:
            raise ValueError(
                f"seed_style must be one of {SEED_STYLES}, got {self.seed_style!r}"
            )
        if self.kind == "stats":
            if self.panels:
                raise ValueError("stats scenarios must not declare panels")
            return
        if self.metric not in METRICS:
            raise ValueError(f"metric must be one of {METRICS}, got {self.metric!r}")
        if not self.values:
            raise ValueError(f"scenario {self.name!r} has an empty value grid")
        if not self.panels:
            raise ValueError(f"scenario {self.name!r} has no panels")
        figures = [panel.figure for panel in self.panels]
        if len(set(figures)) != len(figures):
            raise ValueError(
                f"scenario {self.name!r} reuses a panel figure label: {figures}"
            )
        if self.seed_style == "sweep" and self.parameter not in ("epsilon", "beta", "gamma"):
            raise ValueError(
                "sweep-style scenarios sweep a protocol point parameter "
                f"(epsilon/beta/gamma), got {self.parameter!r}"
            )

    def on_dataset(self, dataset: str) -> "ScenarioSpec":
        """This scenario retargeted at another dataset surrogate.

        For ``stats`` scenarios the tabulated dataset list narrows to the
        requested dataset, so ``scenario run table2 --dataset enron`` reports
        that dataset instead of silently ignoring the override.  Panels that
        pin their own ``dataset`` keep it — the override moves only the
        scenario default.
        """
        if dataset not in DATASETS and dataset not in REAL_DATASETS:
            known = ", ".join(known_dataset_names())
            raise KeyError(f"unknown dataset {dataset!r}; known: {known}")
        if self.kind == "stats":
            return replace(self, dataset=dataset, datasets=(dataset,))
        return replace(self, dataset=dataset)

    def effective_tags(self) -> Tuple[str, ...]:
        """Declared tags plus the origin tag derived from ``paper``.

        ``paper``/``extension`` are never written into ``tags`` by hand —
        deriving them from the ``paper`` flag keeps the two filtering
        mechanisms (``--tag`` and ``--extensions``) from drifting apart.
        """
        return self.tags + ("paper" if self.paper else "extension",)

    def all_series(self) -> Tuple[SeriesSpec, ...]:
        """Every series across all panels, in panel order."""
        return tuple(series for panel in self.panels for series in panel.series)

    def validate_registries(self) -> None:
        """Raise KeyError if any component name is not registered.

        Called at registration time so a typo in a catalog entry fails the
        import, not the eventual run.
        """
        if self.kind == "stats":
            for dataset in self.datasets or (self.dataset,):
                if dataset not in DATASETS and dataset not in REAL_DATASETS:
                    raise KeyError(f"scenario {self.name!r}: unknown dataset {dataset!r}")
            return
        for panel in self.panels:
            if panel.dataset and panel.dataset not in DATASETS and panel.dataset not in REAL_DATASETS:
                raise KeyError(
                    f"scenario {self.name!r}: panel {panel.figure!r} pins "
                    f"unknown dataset {panel.dataset!r}"
                )
        for series in self.all_series():
            ATTACKS.get(series.attack)
            PROTOCOLS.get(series.protocol)
            if series.defense:
                DEFENSES.get(series.defense)
