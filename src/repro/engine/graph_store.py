"""Session-scoped registry of graphs (and labelings) behind shared memory.

A :class:`GraphStore` owns every graph a batch of
:class:`~repro.engine.tasks.TrialTask` may reference.  Graphs register under
their content fingerprint (the tasks' ``graph_key``) and community labelings
under theirs (``labels_key``), so a heterogeneous batch — tasks from several
figures, panels or datasets — resolves each task to its graph by value, not
by call-site convention.

For parallel execution the store exports each graph **once** into a POSIX
shared-memory segment (:meth:`repro.graph.adjacency.Graph.to_shared`).
Workers receive only the tiny picklable handles and map the segments
zero-copy, instead of unpickling a fresh edge-array copy per pool — the
dominant fan-out cost for large surrogates.

Lifecycle contract (create → attach → unlink): the store creates segments
lazily on first export, attachers never unlink, and :meth:`close` (also run
by the context manager and the finalizer) unlinks everything the store
created.  Closing while workers still hold attachments is safe on POSIX —
their mappings stay valid until they drop them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.engine.tasks import TrialTask, graph_fingerprint, labels_fingerprint
from repro.graph.adjacency import (
    Graph,
    SharedGraphHandle,
    attach_shared_memory,
)
from repro.telemetry.core import current_tracer


class SharedLabelsHandle:
    """Picklable reference to a labels array exported into shared memory."""

    __slots__ = ("shm_name", "size")

    def __init__(self, shm_name: str, size: int):
        self.shm_name = shm_name
        self.size = int(size)

    def __getstate__(self):
        return (self.shm_name, self.size)

    def __setstate__(self, state):
        self.shm_name, self.size = state


def _export_labels(labels: np.ndarray) -> Tuple[SharedLabelsHandle, object]:
    """Copy an int64 labels array into a fresh shared-memory segment."""
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(labels, dtype=np.int64)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    if array.size:
        np.ndarray(array.shape, dtype=np.int64, buffer=segment.buf)[:] = array
    return SharedLabelsHandle(segment.name, array.size), segment


def attach_labels(handle: SharedLabelsHandle) -> Tuple[np.ndarray, object]:
    """Map a labels array exported by :func:`_export_labels` (read-only)."""
    segment = attach_shared_memory(handle.shm_name)
    labels = np.frombuffer(segment.buf, dtype=np.int64, count=handle.size)
    labels.flags.writeable = False
    return labels, segment


class GraphStore:
    """Graphs and labelings addressable by the keys tasks carry.

    Registration is idempotent: adding the same graph (by content) twice is
    a no-op returning the same key, so several scenarios sharing a dataset
    surrogate register it once and the batch ships one segment.
    """

    def __init__(self):
        # Start the shared-memory resource tracker *now*, before any worker
        # process forks: forked workers then inherit this tracker, so their
        # attach-side registrations (unavoidable before Python 3.13) dedupe
        # against the exporter's instead of spawning a second tracker that
        # would unlink segments it never owned.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform without a tracker
            pass
        self._graphs: Dict[str, Graph] = {}
        self._labels: Dict[str, Optional[np.ndarray]] = {"": None}
        self._graph_handles: Dict[str, SharedGraphHandle] = {}
        self._labels_handles: Dict[str, SharedLabelsHandle] = {}
        self._segments: list = []  # owned SharedMemory objects, unlinked on close
        self._closed = False

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def add(self, graph: Graph, labels: Optional[np.ndarray] = None) -> Tuple[str, str]:
        """Register a graph (and optional labels); returns their task keys."""
        return self.add_graph(graph), self.add_labels(labels)

    def add_graph(self, graph: Graph) -> str:
        """Register ``graph`` under its content fingerprint."""
        key = graph_fingerprint(graph)
        self._graphs.setdefault(key, graph)
        return key

    def add_labels(self, labels: Optional[np.ndarray]) -> str:
        """Register a labelling under its fingerprint ('' for none)."""
        if labels is None:
            return ""
        key = labels_fingerprint(labels)
        self._labels.setdefault(key, np.ascontiguousarray(labels, dtype=np.int64))
        return key

    def graph(self, graph_key: str) -> Graph:
        """The registered graph for ``graph_key``; KeyError with context."""
        try:
            return self._graphs[graph_key]
        except KeyError:
            known = ", ".join(sorted(self._graphs)) or "<none>"
            raise KeyError(
                f"graph {graph_key!r} not registered in this store; have: {known}"
            ) from None

    def labels(self, labels_key: str) -> Optional[np.ndarray]:
        """The registered labels for ``labels_key`` (None for '')."""
        try:
            return self._labels[labels_key]
        except KeyError:
            raise KeyError(f"labels {labels_key!r} not registered in this store") from None

    def __contains__(self, graph_key: str) -> bool:
        return graph_key in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    # ------------------------------------------------------------------
    # Shared-memory export
    # ------------------------------------------------------------------
    def export_graph(self, graph_key: str) -> SharedGraphHandle:
        """The shared-memory handle of one graph, exporting on first use."""
        self._check_open()
        handle = self._graph_handles.get(graph_key)
        if handle is None:
            tracer = current_tracer()
            with tracer.span("shm.graph_export", graph_key=graph_key):
                handle, segment = self.graph(graph_key).to_shared()
            tracer.counter("shm.graph_export")
            tracer.counter("shm.export_bytes", segment.size)
            self._graph_handles[graph_key] = handle
            self._segments.append(segment)
        return handle

    def export_labels(self, labels_key: str) -> Optional[SharedLabelsHandle]:
        """The shared-memory handle of one labelling (None for '')."""
        if not labels_key:
            return None
        self._check_open()
        handle = self._labels_handles.get(labels_key)
        if handle is None:
            labels = self.labels(labels_key)
            handle, segment = _export_labels(labels)
            tracer = current_tracer()
            tracer.counter("shm.labels_export")
            tracer.counter("shm.export_bytes", segment.size)
            self._labels_handles[labels_key] = handle
            self._segments.append(segment)
        return handle

    def adopt_segment(self, segment) -> None:
        """Take ownership of an externally created segment (unlinked on close)."""
        self._check_open()
        self._segments.append(segment)

    def handles_for(
        self, tasks: Iterable[TrialTask]
    ) -> Tuple[Dict[str, SharedGraphHandle], Dict[str, SharedLabelsHandle]]:
        """Handles for every graph/labelling a task batch references."""
        graph_handles: Dict[str, SharedGraphHandle] = {}
        labels_handles: Dict[str, SharedLabelsHandle] = {}
        for task in tasks:
            if task.graph_key not in graph_handles:
                graph_handles[task.graph_key] = self.export_graph(task.graph_key)
            if task.labels_key and task.labels_key not in labels_handles:
                labels_handles[task.labels_key] = self.export_labels(task.labels_key)
        return graph_handles, labels_handles

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every owned segment; the store stays usable for lookups.

        Idempotent.  Exports after ``close`` raise — a closed store must not
        silently re-create segments nobody will unlink.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view is still alive
                pass  # the mapping is released when the last view dies
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._graph_handles.clear()
        self._labels_handles.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("GraphStore is closed; cannot export segments")

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
