"""Running scenarios end to end: load, compile, execute, aggregate.

:func:`run_scenario` is the single entry point every consumer shares — the
figure drivers in :mod:`repro.experiments.figures`, the ``scenario`` CLI
subcommands, the golden-result harness and the benchmarks.  Execution goes
through an :class:`~repro.engine.session.EngineSession`: all panels of a
scenario — including panels pinned to *different* dataset surrogates —
flatten into **one** heterogeneous engine batch resolved against the
session's shared-memory graph store.

:func:`run_scenarios` goes one level further: it compiles any number of
scenarios into a single batch over one session, so a whole evaluation
suite shares one persistent worker pool and ships every distinct graph
exactly once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.engine.executors import CacheLike, Executor, cache_for, run_batch
from repro.engine.graph_store import GraphStore
from repro.engine.session import EngineSession, session_scope
from repro.engine.tasks import TrialTask
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import SweepResult
from repro.graph.adjacency import Graph
from repro.graph.datasets import load_dataset, lookup_spec
from repro.scenarios.compiler import FLAT_VALUE, compile_panels
from repro.scenarios.spec import SWEEP_FLAT, ScenarioSpec
from repro.telemetry.core import current_tracer


def load_scenario_graph(spec: ScenarioSpec, config: ExperimentConfig) -> Graph:
    """The default dataset surrogate a scenario runs on (panel pins aside)."""
    return load_dataset(spec.dataset, scale=config.scale, rng=config.seed)


def community_labels(graph: Graph) -> np.ndarray:
    """Greedy-modularity community labelling of the original graph.

    LF-GDPR's modularity estimator needs a server-held partition; the paper
    does not specify one, so we fix the standard greedy-modularity partition
    (DESIGN.md §2).
    """
    import networkx as nx

    communities = nx.algorithms.community.greedy_modularity_communities(
        graph.to_networkx()
    )
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    for community_id, members in enumerate(communities):
        labels[list(members)] = community_id
    return labels


@dataclass
class ScenarioResult:
    """Everything one scenario run produced.

    ``panels`` maps panel keys to their :class:`SweepResult`; single-panel
    scenarios are unwrapped with :meth:`sweep`.  ``table`` holds the rows of
    a ``stats`` scenario (Table II) and is None otherwise.
    """

    spec: ScenarioSpec
    panels: "OrderedDict[str, SweepResult]" = field(default_factory=OrderedDict)
    table: Optional[List[Tuple]] = None

    def sweep(self) -> SweepResult:
        """The lone panel's sweep; raises if the scenario is multi-panel."""
        if len(self.panels) != 1:
            keys = ", ".join(self.panels) or "<none>"
            raise ValueError(
                f"scenario {self.spec.name!r} has panels {keys}; pick one explicitly"
            )
        return next(iter(self.panels.values()))

    def format(self) -> str:
        """All panels (or the stats table) rendered for the terminal."""
        if self.table is not None:
            return format_table(
                ["dataset", "paper nodes", "paper edges", "surrogate nodes", "surrogate edges"],
                self.table,
                title=self.spec.description or self.spec.name,
            )
        return "\n\n".join(panel.format() for panel in self.panels.values())


def _dataset_stats(spec: ScenarioSpec, config: ExperimentConfig) -> List[Tuple]:
    """Rows of a ``stats`` scenario: paper vs surrogate node/edge counts."""
    rows = []
    for name in spec.datasets or (spec.dataset,):
        dataset = lookup_spec(name)
        graph = load_dataset(name, scale=config.scale, rng=config.seed)
        rows.append(
            (name, dataset.paper_nodes, dataset.paper_edges, graph.num_nodes, graph.num_edges)
        )
    return rows


class PreparedScenario(NamedTuple):
    """A compiled sweep scenario ready to execute.

    ``graphs``/``labels`` are keyed by panel key (single-dataset scenarios
    map every panel to the same graph object); ``tasks`` is the flat engine
    batch.  Unpacks as the historical ``(graphs, labels, tasks)`` triple —
    the golden store only touches ``tasks``.
    """

    graphs: "OrderedDict[str, Graph]"
    labels: "OrderedDict[str, Optional[np.ndarray]]"
    tasks: List[TrialTask]


def prepare_scenario(spec: ScenarioSpec, config: ExperimentConfig) -> PreparedScenario:
    """Load every panel's graph, derive labels if needed, compile the batch.

    Exposed so callers that need the compiled batch *and* the run (the
    golden store hashes task identities) prepare once instead of twice —
    dataset loading and greedy-modularity labelling are the expensive parts.
    Distinct panels sharing a dataset share one graph load and labelling.
    """
    graphs: "OrderedDict[str, Graph]" = OrderedDict()
    labels: "OrderedDict[str, Optional[np.ndarray]]" = OrderedDict()
    by_dataset: Dict[str, Graph] = {}
    labels_by_dataset: Dict[str, np.ndarray] = {}
    for panel in spec.panels:
        dataset = panel.dataset_or(spec.dataset)
        if dataset not in by_dataset:
            by_dataset[dataset] = load_dataset(
                dataset, scale=config.scale, rng=config.seed
            )
            if spec.metric == "modularity":
                labels_by_dataset[dataset] = community_labels(by_dataset[dataset])
        graphs[panel.key] = by_dataset[dataset]
        labels[panel.key] = labels_by_dataset.get(dataset)
    return PreparedScenario(graphs, labels, compile_panels(spec, config, graphs, labels))


def _aggregate(
    spec: ScenarioSpec, tasks: Sequence[TrialTask], gains: Sequence[float]
) -> ScenarioResult:
    """Fold a batch's per-task gains back into per-panel sweep curves."""
    by_point: Dict[Tuple[str, str, float], List[float]] = {}
    for task, gain in zip(tasks, gains):
        by_point.setdefault((task.figure, task.series, task.value), []).append(gain)

    tracer = current_tracer()
    result = ScenarioResult(spec=spec)
    for panel in spec.panels:
        sweep = SweepResult(
            figure=panel.figure,
            dataset=panel.dataset_or(spec.dataset),
            metric=spec.metric,
            parameter=spec.parameter,
            values=list(spec.values),
        )
        with tracer.span(
            "scenario.panel", figure=panel.figure, dataset=sweep.dataset
        ):
            for value in spec.values:
                for series in panel.series:
                    point = FLAT_VALUE if series.sweep == SWEEP_FLAT else float(value)
                    trials = by_point[(panel.figure, series.name, point)]
                    sweep.add_point(series.name, trials)
                    if tracer.enabled:
                        mean = sweep.series[series.name][-1]
                        stderr = sweep.stderr[series.name][-1]
                        with tracer.span(
                            "scenario.point",
                            figure=panel.figure,
                            series=series.name,
                            value=point,
                            mean=mean,
                            stderr=stderr,
                            trials=len(trials),
                        ):
                            pass
                        tracer.point_done(
                            panel.figure, series.name, point, mean, stderr, len(trials)
                        )
        result.panels[panel.key] = sweep
    return result


def run_scenario(
    spec: ScenarioSpec,
    config: ExperimentConfig = DEFAULT_CONFIG,
    executor: Optional[Executor] = None,
    cache: Optional[CacheLike] = None,
    prepared: Optional[PreparedScenario] = None,
    session: Optional[EngineSession] = None,
) -> ScenarioResult:
    """Execute ``spec`` through the engine and aggregate its result curves.

    By default the batch runs in an (ephemeral) engine session sized by
    ``config.jobs`` with ``config.cache`` semantics; pass ``session`` to
    share one pool, graph store and cache across many runs.  ``cache``
    overrides the cache either way; ``executor`` bypasses the session and
    drives the batch directly (test instrumentation).  Results are
    bit-identical for any executor, session, worker count or cache state
    because every compiled task derives its own seed.  ``prepared`` (from
    :func:`prepare_scenario` with the same spec and config) skips the
    load/compile step.
    """
    if spec.kind == "stats":
        return ScenarioResult(spec=spec, table=_dataset_stats(spec, config))

    with current_tracer().span("scenario.run", scenario=spec.name) as run_span:
        graphs, labels, tasks = (
            prepared if prepared is not None else prepare_scenario(spec, config)
        )
        run_span.set(panels=len(spec.panels), tasks=len(tasks))

        if executor is not None:
            with GraphStore() as store:
                for key, graph in graphs.items():
                    store.add(graph, labels.get(key))
                gains = run_batch(
                    tasks, store, executor=executor,
                    cache=cache if cache is not None else cache_for(config),
                )
            return _aggregate(spec, tasks, gains)

        with session_scope(config, session, cache) as (live_session, batch_cache):
            for key, graph in graphs.items():
                live_session.add_graph(graph, labels.get(key))
            gains = live_session.run(tasks, cache=batch_cache)
        return _aggregate(spec, tasks, gains)


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    config: ExperimentConfig = DEFAULT_CONFIG,
    session: Optional[EngineSession] = None,
    cache: Optional[CacheLike] = None,
) -> "OrderedDict[str, ScenarioResult]":
    """Execute several scenarios as **one** heterogeneous engine batch.

    Every sweep scenario is compiled up front, every distinct graph is
    registered (and shared-memory exported) once, and all tasks fan out in
    a single :meth:`~repro.engine.session.EngineSession.run` — so panels
    and scenarios parallelise against each other instead of running back to
    back.  Results are keyed by scenario name, in input order, and are
    bit-identical to running each scenario alone (tasks are self-seeded).
    ``cache`` overrides the config-derived cache, exactly as in
    :func:`run_scenario` — the resume path passes a refreshed
    :class:`~repro.engine.result_store.ShardedResultStore` here so an
    interrupted sweep's surviving results answer as hits.
    """
    specs = list(specs)
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names in batch: {names}")

    prepared: Dict[str, PreparedScenario] = {
        spec.name: prepare_scenario(spec, config)
        for spec in specs
        if spec.kind == "sweep"
    }
    with session_scope(config, session, cache) as (live_session, batch_cache):
        batch: List[TrialTask] = []
        for spec in specs:
            if spec.kind != "sweep":
                continue
            graphs, labels, tasks = prepared[spec.name]
            for key, graph in graphs.items():
                live_session.add_graph(graph, labels.get(key))
            batch.extend(tasks)
        gains = live_session.run(batch, cache=batch_cache) if batch else []

    results: "OrderedDict[str, ScenarioResult]" = OrderedDict()
    offset = 0
    for spec in specs:
        if spec.kind == "stats":
            results[spec.name] = ScenarioResult(
                spec=spec, table=_dataset_stats(spec, config)
            )
            continue
        tasks = prepared[spec.name].tasks
        results[spec.name] = _aggregate(spec, tasks, gains[offset : offset + len(tasks)])
        offset += len(tasks)
    return results
