"""Tests for the LDPGen protocol."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.metrics import average_degree
from repro.protocols.base import FakeReport
from repro.protocols.ldpgen import LDPGenProtocol, _sample_bipartite_edges


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(250, 5, 0.6, rng=0)


class TestSampleBipartiteEdges:
    def test_count_and_distinctness(self):
        rng = np.random.default_rng(0)
        group_a = np.array([0, 1, 2])
        group_b = np.array([10, 11, 12, 13])
        edges = _sample_bipartite_edges(group_a, group_b, 5, rng)
        assert len(edges) == 5
        assert len(set(edges)) == 5
        for u, v in edges:
            assert u in group_a and v in group_b

    def test_saturation_returns_all(self):
        rng = np.random.default_rng(1)
        edges = _sample_bipartite_edges(np.array([0, 1]), np.array([2, 3]), 100, rng)
        assert sorted(edges) == [(0, 2), (0, 3), (1, 2), (1, 3)]


class TestCollection:
    def test_synthetic_graph_size(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        assert reports.perturbed_graph.num_nodes == graph.num_nodes

    def test_deterministic(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        a = protocol.collect(graph, rng=5)
        b = protocol.collect(graph, rng=5)
        assert a.perturbed_graph == b.perturbed_graph
        assert np.array_equal(a.reported_degrees, b.reported_degrees)

    def test_synthetic_density_tracks_original(self, graph):
        protocol = LDPGenProtocol(epsilon=8.0)
        densities = [
            average_degree(protocol.collect(graph, rng=seed).perturbed_graph)
            for seed in range(5)
        ]
        assert np.mean(densities) == pytest.approx(average_degree(graph), rel=0.35)

    def test_phase_epsilon_split(self):
        protocol = LDPGenProtocol(epsilon=4.0)
        assert protocol.phase_epsilon == pytest.approx(2.0)

    def test_overrides_recorded_and_used(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        overrides = {
            3: FakeReport(claimed_neighbors=np.arange(10, 40), reported_degree=30.0)
        }
        reports = protocol.collect(graph, rng=0, overrides=overrides)
        assert reports.overridden.tolist() == [3]
        clean = protocol.collect(graph, rng=0)
        # A fake user claiming 30 edges must change the synthetic graph.
        assert reports.perturbed_graph != clean.perturbed_graph

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LDPGenProtocol(epsilon=0.0)
        with pytest.raises(ValueError):
            LDPGenProtocol(epsilon=1.0, initial_groups=0)


class TestEstimation:
    def test_degree_centrality_shape_and_range(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        centrality = protocol.estimate_degree_centrality(reports)
        assert centrality.shape == (graph.num_nodes,)
        assert np.all(centrality >= 0) and np.all(centrality <= 1)

    def test_clustering_in_unit_interval(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        estimates = protocol.estimate_clustering_coefficient(reports)
        assert np.all((estimates >= 0) & (estimates <= 1))

    def test_modularity_finite(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        labels = (np.arange(graph.num_nodes) // 50).astype(np.int64)
        value = protocol.estimate_modularity(reports, labels)
        assert -1.0 <= value <= 1.0


def _generate_reference(protocol, noisy_vectors, labels, clusters, rng):
    """The pre-vectorization scalar `_generate` loop, kept as the oracle for
    bit-identical equivalence of the NumPy index-arithmetic version."""
    from repro.graph.adjacency import Graph
    from repro.utils.sparse import decode_pairs, pair_count, sample_pairs_excluding

    n = noisy_vectors.shape[0]
    members = [np.flatnonzero(labels == g) for g in range(clusters)]
    claims = np.zeros((clusters, clusters), dtype=np.float64)
    for g in range(clusters):
        if members[g].size:
            claims[g] = noisy_vectors[members[g]].sum(axis=0)
    edges = []
    for g in range(clusters):
        size_g = members[g].size
        intra_pairs = pair_count(size_g)
        if intra_pairs > 0:
            estimated = max(0.0, claims[g, g] / 2.0)
            probability = min(1.0, estimated / intra_pairs)
            count = int(rng.binomial(intra_pairs, probability))
            if count:
                codes = sample_pairs_excluding(size_g, count, np.empty(0, dtype=np.int64), rng)
                local_rows, local_cols = decode_pairs(codes, size_g)
                edges.extend(
                    zip(members[g][local_rows].tolist(), members[g][local_cols].tolist())
                )
        for h in range(g + 1, clusters):
            size_h = members[h].size
            total_pairs = size_g * size_h
            if total_pairs == 0:
                continue
            estimated = max(0.0, (claims[g, h] + claims[h, g]) / 2.0)
            probability = min(1.0, estimated / total_pairs)
            count = int(rng.binomial(total_pairs, probability))
            if count:
                edges.extend(_sample_bipartite_edges(members[g], members[h], count, rng))
    return Graph(n, edges)


class TestVectorizedGenerate:
    def test_identical_to_scalar_reference_on_fixed_seed(self, graph):
        """The vectorized group-pair arithmetic must not change the sampled
        synthetic graph: same seed, same edges, bit for bit."""
        protocol = LDPGenProtocol(epsilon=2.0, refined_groups=6)
        rng = np.random.default_rng(7)
        clusters = 6
        labels = rng.integers(0, clusters, size=graph.num_nodes).astype(np.int64)
        noisy = rng.normal(3.0, 4.0, size=(graph.num_nodes, clusters))

        vectorized = protocol._generate(noisy, labels, clusters, np.random.default_rng(123))
        reference = _generate_reference(protocol, noisy, labels, clusters, np.random.default_rng(123))

        assert vectorized.num_nodes == reference.num_nodes
        assert vectorized == reference

    def test_collect_unchanged_by_vectorization(self, graph, monkeypatch):
        """Full-pipeline check: `collect` with the vectorized `_generate`
        matches `collect` with the scalar reference draw-for-draw, in an
        empty-cluster-prone configuration."""
        protocol = LDPGenProtocol(epsilon=4.0, refined_groups=12)
        vectorized = protocol.collect(graph, rng=42)
        monkeypatch.setattr(LDPGenProtocol, "_generate", _generate_reference)
        reference = protocol.collect(graph, rng=42)
        assert vectorized.perturbed_graph == reference.perturbed_graph
        assert np.array_equal(vectorized.reported_degrees, reference.reported_degrees)
