"""Defense interface and the shared repair strategies.

A countermeasure is a server-side post-processing step: given the collected
reports it (i) *detects* suspicious users and (ii) *repairs* the data before
estimation.  Two repair strategies cover the paper's countermeasures:

* **removal** (§VII-B, Detect2): drop every adjacency pair incident to a
  flagged user — "remove its connections from the nodes it claims to be
  connected to".
* **reconstruction** (§VII-A, Detect1): rebuild flagged users' rows.  The
  paper reconstructs from the reports of genuine nodes connected to the
  flagged node; with symmetric pair-level collection that information is not
  separately available, so the statistically equivalent reconstruction is a
  fresh draw at the perturbed graph's edge density (what an honest RR row
  looks like to the server a priori).  See DESIGN.md §2.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.metrics import edge_density
from repro.protocols.base import CollectedReports
from repro.utils.rng import RngLike, ensure_rng


class Defense(abc.ABC):
    """A detection + repair countermeasure."""

    #: Short name used in experiment tables ("Detect1", "Naive2", ...).
    name: str = "defense"

    @abc.abstractmethod
    def detect(self, reports: CollectedReports) -> np.ndarray:
        """Return the sorted ids of users flagged as fake."""

    @abc.abstractmethod
    def repair(self, reports: CollectedReports, flagged: np.ndarray) -> CollectedReports:
        """Return repaired reports with the flagged users' influence undone."""

    def apply(self, reports: CollectedReports) -> Tuple[CollectedReports, np.ndarray]:
        """Detect then repair; returns (repaired reports, flagged ids)."""
        flagged = self.detect(reports)
        return self.repair(reports, flagged), flagged

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class DetectionQuality:
    """Precision/recall of a detector against the known fake set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of flagged users that are actually fake."""
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    @property
    def recall(self) -> float:
        """Fraction of fake users that were flagged."""
        fakes = self.true_positives + self.false_negatives
        return self.true_positives / fakes if fakes else 0.0


def detection_quality(flagged: np.ndarray, fake_users: np.ndarray) -> DetectionQuality:
    """Score a detector's output against the ground-truth fake set."""
    flagged = np.asarray(flagged, dtype=np.int64)
    fake_users = np.asarray(fake_users, dtype=np.int64)
    true_positives = int(np.intersect1d(flagged, fake_users).size)
    return DetectionQuality(
        true_positives=true_positives,
        false_positives=int(flagged.size - true_positives),
        false_negatives=int(fake_users.size - true_positives),
    )


def remove_flagged_pairs(reports: CollectedReports, flagged: np.ndarray) -> CollectedReports:
    """Removal repair: drop every pair incident to a flagged user.

    The flagged users are recorded in ``excluded`` so estimators calibrate
    against the reduced bit universe instead of reading the removal as a
    global degree drop.
    """
    flagged = np.asarray(flagged, dtype=np.int64)
    if flagged.size == 0:
        return reports
    graph = reports.perturbed_graph
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[flagged] = True
    rows, cols = graph.edge_arrays()
    keep = ~(mask[rows] | mask[cols])
    repaired = Graph(graph.num_nodes, zip(rows[keep].tolist(), cols[keep].tolist()))
    return CollectedReports(
        perturbed_graph=repaired,
        reported_degrees=reports.reported_degrees,
        adjacency_epsilon=reports.adjacency_epsilon,
        degree_epsilon=reports.degree_epsilon,
        overridden=reports.overridden,
        excluded=np.union1d(reports.excluded, flagged),
    )


def resample_flagged_rows(
    reports: CollectedReports, flagged: np.ndarray, rng: RngLike = None
) -> CollectedReports:
    """Reconstruction repair: redraw flagged users' pairs at ambient density.

    Pairs between two flagged users are drawn once (not twice).  Genuine
    flagged users lose their real data — the false-positive cost that drives
    the U-shape of Fig. 12(a).
    """
    flagged = np.asarray(flagged, dtype=np.int64)
    if flagged.size == 0:
        return reports
    generator = ensure_rng(rng)
    graph = reports.perturbed_graph
    density = edge_density(graph)
    stripped = remove_flagged_pairs(reports, flagged).perturbed_graph

    # Process flagged nodes in order, unmasking each as it is handled, so a
    # flagged-flagged pair is drawn exactly once (by the later node).
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[flagged] = True
    new_edges: list[tuple[int, int]] = []
    for node in flagged.tolist():
        mask[node] = False
        others = np.flatnonzero(~mask)
        others = others[others != node]
        draws = others[generator.random(others.size) < density]
        new_edges.extend((node, int(other)) for other in draws)

    return CollectedReports(
        perturbed_graph=stripped.with_edges(new_edges),
        reported_degrees=reports.reported_degrees,
        adjacency_epsilon=reports.adjacency_epsilon,
        degree_epsilon=reports.degree_epsilon,
        overridden=reports.overridden,
        excluded=reports.excluded,
    )
