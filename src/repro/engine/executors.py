"""Task executors: serial, process-pool parallel, and the cache-aware drivers.

:func:`execute_task` is the single definition of what running a task means;
both executors (and any test stub) go through it, so the only difference
between backends is *where* tasks run.  Because every task carries its own
derived seed, results are bit-identical across executors, worker counts and
scheduling orders.

Two batch shapes exist:

* **homogeneous** — every task runs on one graph; this is the historical
  :meth:`Executor.execute` / :func:`run_tasks` surface;
* **heterogeneous** — tasks reference different graphs (several panels,
  figures or datasets in one fan-out) and resolve them through a
  :class:`~repro.engine.graph_store.GraphStore`; this is the
  :meth:`Executor.execute_batch` / :func:`run_batch` surface that
  :class:`~repro.engine.session.EngineSession` drives.

Parallel fan-out ships graphs through POSIX shared memory: the store (or a
transient export for the homogeneous path) publishes each graph once, chunks
are grouped by ``graph_key`` so a worker chunk maps exactly one graph, and a
per-worker attach cache makes repeated chunks on the same graph free.
Workers therefore never unpickle an edge-array copy — they zero-copy map the
exporter's segment (create → attach → unlink; the exporter unlinks).

Telemetry: everything reports through :func:`repro.telemetry.core
.current_tracer` — per-task ``task.execute`` spans (recorded worker-side for
parallel chunks, shipped back with the chunk results and re-parented under
the ``executor.fan_out`` span), ``cache.hit``/``cache.miss`` counters and
batch callbacks in the drivers, and an ``executor.serial_fallback`` counter
wherever a would-be fan-out ran in-process instead.  With the default null
tracer all of it is no-op method calls — no span is allocated and RNG state
is never touched, so traced and untraced runs are bit-identical.
"""

from __future__ import annotations

import abc
import os
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import Attack
from repro.core.gain import evaluate_attack
from repro.core.threat_model import ThreatModel
from repro.defenses.evaluation import evaluate_defended_attack
from repro.engine.cache import NullCache, ResultCache
from repro.engine.graph_store import (
    GraphStore,
    SharedLabelsHandle,
    attach_labels,
)
from repro.engine.integrity import ensure_finite_gain
from repro.engine.kernels import execute_tasks_grouped, point_key
from repro.engine.registry import ATTACKS, DEFENSES, PROTOCOLS
from repro.engine.result_store import ShardedResultStore
from repro.engine.tasks import TrialTask
from repro.graph.adjacency import Graph, SharedGraphHandle
from repro.protocols.base import GraphLDPProtocol
from repro.telemetry.core import Tracer, current_tracer, set_tracer
from repro.utils.rng import child_rng

#: Any cache flavour the drivers accept.
CacheLike = Union[ResultCache, ShardedResultStore, NullCache]

#: Env knob: smallest batch worth a process-pool fan-out.  Batches below the
#: threshold run in-process (pool startup would dominate).  Default 2 keeps
#: the historical behaviour of parallelising everything but singletons.
MIN_PARALLEL_TASKS_ENV = "REPRO_MIN_PARALLEL_TASKS"

#: Re-dispatch rounds a fan-out survives before giving up: a crashed worker
#: (``BrokenProcessPool``) or a stalled chunk (``ChunkTimeoutError``) costs
#: one round; only the chunks that never delivered results are resubmitted.
DEFAULT_MAX_RETRIES = 2

#: Base of the linear backoff between re-dispatch rounds.
RETRY_BACKOFF_SECONDS = 0.05


class ChunkTimeoutError(RuntimeError):
    """No worker chunk made progress within the configured deadline."""


def _terminate_pool(pool: _ProcessPool) -> None:
    """Best-effort hard stop of a (possibly hung or broken) process pool.

    Workers are killed first so ``shutdown`` never blocks on a process that
    stopped draining its call queue; a pool whose workers already died (the
    ``BrokenProcessPool`` case) reduces to a plain shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already reaped
            pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:  # pragma: no cover - interpreter teardown races
        pass


class PoolManager:
    """Owner of a lazily created process pool that survives worker crashes.

    The manager is the single pool-lifecycle authority shared by
    :class:`~repro.engine.session.EngineSession` (one pool per session) and
    :class:`~repro.engine.distributed.DistributedExecutor` (one pool per
    drive).  :meth:`acquire` creates the pool on first use, reuses it after
    — and transparently replaces a pool whose workers died, so one crashed
    batch can never poison later ones.
    """

    def __init__(self, jobs: int):
        self.jobs = int(jobs)
        self._pool: Optional[_ProcessPool] = None

    def acquire(self) -> _ProcessPool:
        """The live pool, created on first use and replaced after breakage."""
        tracer = current_tracer()
        if self._pool is not None and getattr(self._pool, "_broken", False):
            self.discard()
            tracer.counter("executor.pool_recreate")
        if self._pool is None:
            with tracer.span("pool.create", jobs=self.jobs):
                self._pool = _ProcessPool(max_workers=self.jobs)
            tracer.counter("pool.create")
        else:
            tracer.counter("pool.reuse")
        return self._pool

    def discard(self) -> None:
        """Hard-stop the current pool (if any); the next acquire recreates."""
        if self._pool is not None:
            _terminate_pool(self._pool)
            self._pool = None

    def shutdown(self) -> None:
        """Orderly shutdown at end of life (no kill; workers finish)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def min_parallel_tasks() -> int:
    """The smallest task count :class:`ParallelExecutor` fans out (>= 1)."""
    raw = os.environ.get(MIN_PARALLEL_TASKS_ENV, "")
    if not raw:
        return 2
    try:
        value = int(raw)
    except ValueError:
        import warnings

        warnings.warn(
            f"{MIN_PARALLEL_TASKS_ENV}={raw!r} is not an integer; "
            "using the default threshold of 2",
            stacklevel=2,
        )
        return 2
    return max(1, value)


def execute_task(
    task: TrialTask,
    graph: Graph,
    labels: Optional[np.ndarray] = None,
    attack_factory: Optional[Callable[[], Attack]] = None,
    protocol_factory: Optional[Callable[[float], GraphLDPProtocol]] = None,
) -> float:
    """Run one trial task and return its total gain.

    ``attack_factory`` / ``protocol_factory`` override the registry lookup;
    the experiment layer passes them when a sweep uses components that are
    not registered (such components cannot be cached or parallelised, but
    they follow the exact same seed derivation, so results stay comparable).
    """
    with current_tracer().span(
        "task.execute",
        figure=task.figure, series=task.series, attack=task.attack,
        value=task.value, trial=task.trial,
    ):
        attack = attack_factory() if attack_factory is not None else ATTACKS.create(task.attack)
        protocol = (
            protocol_factory(task.epsilon)
            if protocol_factory is not None
            else PROTOCOLS.create(task.protocol, epsilon=task.epsilon)
        )
        threat = ThreatModel.sample(
            graph, task.beta, task.gamma, rng=child_rng(task.seed, "threat")
        )
        if task.defense:
            defense = DEFENSES.create(task.defense, **dict(task.defense_args))
            outcome = evaluate_defended_attack(
                graph, protocol, attack, defense, threat,
                metric=task.metric, rng=task.seed, labels=labels,
            )
        else:
            outcome = evaluate_attack(
                graph, protocol, attack, threat,
                metric=task.metric, rng=task.seed, labels=labels,
            )
        return float(outcome.total_gain)


class Executor(abc.ABC):
    """Strategy for running a batch of tasks."""

    @abc.abstractmethod
    def execute(
        self,
        tasks: Sequence[TrialTask],
        graph: Graph,
        labels: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Gains of a homogeneous (single-graph) batch, in input order."""

    def execute_batch(
        self, tasks: Sequence[TrialTask], store: GraphStore
    ) -> List[float]:
        """Gains of a heterogeneous batch, in input order.

        The default groups tasks by ``(graph_key, labels_key)`` and runs
        each group through :meth:`execute`, so any single-graph executor —
        including test stubs that count or stub :meth:`execute` — handles
        multi-graph batches unchanged.
        """
        groups: "OrderedDict[Tuple[str, str], List[int]]" = OrderedDict()
        for index, task in enumerate(tasks):
            groups.setdefault((task.graph_key, task.labels_key), []).append(index)
        gains: List[float] = [0.0] * len(tasks)
        for (graph_key, labels_key), indices in groups.items():
            computed = self.execute(
                [tasks[index] for index in indices],
                store.graph(graph_key),
                store.labels(labels_key),
            )
            if len(computed) != len(indices):
                raise RuntimeError(
                    f"{type(self).__name__}.execute returned {len(computed)} "
                    f"gains for {len(indices)} tasks"
                )
            for index, gain in zip(indices, computed):
                gains[index] = gain
        return gains


class SerialExecutor(Executor):
    """Run tasks in the calling process, batching same-point trial groups.

    Trials that share a figure point route through the cross-trial kernels
    (:func:`repro.engine.kernels.execute_tasks_grouped`); everything else —
    and everything when ``REPRO_BATCH_TRIALS=0`` — runs the per-task scalar
    path.  Both produce bit-identical gains, in input order.
    """

    def execute(
        self,
        tasks: Sequence[TrialTask],
        graph: Graph,
        labels: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Gains of ``tasks``, in input order."""
        tracer = current_tracer()
        gains = execute_tasks_grouped(tasks, graph, labels)
        for task, gain in zip(tasks, gains):
            tracer.task_done(task, gain)
        return gains


# ---------------------------------------------------------------------------
# Worker-side shared-memory attach cache
# ---------------------------------------------------------------------------
#: Most graphs/labelings a worker keeps mapped; beyond it the oldest entry's
#: references are dropped (its segment closes when the arrays die).
_ATTACH_CACHE_LIMIT = 64

#: shm name -> (graph, segment): segments must stay referenced while any
#: attached array is live, so the cache holds both.
_ATTACHED_GRAPHS: "OrderedDict[str, tuple]" = OrderedDict()
_ATTACHED_LABELS: "OrderedDict[str, tuple]" = OrderedDict()


def _attached_graph(handle: SharedGraphHandle) -> Graph:
    cached = _ATTACHED_GRAPHS.get(handle.shm_name)
    if cached is None:
        cached = Graph.attach_shared(handle)
        current_tracer().counter("shm.graph_attach")
        _ATTACHED_GRAPHS[handle.shm_name] = cached
        while len(_ATTACHED_GRAPHS) > _ATTACH_CACHE_LIMIT:
            _ATTACHED_GRAPHS.popitem(last=False)
    return cached[0]


def _attached_labels(handle: SharedLabelsHandle) -> np.ndarray:
    cached = _ATTACHED_LABELS.get(handle.shm_name)
    if cached is None:
        cached = attach_labels(handle)
        current_tracer().counter("shm.labels_attach")
        _ATTACHED_LABELS[handle.shm_name] = cached
        while len(_ATTACHED_LABELS) > _ATTACH_CACHE_LIMIT:
            _ATTACHED_LABELS.popitem(last=False)
    return cached[0]


def _run_chunk_tasks(
    graph_handles: Dict[str, SharedGraphHandle],
    labels_handles: Dict[str, SharedLabelsHandle],
    indexed_tasks: List[Tuple[int, TrialTask]],
) -> List[Tuple[int, float]]:
    """One chunk's gains, same-point trials batched through the kernels.

    Chunks are built to keep each point's trials co-located
    (:func:`_chunk_indices_by_graph`), so grouping inside the chunk sees
    whole points; results keep the historical per-task ``(index, gain)``
    shape and order.
    """
    groups: "OrderedDict[Tuple[str, str], List[int]]" = OrderedDict()
    for position, (_, task) in enumerate(indexed_tasks):
        groups.setdefault((task.graph_key, task.labels_key), []).append(position)
    results: List[Optional[Tuple[int, float]]] = [None] * len(indexed_tasks)
    for (graph_key, labels_key), positions in groups.items():
        graph = _attached_graph(graph_handles[graph_key])
        labels_handle = labels_handles.get(labels_key)
        labels = _attached_labels(labels_handle) if labels_handle is not None else None
        gains = execute_tasks_grouped(
            [indexed_tasks[position][1] for position in positions], graph, labels
        )
        for position, gain in zip(positions, gains):
            results[position] = (indexed_tasks[position][0], gain)
    return results


def _run_shared_chunk(
    graph_handles: Dict[str, SharedGraphHandle],
    labels_handles: Dict[str, SharedLabelsHandle],
    indexed_tasks: List[Tuple[int, TrialTask]],
    trace: bool = False,
):
    """Worker entry point: run one chunk against shared-memory graphs.

    With ``trace`` the chunk runs under a fresh worker-local tracer whose
    spans (one ``executor.chunk`` root, one ``task.execute`` per task) and
    counters travel back with the results as ``(results, payload)``; the
    parent re-parents them under its fan-out span via
    :meth:`~repro.telemetry.core.Tracer.adopt`.  Without it the return
    shape stays the historical plain results list.
    """
    if not trace:
        return _run_chunk_tasks(graph_handles, labels_handles, indexed_tasks)
    chunk_tracer = Tracer()
    previous = set_tracer(chunk_tracer)
    try:
        with chunk_tracer.span("executor.chunk", tasks=len(indexed_tasks)):
            results = _run_chunk_tasks(graph_handles, labels_handles, indexed_tasks)
    finally:
        set_tracer(previous)
    return results, {
        "spans": chunk_tracer.spans_payload(),
        "counters": dict(chunk_tracer.counters),
    }


def _chunk_indices_by_graph(
    tasks: Sequence[TrialTask], chunk_count: int
) -> List[List[int]]:
    """Contiguous task-index chunks that never straddle a graph boundary.

    Tasks are grouped by ``graph_key`` (stable within a group, so cache
    replay order is deterministic) and each group split into chunks of
    roughly ``ceil(len(tasks) / chunk_count)`` tasks.  A chunk therefore
    maps exactly one shared-memory graph, whatever mix of panels or
    datasets the batch carries.  Chunk boundaries additionally align to
    figure-point boundaries (:func:`~repro.engine.kernels.point_key`), so
    all trials of one point land in one worker chunk and stay eligible for
    the cross-trial batched kernels; a point larger than the target chunk
    size becomes its own chunk.
    """
    target = max(1, -(-len(tasks) // max(1, chunk_count)))
    groups: "OrderedDict[str, List[int]]" = OrderedDict()
    for index, task in enumerate(tasks):
        groups.setdefault(task.graph_key, []).append(index)
    chunks: List[List[int]] = []
    for indices in groups.values():
        points: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for index in indices:
            points.setdefault(point_key(tasks[index]), []).append(index)
        current: List[int] = []
        for point_indices in points.values():
            if current and len(current) + len(point_indices) > target:
                chunks.append(current)
                current = []
            current.extend(point_indices)
        if current:
            chunks.append(current)
    return chunks


class ParallelExecutor(Executor):
    """Fan tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Bit-identical to :class:`SerialExecutor` because tasks are self-seeded;
    the pool only changes wall-clock time.  Batches smaller than
    :func:`min_parallel_tasks` (``REPRO_MIN_PARALLEL_TASKS``) run in-process
    instead of paying pool startup.

    Fan-outs are fault-tolerant: a crashed worker (OOM kill, segfault —
    surfacing as :class:`BrokenProcessPool`) or a stalled chunk (no chunk
    finished within ``task_timeout`` seconds) triggers pool replacement and
    a bounded re-dispatch of **only** the chunks that never delivered
    results; chunks already collected are kept, and because tasks are
    self-seeded the retried results are bit-identical to what the dead
    worker would have produced.

    Parameters
    ----------
    jobs:
        Worker processes; defaults to the machine's CPU count.
    pool_factory:
        Zero-argument callable returning a *borrowed* live pool (from
        :class:`~repro.engine.session.EngineSession`) reused across calls
        instead of spinning one up per batch.  Called only when a batch
        actually fans out — cache-warm and sub-threshold batches never
        touch it.  The owner shuts the pool down; this executor never does.
    pool_reset:
        Companion of ``pool_factory``: zero-argument callable that discards
        the borrowed pool after a crash/stall so the next ``pool_factory``
        call hands back a fresh one.  Without it a broken borrowed pool can
        only be retried if the factory itself detects breakage
        (:meth:`PoolManager.acquire` does).
    max_retries:
        Re-dispatch rounds to attempt after worker failures before raising
        (default :data:`DEFAULT_MAX_RETRIES`); ``0`` fails fast.
    task_timeout:
        Stall deadline in seconds: if **no** outstanding chunk completes
        within it, the round is declared hung, the pool is killed and the
        unfinished chunks are re-dispatched.  ``None`` (default) waits
        forever.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        pool_factory: Optional[Callable[[], _ProcessPool]] = None,
        pool_reset: Optional[Callable[[], None]] = None,
        max_retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.jobs = int(jobs) if jobs is not None else (os.cpu_count() or 1)
        self.max_retries = (
            DEFAULT_MAX_RETRIES if max_retries is None else int(max_retries)
        )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.task_timeout = float(task_timeout) if task_timeout is not None else None
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        self._pool_factory = pool_factory
        self._pool_reset = pool_reset

    def execute(
        self,
        tasks: Sequence[TrialTask],
        graph: Graph,
        labels: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Gains of ``tasks``, in input order (all on ``graph``)."""
        if self.jobs == 1 or len(tasks) < min_parallel_tasks():
            current_tracer().counter("executor.serial_fallback")
            return SerialExecutor().execute(tasks, graph, labels)
        # Transient export: the one graph (and labelling) is published once;
        # every distinct key in the batch aliases it, matching the serial
        # contract that the *given* graph/labels win, whatever keys the
        # tasks carry.
        with GraphStore() as store:
            handle, segment = graph.to_shared()
            store.adopt_segment(segment)
            graph_handles = {key: handle for key in {task.graph_key for task in tasks}}
            labels_handles: Dict[str, SharedLabelsHandle] = {}
            if labels is not None:
                labels_handle = store.export_labels(store.add_labels(labels))
                labels_handles = {
                    key: labels_handle for key in {task.labels_key for task in tasks}
                }
            return self._fan_out(tasks, graph_handles, labels_handles)

    def execute_batch(
        self, tasks: Sequence[TrialTask], store: GraphStore
    ) -> List[float]:
        """Gains of a heterogeneous batch resolved through ``store``."""
        if self.jobs == 1 or len(tasks) < min_parallel_tasks():
            current_tracer().counter("executor.serial_fallback")
            return super().execute_batch(tasks, store)
        graph_handles, labels_handles = store.handles_for(tasks)
        return self._fan_out(tasks, graph_handles, labels_handles)

    def _fan_out(
        self,
        tasks: Sequence[TrialTask],
        graph_handles: Mapping[str, SharedGraphHandle],
        labels_handles: Mapping[str, SharedLabelsHandle],
    ) -> List[float]:
        tracer = current_tracer()
        chunks = _chunk_indices_by_graph(tasks, self.jobs * 4)
        manager: Optional[PoolManager] = None
        if self._pool_factory is not None:
            factory = self._pool_factory
            reset = self._pool_reset if self._pool_reset is not None else lambda: None
        else:
            manager = PoolManager(min(self.jobs, len(chunks)))
            factory, reset = manager.acquire, manager.discard
        try:
            with tracer.span(
                "executor.fan_out",
                tasks=len(tasks), chunks=len(chunks), jobs=self.jobs,
            ) as fan_span:
                tracer.counter("executor.fan_out")
                gains: List[Optional[float]] = [None] * len(tasks)
                unfinished: "OrderedDict[int, List[int]]" = OrderedDict(
                    enumerate(chunks)
                )
                attempt = 0
                while unfinished:
                    try:
                        self._dispatch_round(
                            factory(), tasks, unfinished,
                            graph_handles, labels_handles, gains,
                            fan_span, tracer,
                        )
                    except (BrokenProcessPool, ChunkTimeoutError) as exc:
                        attempt += 1
                        if attempt > self.max_retries:
                            raise
                        # Everything a worker managed to append/return is
                        # kept; only the chunks still in ``unfinished`` are
                        # re-dispatched, onto a freshly created pool.
                        tracer.counter("executor.retry")
                        tracer.counter("executor.pool_recreate")
                        tracer.event(
                            "executor.retry",
                            attempt=attempt,
                            chunks=len(unfinished),
                            cause=type(exc).__name__,
                        )
                        reset()
                        time.sleep(RETRY_BACKOFF_SECONDS * attempt)
            if any(gain is None for gain in gains):
                raise RuntimeError("worker chunks did not cover every task")
            return gains
        finally:
            if manager is not None:
                manager.shutdown()

    def _dispatch_round(
        self,
        pool: _ProcessPool,
        tasks: Sequence[TrialTask],
        unfinished: "OrderedDict[int, List[int]]",
        graph_handles: Mapping[str, SharedGraphHandle],
        labels_handles: Mapping[str, SharedLabelsHandle],
        gains: List[Optional[float]],
        fan_span,
        tracer,
    ) -> None:
        """Submit every unfinished chunk and collect until done or dead.

        Completed chunks are removed from ``unfinished`` as their results
        land, so a ``BrokenProcessPool``/timeout abort leaves exactly the
        undelivered chunks behind for the caller's retry round.
        """
        futures = {}
        for chunk_id, chunk in unfinished.items():
            chunk_graphs = {
                tasks[index].graph_key: graph_handles[tasks[index].graph_key]
                for index in chunk
            }
            chunk_labels = {
                tasks[index].labels_key: labels_handles[tasks[index].labels_key]
                for index in chunk
                if tasks[index].labels_key in labels_handles
            }
            future = pool.submit(
                _run_shared_chunk,
                chunk_graphs,
                chunk_labels,
                [(index, tasks[index]) for index in chunk],
                tracer.enabled,
            )
            futures[future] = chunk_id
        # FIRST_COMPLETED waves: progress callbacks fire per finished chunk
        # instead of in submission order; result placement is by index, so
        # the output stays deterministic either way.  The deadline is a
        # *stall* detector — it re-arms on every completion, so slow-but-
        # progressing batches never trip it.
        pending = set(futures)
        while pending:
            done, pending = wait(
                pending, timeout=self.task_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                tracer.counter("executor.chunk_timeout")
                for future in pending:
                    future.cancel()
                raise ChunkTimeoutError(
                    f"no worker chunk completed within {self.task_timeout}s "
                    f"({len(pending)} chunks outstanding)"
                )
            for future in done:
                outcome = future.result()
                if tracer.enabled:
                    pairs, payload = outcome
                    tracer.adopt(
                        payload["spans"],
                        parent_id=fan_span.span_id,
                        counters=payload["counters"],
                    )
                else:
                    pairs = outcome
                for index, gain in pairs:
                    gains[index] = gain
                    tracer.task_done(tasks[index], gain)
                del unfinished[futures[future]]


def executor_for(config) -> Executor:
    """The executor implied by ``config.jobs`` (1 -> serial).

    ``config.max_retries``/``config.task_timeout`` (when present) size the
    parallel executor's crash-retry and stall-deadline behaviour.
    """
    jobs = getattr(config, "jobs", 1)
    if jobs > 1:
        return ParallelExecutor(
            jobs=jobs,
            max_retries=getattr(config, "max_retries", None),
            task_timeout=getattr(config, "task_timeout", None),
        )
    return SerialExecutor()


def cache_for(config) -> CacheLike:
    """The cache implied by ``config.cache`` (False -> no caching).

    Caching now goes through the sharded append-only store; legacy per-task
    caches at the same root keep answering through its read-through path.
    """
    return ShardedResultStore() if getattr(config, "cache", False) else NullCache()


def _run_through_cache(
    span_name: str,
    tasks: Sequence[TrialTask],
    cache: CacheLike,
    compute: Callable[[List[TrialTask]], List[float]],
) -> List[float]:
    """The shared cache-front driver: hits short-circuit, misses compute.

    All telemetry the drivers emit lives here: the batch span,
    ``cache.hit``/``cache.miss``/``batch.tasks`` counters, and the
    ``batch_start``/``task_done`` (cache hits only — executors report
    computed tasks themselves)/``batch_done`` callback dispatch.
    """
    tracer = current_tracer()
    with tracer.span(span_name, tasks=len(tasks)):
        tracer.counter("batch.tasks", len(tasks))
        tracer.batch_start(len(tasks))
        gains: List[Optional[float]] = [cache.get(task) for task in tasks]
        missing = [index for index, gain in enumerate(gains) if gain is None]
        hits = len(tasks) - len(missing)
        tracer.counter("cache.hit", hits)
        tracer.counter("cache.miss", len(missing))
        if tracer.enabled and hits:
            for index, gain in enumerate(gains):
                if gain is not None:
                    tracer.task_done(tasks[index], gain)
        if missing:
            computed = compute([tasks[index] for index in missing])
            for index, gain in zip(missing, computed):
                # Estimator->store boundary: a NaN/inf gain raises here —
                # naming the task and seed — before it can reach a shard,
                # a golden, or an aggregate.
                gain = ensure_finite_gain(tasks[index], gain)
                cache.put(tasks[index], gain)
                gains[index] = gain
        tracer.batch_done(
            {"tasks": len(tasks), "cache_hits": hits, "cache_misses": len(missing)}
        )
        return [float(gain) for gain in gains]


def run_tasks(
    tasks: Sequence[TrialTask],
    graph: Graph,
    labels: Optional[np.ndarray] = None,
    executor: Optional[Executor] = None,
    cache: Optional[CacheLike] = None,
) -> List[float]:
    """Execute a homogeneous (single-graph) task batch through the cache.

    Cache hits are returned as-is; only misses reach the executor, and their
    results are persisted before returning.  The output is aligned with
    ``tasks`` regardless of how many entries were cached.
    """
    executor = executor if executor is not None else SerialExecutor()
    cache = cache if cache is not None else NullCache()
    return _run_through_cache(
        "engine.run_tasks", tasks, cache,
        lambda missing: executor.execute(missing, graph, labels),
    )


def run_batch(
    tasks: Sequence[TrialTask],
    store: GraphStore,
    executor: Optional[Executor] = None,
    cache: Optional[CacheLike] = None,
) -> List[float]:
    """Execute a heterogeneous task batch through the cache.

    The multi-graph counterpart of :func:`run_tasks`: every task resolves
    its graph and labels from ``store`` by the keys it carries, so one call
    can fan out an entire scenario — or several scenarios — at once.
    """
    executor = executor if executor is not None else SerialExecutor()
    cache = cache if cache is not None else NullCache()
    return _run_through_cache(
        "engine.run_batch", tasks, cache,
        lambda missing: executor.execute_batch(missing, store),
    )
