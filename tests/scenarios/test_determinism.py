"""Executor determinism over full scenario batches.

The engine's core guarantee: because every compiled task derives its own
seed, a scenario's results are a pure function of its spec and config —
independent of the executor, the worker count, the scheduling order and the
cache state.  These tests pin that guarantee end to end by hashing the full
result vector of a scenario batch under every execution path.
"""

import hashlib
import json

import pytest

from repro.engine.cache import NullCache, ResultCache
from repro.engine.executors import ParallelExecutor, SerialExecutor, run_tasks
from repro.experiments.config import ExperimentConfig
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.run import load_scenario_graph, run_scenario

CONFIG = ExperimentConfig(trials=2, scale=0.02, seed=0, cache=False)


def _sha256_of(gains):
    payload = json.dumps([float(g) for g in gains]).encode("ascii")
    return hashlib.sha256(payload).hexdigest()


@pytest.fixture(scope="module")
def batch():
    """A full mixed scenario batch: defended, undefended and flat series."""
    spec = get_scenario("fig12a")
    graph = load_scenario_graph(spec, CONFIG)
    return spec, graph, compile_scenario(spec, graph, CONFIG)


class TestParallelMatchesSerial:
    def test_cold_cache_bitwise_identical(self, batch, tmp_path):
        """jobs=4 over a cold on-disk cache == serial without any cache."""
        _, graph, tasks = batch
        serial = run_tasks(tasks, graph, executor=SerialExecutor(), cache=NullCache())
        parallel = run_tasks(
            tasks, graph,
            executor=ParallelExecutor(jobs=4),
            cache=ResultCache(tmp_path / "cold"),
        )
        assert _sha256_of(parallel) == _sha256_of(serial)

    def test_cache_hit_replay_bitwise_identical(self, batch, tmp_path):
        """A warm cache answers the whole batch with the same result vector."""
        _, graph, tasks = batch
        cache = ResultCache(tmp_path / "warm")
        first = run_tasks(tasks, graph, executor=SerialExecutor(), cache=cache)
        assert cache.misses == len(tasks)
        replay = run_tasks(
            tasks, graph, executor=ParallelExecutor(jobs=4), cache=cache
        )
        assert cache.hits == len(tasks)
        assert _sha256_of(replay) == _sha256_of(first)

    def test_full_scenario_run_identical_across_jobs(self, tmp_path):
        """run_scenario(jobs=4) aggregates to byte-identical curves."""
        spec = get_scenario("fig12a")

        def digest(config):
            result = run_scenario(spec, config, cache=NullCache())
            sweep = result.sweep()
            payload = json.dumps(
                {"series": sweep.series, "stderr": sweep.stderr}, sort_keys=True
            ).encode("ascii")
            return hashlib.sha256(payload).hexdigest()

        assert digest(CONFIG) == digest(CONFIG.with_overrides(jobs=4))

    def test_partial_cache_mix_identical(self, batch, tmp_path):
        """Half-warm cache (hits + parallel misses) still reproduces serial."""
        _, graph, tasks = batch
        cache = ResultCache(tmp_path / "half")
        half = tasks[: len(tasks) // 2]
        run_tasks(half, graph, executor=SerialExecutor(), cache=cache)
        mixed = run_tasks(
            tasks, graph, executor=ParallelExecutor(jobs=4), cache=cache
        )
        serial = run_tasks(tasks, graph, executor=SerialExecutor(), cache=NullCache())
        assert _sha256_of(mixed) == _sha256_of(serial)
