"""Smoke tests: every example script must run cleanly end-to-end.

Each example is executed in-process with a patched, smaller dataset scale so
the whole suite stays fast; the scripts' own __main__ guards keep them
import-safe.
"""

import runpy
import sys
from pathlib import Path
from unittest import mock

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"
EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def test_all_examples_discovered():
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 4, "at least quickstart plus three scenarios"


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, capsys, monkeypatch):
    import repro.graph.datasets as datasets

    original = datasets.load_dataset

    def small_load(name, scale=None, rng=0):
        return original(name, scale=0.05, rng=rng)

    # Patch in every module that imported the symbol directly.
    patches = [mock.patch.object(datasets, "load_dataset", small_load)]
    for module_name, module in list(sys.modules.items()):
        if module_name.startswith("repro") and hasattr(module, "load_dataset"):
            patches.append(mock.patch.object(module, "load_dataset", small_load))
    try:
        for patch in patches:
            patch.start()
        runpy.run_path(str(EXAMPLES_DIR / f"{example}.py"), run_name="__main__")
    finally:
        for patch in patches:
            patch.stop()

    output = capsys.readouterr().out
    assert output.strip(), f"{example} produced no output"
