"""``python -m repro`` — the experiment CLI."""

import sys

from repro.experiments.cli import run

if __name__ == "__main__":
    sys.exit(run())
