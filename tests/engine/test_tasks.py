"""Tests for the trial task spec and its content hash."""

import dataclasses

import pytest

from repro.engine.tasks import TrialTask, derive_trial_seed, graph_fingerprint
from repro.graph.adjacency import Graph


def make_task(**overrides):
    fields = dict(
        graph_key="abcd", metric="degree_centrality", attack="degree/mga",
        protocol="lfgdpr", epsilon=4.0, beta=0.05, gamma=0.05, seed=123,
    )
    fields.update(overrides)
    return TrialTask(**fields)


class TestContentHash:
    def test_stable_across_instances(self):
        assert make_task().content_hash() == make_task().content_hash()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("graph_key", "other"),
            ("metric", "clustering_coefficient"),
            ("attack", "degree/rva"),
            ("protocol", "ldpgen"),
            ("epsilon", 2.0),
            ("beta", 0.01),
            ("gamma", 0.1),
            ("seed", 124),
            ("defense", "detect1"),
            ("defense_args", (("threshold", 100),)),
            ("labels_key", "deadbeef"),
        ],
    )
    def test_identity_fields_change_hash(self, field, value):
        assert make_task().content_hash() != make_task(**{field: value}).content_hash()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("figure", "Fig6"),
            ("series", "MGA"),
            ("parameter", "epsilon"),
            ("value", 4.0),
            ("trial", 7),
        ],
    )
    def test_display_fields_do_not_change_hash(self, field, value):
        assert make_task().content_hash() == make_task(**{field: value}).content_hash()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            make_task().seed = 7


class TestDeriveTrialSeed:
    def test_deterministic_and_key_sensitive(self):
        assert derive_trial_seed(0, "a|trial=0") == derive_trial_seed(0, "a|trial=0")
        assert derive_trial_seed(0, "a|trial=0") != derive_trial_seed(0, "a|trial=1")
        assert derive_trial_seed(0, "a|trial=0") != derive_trial_seed(1, "a|trial=0")


class TestGraphFingerprint:
    def test_same_graph_same_fingerprint(self):
        a = Graph(5, [(0, 1), (1, 2)])
        b = Graph(5, [(1, 2), (0, 1)])
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_differs_on_edges_and_size(self):
        base = Graph(5, [(0, 1)])
        assert graph_fingerprint(base) != graph_fingerprint(Graph(5, [(0, 2)]))
        assert graph_fingerprint(base) != graph_fingerprint(Graph(6, [(0, 1)]))
