"""Task executors: serial, process-pool parallel, and the cache-aware driver.

:func:`execute_task` is the single definition of what running a task means;
both executors (and any test stub) go through it, so the only difference
between backends is *where* tasks run.  Because every task carries its own
derived seed, results are bit-identical across executors, worker counts and
scheduling orders.

:func:`run_tasks` is the orchestrator the experiment layer calls: it answers
what it can from the cache, sends only the missing tasks to the executor,
persists the new results and returns gains aligned with the input order.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import Attack
from repro.core.gain import evaluate_attack
from repro.core.threat_model import ThreatModel
from repro.defenses.evaluation import evaluate_defended_attack
from repro.engine.cache import NullCache, ResultCache
from repro.engine.registry import ATTACKS, DEFENSES, PROTOCOLS
from repro.engine.tasks import TrialTask
from repro.graph.adjacency import Graph
from repro.protocols.base import GraphLDPProtocol
from repro.utils.rng import child_rng

#: Either real cache flavour.
CacheLike = Union[ResultCache, NullCache]


def execute_task(
    task: TrialTask,
    graph: Graph,
    labels: Optional[np.ndarray] = None,
    attack_factory: Optional[Callable[[], Attack]] = None,
    protocol_factory: Optional[Callable[[float], GraphLDPProtocol]] = None,
) -> float:
    """Run one trial task and return its total gain.

    ``attack_factory`` / ``protocol_factory`` override the registry lookup;
    the experiment layer passes them when a sweep uses components that are
    not registered (such components cannot be cached or parallelised, but
    they follow the exact same seed derivation, so results stay comparable).
    """
    attack = attack_factory() if attack_factory is not None else ATTACKS.create(task.attack)
    protocol = (
        protocol_factory(task.epsilon)
        if protocol_factory is not None
        else PROTOCOLS.create(task.protocol, epsilon=task.epsilon)
    )
    threat = ThreatModel.sample(
        graph, task.beta, task.gamma, rng=child_rng(task.seed, "threat")
    )
    if task.defense:
        defense = DEFENSES.create(task.defense, **dict(task.defense_args))
        outcome = evaluate_defended_attack(
            graph, protocol, attack, defense, threat,
            metric=task.metric, rng=task.seed, labels=labels,
        )
    else:
        outcome = evaluate_attack(
            graph, protocol, attack, threat,
            metric=task.metric, rng=task.seed, labels=labels,
        )
    return float(outcome.total_gain)


class Executor(abc.ABC):
    """Strategy for running a batch of tasks against one graph."""

    @abc.abstractmethod
    def execute(
        self,
        tasks: Sequence[TrialTask],
        graph: Graph,
        labels: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Gains of ``tasks``, in input order."""


class SerialExecutor(Executor):
    """Run tasks one after another in the calling process."""

    def execute(
        self,
        tasks: Sequence[TrialTask],
        graph: Graph,
        labels: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Gains of ``tasks``, in input order."""
        return [execute_task(task, graph, labels) for task in tasks]


# Worker-process state, installed once per worker by the pool initializer so
# the graph is shipped once per worker instead of once per task.
_WORKER_GRAPH: Optional[Graph] = None
_WORKER_LABELS: Optional[np.ndarray] = None


def _init_worker(graph: Graph, labels: Optional[np.ndarray]) -> None:
    global _WORKER_GRAPH, _WORKER_LABELS
    _WORKER_GRAPH = graph
    _WORKER_LABELS = labels


def _run_in_worker(task: TrialTask) -> float:
    return execute_task(task, _WORKER_GRAPH, _WORKER_LABELS)


class ParallelExecutor(Executor):
    """Fan tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Bit-identical to :class:`SerialExecutor` because tasks are self-seeded;
    the pool only changes wall-clock time.  Falls back to in-process
    execution for batches too small to amortise worker startup.

    Parameters
    ----------
    jobs:
        Worker processes; defaults to the machine's CPU count.
    """

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.jobs = int(jobs) if jobs is not None else (os.cpu_count() or 1)

    def execute(
        self,
        tasks: Sequence[TrialTask],
        graph: Graph,
        labels: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Gains of ``tasks``, in input order."""
        if self.jobs == 1 or len(tasks) <= 1:
            return SerialExecutor().execute(tasks, graph, labels)
        workers = min(self.jobs, len(tasks))
        chunksize = max(1, len(tasks) // (workers * 4))
        with _ProcessPool(
            max_workers=workers, initializer=_init_worker, initargs=(graph, labels)
        ) as pool:
            return list(pool.map(_run_in_worker, tasks, chunksize=chunksize))


def executor_for(config) -> Executor:
    """The executor implied by ``config.jobs`` (1 -> serial)."""
    jobs = getattr(config, "jobs", 1)
    return ParallelExecutor(jobs=jobs) if jobs > 1 else SerialExecutor()


def cache_for(config) -> CacheLike:
    """The cache implied by ``config.cache`` (False -> no caching)."""
    return ResultCache() if getattr(config, "cache", False) else NullCache()


def run_tasks(
    tasks: Sequence[TrialTask],
    graph: Graph,
    labels: Optional[np.ndarray] = None,
    executor: Optional[Executor] = None,
    cache: Optional[CacheLike] = None,
) -> List[float]:
    """Execute a task batch through the cache: the engine's main entry point.

    Cache hits are returned as-is; only misses reach the executor, and their
    results are persisted before returning.  The output is aligned with
    ``tasks`` regardless of how many entries were cached.
    """
    executor = executor if executor is not None else SerialExecutor()
    cache = cache if cache is not None else NullCache()
    gains: List[Optional[float]] = [cache.get(task) for task in tasks]
    missing = [index for index, gain in enumerate(gains) if gain is None]
    if missing:
        computed = executor.execute([tasks[index] for index in missing], graph, labels)
        for index, gain in zip(missing, computed):
            cache.put(tasks[index], gain)
            gains[index] = gain
    return [float(gain) for gain in gains]
