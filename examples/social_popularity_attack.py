"""Scenario: manipulating popularity rankings in a private social network.

The paper's motivating example (§I): a social platform estimates user
popularity from LDP-collected degree centrality.  An attacker who controls a
botnet of compromised accounts can push chosen users up the popularity
ranking — here we make the *least popular* genuine users look popular and
watch them climb.

The script compares all three attacks (RVA, RNA, MGA) on the same threat
model and shows the rank displacement each achieves, plus how the privacy
budget changes the picture.

Run:  python examples/social_popularity_attack.py
"""

import numpy as np

from repro import (
    DegreeMGA,
    DegreeRNA,
    DegreeRVA,
    LFGDPRProtocol,
    ThreatModel,
    evaluate_attack,
    load_dataset,
)


def rank_of(values: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Rank (0 = most popular) of each index under descending ``values``."""
    order = np.argsort(-values)
    ranks = np.empty_like(order)
    ranks[order] = np.arange(order.size)
    return ranks[indices]


def main():
    graph = load_dataset("facebook", scale=0.25)
    print(f"social network surrogate: {graph.num_nodes} users, {graph.num_edges} ties\n")

    # The attacker promotes the 20 least-connected genuine users.
    degrees = graph.degrees()
    nobodies = np.argsort(degrees)[:20]
    fake_users = np.setdiff1d(
        np.random.default_rng(0).permutation(graph.num_nodes)[:50], nobodies
    )[:40]
    threat = ThreatModel(fake_users=fake_users, targets=nobodies, num_nodes=graph.num_nodes)
    print(f"attacker: {threat.num_fake} bots promoting {threat.num_targets} nobodies")

    for epsilon in (2.0, 4.0, 8.0):
        protocol = LFGDPRProtocol(epsilon=epsilon)
        print(f"\n--- privacy budget eps = {epsilon} ---")
        for attack in (DegreeRVA(), DegreeRNA(), DegreeMGA()):
            outcome = evaluate_attack(
                graph, protocol, attack, threat, metric="degree_centrality", rng=1
            )
            # Re-estimate full centralities to compute ranks.
            reports_before = protocol.collect(graph, 42)
            reports_after = protocol.collect(graph, 42, overrides=outcome.overrides)
            before_rank = rank_of(
                protocol.estimate_degree_centrality(reports_before), threat.targets
            )
            after_rank = rank_of(
                protocol.estimate_degree_centrality(reports_after), threat.targets
            )
            climbed = int(np.mean(before_rank - after_rank))
            print(
                f"  {attack.name}: overall gain {outcome.total_gain:7.4f}   "
                f"mean rank climb {climbed:+5d} places"
            )

    print(
        "\nMGA turns the least-connected users into apparent celebrities; the"
        "\nbaselines barely move the ranking - matching Fig. 6 of the paper."
    )


if __name__ == "__main__":
    main()
