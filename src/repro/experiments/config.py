"""Experiment configuration: Table III defaults and the sweep grids of §VIII.

Every value here is lifted from the paper's evaluation setup:

* Table III — ``beta = 0.05``, ``gamma = 0.05``, ``epsilon = 4``;
* Exps 1/4/9 sweep ``epsilon`` over 1..8;
* Exps 2/3/5/6 sweep ``beta``/``gamma`` over {0.001, 0.005, 0.01, 0.05, 0.1};
* Exp 7 sweeps the Detect1 threshold over {50..300} and Detect2's ``beta``
  over {0.001, ..., 0.15};
* Exp 8 sweeps the Detect1 threshold over {50..150}.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_scale,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for all experiment drivers.

    Attributes
    ----------
    beta / gamma / epsilon:
        The Table III defaults, overridden by whichever parameter a figure
        sweeps.
    trials:
        Independent threat-model draws averaged per data point.
    seed:
        Root seed; every trial derives child streams from it.
    scale:
        Dataset scale override (``None`` uses each dataset's default scale;
        benchmarks pass smaller values for quick runs).
    jobs:
        Worker processes for the execution engine; ``1`` runs serially.
        Results are bit-identical for any value (every trial task derives
        its own seed).
    cache:
        Reuse the on-disk trial-result cache (``repro.engine.cache``) so a
        re-run only computes missing points.  Disable with ``--no-cache``.
    max_retries:
        Crash-retry rounds for parallel execution: a worker process dying
        mid-batch (``BrokenProcessPool``) or a stalled round gets the pool
        replaced and only the undelivered chunks re-dispatched, up to this
        many times before the failure propagates.  ``0`` fails fast.
    task_timeout:
        Stall deadline in seconds for one round of in-flight worker chunks
        (``None`` waits forever).  Retries are bit-neutral either way —
        tasks are self-seeded, so a re-run computes identical gains.
    """

    beta: float = 0.05
    gamma: float = 0.05
    epsilon: float = 4.0
    trials: int = 3
    seed: int = 0
    scale: Optional[float] = None
    jobs: int = 1
    cache: bool = True
    max_retries: int = 2
    task_timeout: Optional[float] = None

    def __post_init__(self):
        check_fraction(self.beta, "beta")
        check_fraction(self.gamma, "gamma")
        check_positive(self.epsilon, "epsilon")
        check_positive_int(self.trials, "trials")
        check_positive_int(self.jobs, "jobs")
        if self.scale is not None:
            check_scale(self.scale, "scale")
        if isinstance(self.max_retries, bool) or not isinstance(self.max_retries, int):
            raise TypeError(f"max_retries must be an int, got {self.max_retries!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout is not None:
            check_positive(self.task_timeout, "task_timeout")

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Table III defaults.
DEFAULT_CONFIG = ExperimentConfig()

#: The four evaluation datasets in paper order.
DATASET_NAMES = ("facebook", "enron", "astroph", "gplus")

#: Privacy-budget sweep of Exps 1, 4 and 9 (Figs. 6, 9, 14, 15).
EPSILONS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)

#: Fake-user-fraction sweep of Exps 2 and 5 (Figs. 7, 10).
BETAS = (0.001, 0.005, 0.01, 0.05, 0.1)

#: Target-fraction sweep of Exps 3 and 6 (Figs. 8, 11).
GAMMAS = (0.001, 0.005, 0.01, 0.05, 0.1)

#: Detect1 threshold sweep against MGA on degree centrality (Fig. 12(a)).
DETECT1_THRESHOLDS_DEGREE = (50, 100, 150, 200, 250, 300)

#: Detect1 threshold sweep against MGA on clustering coefficient (Fig. 13(a)).
DETECT1_THRESHOLDS_CLUSTERING = (50, 75, 100, 125, 150)

#: Fake-user fractions for the Detect2-vs-RVA panels (Figs. 12(b), 13(b)).
DETECT2_BETAS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.15)
