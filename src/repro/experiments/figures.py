"""Per-figure experiment drivers: one function per table/figure of §VIII.

Every driver is now a thin wrapper over the declarative scenario subsystem:
the figure's full description (dataset, metric, swept grid, attack ×
protocol × defense series) lives in :mod:`repro.scenarios.catalog`, and each
function here just resolves the registered spec and runs it through
:func:`repro.scenarios.run_scenario`.  Outputs are bit-identical to the
historical hand-written drivers — the scenario compiler reproduces their
seed-derivation keys exactly, and the golden fixtures under ``tests/golden``
pin that equivalence.

The benchmark modules under ``benchmarks/`` call these and print the
resulting tables; EXPERIMENTS.md records how the shapes compare with the
paper.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import DEFAULT_CONFIG, EPSILONS, ExperimentConfig
from repro.experiments.runner import SweepResult

# NOTE: repro.scenarios is imported lazily inside the drivers.  The scenario
# subsystem builds on the experiment layer (config, runner, reporting), while
# this module is the experiment layer's figure-level facade over scenarios —
# a module-level import in either direction would be circular.

__all__ = [
    "community_labels",
    "table2_rows",
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12a", "fig12b", "fig13a", "fig13b", "fig14", "fig15",
    "run_all",
]

#: Every figure scenario, in paper order (table2 is a stats scenario and
#: carries no tasks, so it is not part of the batched fan-out).
FIGURE_SCENARIOS = (
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12a", "fig12b", "fig13a", "fig13b", "fig14", "fig15",
)


def run_all(
    config: ExperimentConfig = DEFAULT_CONFIG,
    dataset: str = "",
    names: Sequence[str] = FIGURE_SCENARIOS,
):
    """Regenerate several figures as one heterogeneous engine batch.

    The session-backed counterpart of calling the per-figure drivers in a
    loop: every scenario compiles up front, distinct dataset surrogates are
    loaded and shared-memory-exported once, and all trials fan out over one
    persistent worker pool (``config.jobs``).  ``dataset`` retargets every
    scenario that supports it; empty keeps each scenario's own default.
    Returns an ordered ``{name: ScenarioResult}`` mapping, bit-identical to
    the individual drivers.
    """
    from repro.scenarios import get_scenario, run_scenarios

    specs = [get_scenario(name, dataset=dataset) for name in names]
    return run_scenarios(specs, config)


def community_labels(graph):
    """Greedy-modularity community labelling of the original graph.

    LF-GDPR's modularity estimator needs a server-held partition; the paper
    does not specify one, so we fix the standard greedy-modularity partition
    (DESIGN.md §2).
    """
    from repro.scenarios.run import community_labels as _community_labels

    return _community_labels(graph)


def _sweep(name: str, dataset: str, config: ExperimentConfig) -> SweepResult:
    """Run a single-panel registered scenario and unwrap its sweep."""
    from repro.scenarios import get_scenario, run_scenario

    return run_scenario(get_scenario(name, dataset=dataset), config).sweep()


def _panels(
    name: str, dataset: str, config: ExperimentConfig, epsilons: Sequence[float]
) -> Dict[str, SweepResult]:
    """Run a protocol-comparison scenario; one sweep per protocol panel."""
    from repro.scenarios import get_scenario, run_scenario

    spec = get_scenario(name, dataset=dataset)
    if tuple(epsilons) != spec.values:
        spec = replace(spec, values=tuple(float(e) for e in epsilons))
    return dict(run_scenario(spec, config).panels)


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------
def table2_rows(config: ExperimentConfig = DEFAULT_CONFIG) -> List[Tuple[str, int, int, int, int]]:
    """(dataset, paper nodes, paper edges, surrogate nodes, surrogate edges)."""
    from repro.scenarios import get_scenario, run_scenario

    return list(run_scenario(get_scenario("table2"), config).table)


# ---------------------------------------------------------------------------
# Figs. 6-8: degree centrality (Exps 1-3)
# ---------------------------------------------------------------------------
def fig6(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Overall gains of attacks to degree centrality vs epsilon."""
    return _sweep("fig6", dataset, config)


def fig7(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of beta on attacks to degree centrality."""
    return _sweep("fig7", dataset, config)


def fig8(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of gamma on attacks to degree centrality."""
    return _sweep("fig8", dataset, config)


# ---------------------------------------------------------------------------
# Figs. 9-11: clustering coefficient (Exps 4-6)
# ---------------------------------------------------------------------------
def fig9(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Overall gains of attacks to clustering coefficient vs epsilon."""
    return _sweep("fig9", dataset, config)


def fig10(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of beta on attacks to clustering coefficient."""
    return _sweep("fig10", dataset, config)


def fig11(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of gamma on attacks to clustering coefficient."""
    return _sweep("fig11", dataset, config)


# ---------------------------------------------------------------------------
# Figs. 12-13: countermeasures (Exps 7-8)
# ---------------------------------------------------------------------------
def fig12a(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect1/Naive1 against MGA on degree centrality vs threshold."""
    return _sweep("fig12a", dataset, config)


def fig12b(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect2/Naive2 against RVA on degree centrality vs beta."""
    return _sweep("fig12b", dataset, config)


def fig13a(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect1/Naive1 against MGA on clustering coefficient vs threshold."""
    return _sweep("fig13a", dataset, config)


def fig13b(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect2/Naive2 against RVA on clustering coefficient vs beta."""
    return _sweep("fig13b", dataset, config)


# ---------------------------------------------------------------------------
# Figs. 14-15: LF-GDPR vs LDPGen (Exp 9)
# ---------------------------------------------------------------------------
def fig14(
    config: ExperimentConfig = DEFAULT_CONFIG,
    dataset: str = "facebook",
    epsilons: Sequence[float] = EPSILONS,
) -> Dict[str, SweepResult]:
    """Attacks on LF-GDPR and LDPGen: clustering coefficient vs epsilon."""
    return _panels("fig14", dataset, config, epsilons)


def fig15(
    config: ExperimentConfig = DEFAULT_CONFIG,
    dataset: str = "facebook",
    epsilons: Sequence[float] = EPSILONS,
) -> Dict[str, SweepResult]:
    """Attacks on LF-GDPR and LDPGen: modularity vs epsilon."""
    return _panels("fig15", dataset, config, epsilons)
