"""Tests for the untargeted manipulation attacks (extension)."""

import numpy as np
import pytest

from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.core.untargeted_attacks import (
    UntargetedConcentratedAttack,
    UntargetedUniformAttack,
    UntargetedWithdrawalAttack,
    evaluate_untargeted_attack,
)
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.lfgdpr import LFGDPRProtocol

ATTACKS = [
    UntargetedUniformAttack(),
    UntargetedConcentratedAttack(),
    UntargetedWithdrawalAttack(),
]


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(300, 4, 0.5, rng=0)


@pytest.fixture(scope="module")
def threat(graph):
    return ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)


@pytest.fixture(scope="module")
def knowledge(graph):
    return AttackerKnowledge.from_protocol(LFGDPRProtocol(epsilon=4.0), graph)


class TestCrafting:
    @pytest.mark.parametrize("attack", ATTACKS, ids=lambda a: a.name)
    def test_one_report_per_fake(self, attack, graph, threat, knowledge):
        overrides = attack.craft(graph, threat, knowledge, rng=0)
        assert sorted(overrides) == threat.fake_users.tolist()

    def test_uniform_respects_budget(self, graph, threat, knowledge):
        overrides = UntargetedUniformAttack().craft(graph, threat, knowledge, rng=0)
        for report in overrides.values():
            assert report.claimed_neighbors.size <= knowledge.connection_budget

    def test_concentrated_shares_victims(self, graph, threat, knowledge):
        overrides = UntargetedConcentratedAttack().craft(graph, threat, knowledge, rng=0)
        reports = list(overrides.values())
        first = reports[0].claimed_neighbors
        assert all(np.array_equal(report.claimed_neighbors, first) for report in reports)

    def test_concentrated_victims_not_fakes(self, graph, threat, knowledge):
        overrides = UntargetedConcentratedAttack().craft(graph, threat, knowledge, rng=0)
        victims = next(iter(overrides.values())).claimed_neighbors
        assert np.intersect1d(victims, threat.fake_users).size == 0

    def test_withdrawal_reports_empty(self, graph, threat, knowledge):
        overrides = UntargetedWithdrawalAttack().craft(graph, threat, knowledge, rng=0)
        for report in overrides.values():
            assert report.claimed_neighbors.size == 0
            assert report.reported_degree == 0.0


class TestEvaluation:
    @pytest.mark.parametrize("attack", ATTACKS, ids=lambda a: a.name)
    def test_distance_positive(self, attack, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        outcome = evaluate_untargeted_attack(graph, protocol, attack, threat, rng=0)
        assert outcome.distance > 0
        assert outcome.before.shape == (graph.num_nodes,)

    def test_metric_validation(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        with pytest.raises(ValueError, match="untargeted"):
            evaluate_untargeted_attack(
                graph, protocol, UntargetedUniformAttack(), threat, metric="modularity"
            )

    def test_l2_concentration_beats_uniform(self, graph, threat):
        """Concentrating claims maximises the L2 displacement."""
        protocol = LFGDPRProtocol(epsilon=4.0)
        concentrated = np.mean(
            [
                evaluate_untargeted_attack(
                    graph, protocol, UntargetedConcentratedAttack(), threat,
                    norm=2.0, rng=seed,
                ).distance
                for seed in range(3)
            ]
        )
        uniform = np.mean(
            [
                evaluate_untargeted_attack(
                    graph, protocol, UntargetedUniformAttack(), threat,
                    norm=2.0, rng=seed,
                ).distance
                for seed in range(3)
            ]
        )
        assert concentrated > uniform

    def test_deterministic(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        a = evaluate_untargeted_attack(
            graph, protocol, UntargetedUniformAttack(), threat, rng=7
        )
        b = evaluate_untargeted_attack(
            graph, protocol, UntargetedUniformAttack(), threat, rng=7
        )
        assert a.distance == b.distance

    def test_clustering_metric_supported(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        outcome = evaluate_untargeted_attack(
            graph, protocol, UntargetedConcentratedAttack(), threat,
            metric="clustering_coefficient", rng=0,
        )
        assert np.isfinite(outcome.distance)
