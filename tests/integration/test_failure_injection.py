"""Failure-injection tests: malformed inputs must fail loudly or degrade
gracefully — never corrupt estimates silently."""

import numpy as np
import pytest

from repro.core.degree_attacks import DegreeMGA
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.defenses.degree_consistency import DegreeConsistencyDefense
from repro.defenses.frequent_itemset import FrequentItemsetDefense
from repro.graph.adjacency import Graph
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.base import CollectedReports, FakeReport
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(120, 3, 0.5, rng=0)


@pytest.fixture(scope="module")
def protocol():
    return LFGDPRProtocol(epsilon=4.0)


class TestMalformedOverrides:
    def test_negative_fake_id(self, graph, protocol):
        overrides = {-1: FakeReport(claimed_neighbors=[0], reported_degree=1.0)}
        with pytest.raises(ValueError):
            protocol.collect(graph, rng=0, overrides=overrides)

    def test_claim_beyond_graph(self, graph, protocol):
        overrides = {0: FakeReport(claimed_neighbors=[10_000], reported_degree=1.0)}
        with pytest.raises(ValueError, match="out-of-range"):
            protocol.collect(graph, rng=0, overrides=overrides)

    def test_nan_degree_propagates_visibly(self, graph, protocol):
        """A NaN degree must show up as NaN for that user, not poison others."""
        overrides = {0: FakeReport(claimed_neighbors=[1], reported_degree=float("nan"))}
        reports = protocol.collect(graph, rng=0, overrides=overrides)
        assert np.isnan(reports.reported_degrees[0])
        assert np.all(np.isfinite(reports.reported_degrees[1:]))

    def test_extreme_degree_value_kept_verbatim(self, graph, protocol):
        overrides = {0: FakeReport(claimed_neighbors=[1], reported_degree=1e18)}
        reports = protocol.collect(graph, rng=0, overrides=overrides)
        assert reports.reported_degrees[0] == 1e18


class TestMalformedReports:
    def test_mismatched_degree_vector_rejected_at_construction(self, graph, protocol):
        reports = protocol.collect(graph, rng=0)
        with pytest.raises(ValueError, match="one report per user"):
            CollectedReports(
                perturbed_graph=reports.perturbed_graph,
                reported_degrees=reports.reported_degrees[:10],
                adjacency_epsilon=reports.adjacency_epsilon,
                degree_epsilon=reports.degree_epsilon,
            )

    def test_defense_on_empty_graph_reports(self):
        reports = CollectedReports(
            perturbed_graph=Graph(10),
            reported_degrees=np.zeros(10),
            adjacency_epsilon=2.0,
            degree_epsilon=2.0,
        )
        # Nothing to co-occur: no one should be flagged by Detect1.
        assert FrequentItemsetDefense(threshold=10).detect(reports).size == 0

    def test_detect2_with_all_zero_degrees(self):
        reports = CollectedReports(
            perturbed_graph=Graph(10),
            reported_degrees=np.zeros(10),
            adjacency_epsilon=2.0,
            degree_epsilon=2.0,
        )
        flagged = DegreeConsistencyDefense().detect(reports)
        assert flagged.size == 0


class TestDegenerateThreatModels:
    def test_attack_on_tiny_graph(self, protocol):
        tiny = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        threat = ThreatModel(fake_users=[0], targets=[3], num_nodes=6)
        knowledge = AttackerKnowledge.from_protocol(protocol, tiny)
        overrides = DegreeMGA().craft(tiny, threat, knowledge, rng=0)
        reports = protocol.collect(tiny, rng=0, overrides=overrides)
        estimates = protocol.estimate_degree_centrality(reports)
        assert np.all(np.isfinite(estimates))

    def test_all_but_one_fake(self, protocol):
        graph = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        threat = ThreatModel(fake_users=[0, 1, 2, 3, 4], targets=[5], num_nodes=6)
        knowledge = AttackerKnowledge.from_protocol(protocol, graph)
        overrides = DegreeMGA().craft(graph, threat, knowledge, rng=0)
        reports = protocol.collect(graph, rng=0, overrides=overrides)
        assert np.isfinite(protocol.estimate_degree_centrality(reports)[5])

    def test_targets_cannot_be_fakes(self):
        with pytest.raises(ValueError, match="disjoint"):
            ThreatModel(fake_users=[1], targets=[1], num_nodes=5)


class TestExcludedEdgeCases:
    def test_everything_excluded(self, graph, protocol):
        reports = protocol.collect(graph, rng=0)
        all_excluded = CollectedReports(
            perturbed_graph=Graph(graph.num_nodes),
            reported_degrees=reports.reported_degrees,
            adjacency_epsilon=reports.adjacency_epsilon,
            degree_epsilon=reports.degree_epsilon,
            excluded=np.arange(graph.num_nodes),
        )
        estimates = protocol.estimate_degree_centrality(all_excluded)
        assert np.all(estimates == 0.0)

    def test_single_excluded_rescales(self, graph, protocol):
        from repro.defenses.base import remove_flagged_pairs

        reports = protocol.collect(graph, rng=0)
        repaired = remove_flagged_pairs(reports, np.array([0]))
        estimates = protocol.estimate_degree_centrality(repaired)
        assert np.all(np.isfinite(estimates))
        assert estimates[0] == 0.0
