"""Attack evaluation: the overall gain of Eqs. (4)–(5).

``Gain = sum_t |f~_t,after - f~_t,before|`` over the target nodes, where both
estimates come from full protocol runs.  The *before* run has every user —
including the (not yet activated) fake users — reporting honestly; the
*after* run replaces fake users' reports with the attack's crafted values.

By default the two runs share their random streams (common random numbers):
the protocol derives genuine-user noise from named child streams of one
seed, so the measured gain isolates the attack's effect instead of LDP noise
variance.  ``paired=False`` re-randomises the after run for sensitivity
analysis (benchmarked in ``bench_theory_validation``).

Paired runs flow through :meth:`GraphLDPProtocol.collect_paired`: the honest
world is collected once and the after-world derived from the shared state —
bit-identical to two seed-replayed ``collect`` calls, but the honest
randomness is drawn once and the estimators can update honest estimates
incrementally over the attacker-touched rows.  ``REPRO_PAIRED_COLLECTION=0``
forces the legacy two-collection path (identical outputs; the knob exists for
A/B benchmarking and bisection).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.base import Attack
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.graph.adjacency import Graph
from repro.protocols.base import FakeReport, GraphLDPProtocol
from repro.utils.rng import RngLike, child_rng, ensure_rng

#: Metrics an attack can be evaluated on.
METRICS = ("degree_centrality", "clustering_coefficient", "modularity")

#: Environment variable: set to ``"0"`` to disable shared-collection reuse
#: and run paired evaluations through two independent seed-replayed collects.
PAIRED_COLLECTION_ENV = "REPRO_PAIRED_COLLECTION"


def paired_collection_enabled() -> bool:
    """Whether paired evaluations share one honest collection (default on)."""
    return os.environ.get(PAIRED_COLLECTION_ENV, "1") != "0"


@dataclass
class AttackOutcome:
    """Result of one attack evaluation.

    ``before``/``after`` hold the estimated metric of every target (for the
    global modularity metric they are length-1 arrays).
    """

    attack_name: str
    metric: str
    targets: np.ndarray
    before: np.ndarray
    after: np.ndarray
    overrides: Dict[int, FakeReport]

    @property
    def per_target_gain(self) -> np.ndarray:
        """``|f~_after - f~_before|`` per target (Eq. 4)."""
        return np.abs(self.after - self.before)

    @property
    def total_gain(self) -> float:
        """Overall gain: the sum over targets (Eq. 5)."""
        return float(self.per_target_gain.sum())

    @property
    def mean_gain(self) -> float:
        """Average per-target gain (useful across different r)."""
        return float(self.per_target_gain.mean())


def metric_estimates(
    protocol: GraphLDPProtocol,
    metric: str,
    before_reports,
    after_reports,
    targets: np.ndarray,
    labels: Optional[np.ndarray] = None,
) -> tuple:
    """Before/after target estimates for one paired pair of report views.

    The single definition of how a metric name maps onto the protocol's
    estimator surface, shared by :func:`evaluate_attack` and the engine's
    batched point kernel (``repro.engine.kernels``) so both paths produce
    identical floats by construction.  Modularity is a global metric: its
    estimates are length-1 arrays regardless of ``targets``.
    """
    if metric == "degree_centrality":
        before = protocol.estimate_degree_centrality(before_reports)[targets]
        after = protocol.estimate_degree_centrality(after_reports)[targets]
    elif metric == "clustering_coefficient":
        before = protocol.estimate_clustering_coefficient(before_reports)[targets]
        after = protocol.estimate_clustering_coefficient(after_reports)[targets]
    else:
        before = np.array([protocol.estimate_modularity(before_reports, labels)])
        after = np.array([protocol.estimate_modularity(after_reports, labels)])
    return before, after


def evaluate_attack(
    graph: Graph,
    protocol: GraphLDPProtocol,
    attack: Attack,
    threat: ThreatModel,
    metric: str = "degree_centrality",
    rng: RngLike = 0,
    labels: Optional[np.ndarray] = None,
    paired: bool = True,
) -> AttackOutcome:
    """Craft, run the paired before/after collections, and measure the gain.

    Parameters
    ----------
    metric:
        One of :data:`METRICS`.  ``"modularity"`` additionally needs
        ``labels`` (the server-held community labelling).
    rng:
        Seed for the whole evaluation; protocol noise and attack randomness
        use independent child streams.
    paired:
        Common random numbers between the two runs (default).
    """
    if metric not in METRICS:
        raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
    if metric == "modularity" and labels is None:
        raise ValueError("modularity evaluation requires community labels")

    knowledge = AttackerKnowledge.from_protocol(protocol, graph)
    attack_rng = child_rng(rng, "attack-craft")
    overrides = attack.craft(graph, threat, knowledge, rng=attack_rng)

    missing = np.setdiff1d(threat.fake_users, np.fromiter(overrides.keys(), dtype=np.int64))
    if missing.size:
        raise ValueError(f"attack left fake users without reports: {missing.tolist()}")

    protocol_seed = int(child_rng(rng, "protocol-run").integers(2**63 - 1))
    if paired and paired_collection_enabled():
        # One honest collection, shared: the after-view applies the overrides
        # to the same perturbed state the before-view exposes (bit-identical
        # to replaying the seed, without re-drawing the honest randomness).
        run = protocol.collect_paired(graph, protocol_seed)
        before_reports = run.before
        after_reports = run.after(overrides)
    else:
        before_reports = protocol.collect(graph, protocol_seed)
        after_seed = (
            protocol_seed
            if paired
            else int(child_rng(rng, "protocol-run-after").integers(2**63 - 1))
        )
        after_reports = protocol.collect(graph, after_seed, overrides=overrides)

    before, after = metric_estimates(
        protocol, metric, before_reports, after_reports, threat.targets, labels
    )

    # The estimators return float64 arrays already; fancy-indexing them by
    # the target ids yields fresh float64 arrays, so no defensive re-copy is
    # needed — and a mapping that is already a plain dict is adopted as-is.
    return AttackOutcome(
        attack_name=attack.name,
        metric=metric,
        targets=threat.targets,
        before=before,
        after=after,
        overrides=overrides if type(overrides) is dict else dict(overrides),
    )


def average_gain(
    graph: Graph,
    protocol: GraphLDPProtocol,
    attack: Attack,
    metric: str,
    beta: float,
    gamma: float,
    trials: int = 3,
    rng: RngLike = 0,
    labels: Optional[np.ndarray] = None,
) -> float:
    """Mean total gain over ``trials`` independent threat-model draws.

    This is the quantity the paper's figures plot: each trial redraws fake
    users, targets, attack randomness and protocol noise.
    """
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    root = ensure_rng(rng)
    gains = []
    for trial in range(trials):
        trial_seed = int(root.integers(2**63 - 1))
        threat = ThreatModel.sample(graph, beta, gamma, rng=child_rng(trial_seed, "threat"))
        outcome = evaluate_attack(
            graph, protocol, attack, threat, metric=metric, rng=trial_seed, labels=labels
        )
        gains.append(outcome.total_gain)
    return float(np.mean(gains))
