"""Attack interface and crafting helpers shared by all attacks."""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from repro.graph.adjacency import Graph
from repro.ldp.mechanisms import rr_keep_probability
from repro.protocols.base import FakeReport
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.utils.rng import RngLike, ensure_rng


class Attack(abc.ABC):
    """A data poisoning attack: crafts one report per fake user.

    Subclasses implement :meth:`craft`; everything else (running the
    protocol, measuring gain) lives in ``repro.core.gain`` so that every
    attack is a pure report-crafting strategy, exactly as in the paper.
    """

    #: Short name used in experiment tables ("RVA", "RNA", "MGA", ...).
    name: str = "attack"

    @abc.abstractmethod
    def craft(
        self,
        graph: Graph,
        threat: ThreatModel,
        knowledge: AttackerKnowledge,
        rng: RngLike = None,
    ) -> Dict[int, FakeReport]:
        """Return the override report for every fake user.

        ``graph`` is passed because fake users are compromised real devices:
        the attacker can read (and chooses whether to reuse) each fake
        user's organic neighbour list.  Attacks never read other nodes'
        edges.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def random_new_neighbors(
    node: int,
    existing: np.ndarray,
    count: int,
    num_nodes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``count`` distinct new neighbours for ``node`` uniformly.

    Excludes ``node`` itself and ``existing`` neighbours.  Returns fewer than
    ``count`` only if the graph runs out of candidates.
    """
    forbidden = np.union1d(existing, [node])
    available = num_nodes - forbidden.size
    count = min(count, available)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    chosen: np.ndarray = np.empty(0, dtype=np.int64)
    while chosen.size < count:
        draws = rng.integers(0, num_nodes, size=int((count - chosen.size) * 1.3) + 8)
        draws = np.setdiff1d(draws, forbidden)
        chosen = np.union1d(chosen, draws)
    if chosen.size > count:
        chosen = rng.choice(chosen, size=count, replace=False)
    return np.sort(chosen)


def rr_perturb_neighbor_set(
    node: int,
    neighbors: np.ndarray,
    num_nodes: int,
    epsilon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Randomized response applied to one adjacency bit vector, sparsely.

    Used by RNA, which submits *honestly perturbed* reports: each true
    neighbour bit survives with probability ``p`` and each of the remaining
    ``N - 1 - d`` zero bits flips with probability ``1 - p``.
    """
    keep = rr_keep_probability(epsilon)
    neighbors = np.unique(np.asarray(neighbors, dtype=np.int64))
    survivors = neighbors[rng.random(neighbors.size) < keep]
    num_zero_bits = num_nodes - 1 - neighbors.size
    flip_count = int(rng.binomial(num_zero_bits, 1.0 - keep)) if num_zero_bits > 0 else 0
    flipped = random_new_neighbors(node, neighbors, flip_count, num_nodes, rng)
    return np.union1d(survivors, flipped)


def ensure_attack_rng(rng: RngLike) -> np.random.Generator:
    """Single place to coerce attack RNGs (keeps call sites short)."""
    return ensure_rng(rng)
