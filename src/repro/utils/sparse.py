"""Sparse pair-sampling helpers.

The randomized-response simulator (``repro.ldp.perturbation``) needs to draw
uniform random *non-edges* of a graph without materialising the dense N×N
adjacency matrix.  The helpers here encode unordered node pairs as integers,
sample uniform pairs, and reject duplicates/self-loops efficiently.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_non_negative


def pair_count(n: int) -> int:
    """Number of unordered node pairs among ``n`` nodes, i.e. C(n, 2)."""
    check_non_negative(n, "n")
    return n * (n - 1) // 2


def pairs_between(size_a, size_b):
    """Number of distinct cross-group pairs between disjoint groups.

    Works elementwise on arrays, so a full group-size vector yields the
    whole pair-capacity matrix in one expression::

        >>> sizes = np.array([2, 3])
        >>> pairs_between(sizes[:, None], sizes[None, :])[0, 1]
        6
    """
    size_a = np.asarray(size_a, dtype=np.int64)
    size_b = np.asarray(size_b, dtype=np.int64)
    if np.any(size_a < 0) or np.any(size_b < 0):
        raise ValueError("group sizes must be non-negative")
    product = size_a * size_b
    return int(product) if product.ndim == 0 else product


def encode_pairs(rows: np.ndarray, cols: np.ndarray, n: int) -> np.ndarray:
    """Encode unordered pairs (i, j), i < j, as unique int64 codes.

    The code of a pair is its rank in the row-major upper-triangle ordering:
    ``code(i, j) = i*n - i*(i+1)//2 + (j - i - 1)``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError("rows and cols must have the same shape")
    lo = np.minimum(rows, cols)
    hi = np.maximum(rows, cols)
    if lo.size and (lo.min() < 0 or hi.max() >= n):
        raise ValueError("node index out of range")
    if np.any(lo == hi):
        raise ValueError("self-loops cannot be encoded as pairs")
    return lo * n - lo * (lo + 1) // 2 + (hi - lo - 1)


#: Cached per-``n`` row-start rank vectors for :func:`decode_pairs`.
_ROW_START_CACHE: dict = {}
_ROW_START_CACHE_LIMIT = 8


def _row_starts(n: int) -> np.ndarray:
    """Rank of the first pair of each row: ``r(i) = i*n - i*(i+1)//2``.

    Strictly increasing over ``i < n`` (consecutive gaps are ``n - i - 1``),
    so a binary search over it recovers the row of any pair code exactly.
    Cached read-only per ``n`` — every decode of the same-order graph reuses
    one vector.
    """
    cached = _ROW_START_CACHE.get(n)
    if cached is None:
        i = np.arange(n, dtype=np.int64)
        cached = i * n - i * (i + 1) // 2
        cached.setflags(write=False)
        _ROW_START_CACHE[n] = cached
        while len(_ROW_START_CACHE) > _ROW_START_CACHE_LIMIT:
            _ROW_START_CACHE.pop(next(iter(_ROW_START_CACHE)))
    return cached


def decode_pairs(codes: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`encode_pairs`: codes back to (i, j) with i < j.

    Pure integer inversion: binary-search the cached row-start ranks for the
    row, subtract for the column.  Exact by construction (no float rounding
    to guard), and one vectorised pass over the codes.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.size and (codes.min() < 0 or codes.max() >= pair_count(n)):
        raise ValueError("pair code out of range")
    row_starts = _row_starts(n)
    i = np.searchsorted(row_starts, codes, side="right") - 1
    j = codes - row_starts[i] + i + 1
    return i, j


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct elements of an int array (``np.unique`` equivalent).

    Sorts in place — callers pass freshly drawn scratch arrays — and drops
    adjacent duplicates with one comparison pass.  numpy >= 2.3 routes
    ``np.unique`` through a hash table whose per-element cost dominates the
    rejection-sampling hot loop; an explicit sort + mask is severalfold
    faster at the batch sizes drawn there and produces the identical array.
    """
    if values.size == 0:
        return values
    values.sort()
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def merge_sorted_disjoint(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted int64 arrays with no common elements into one.

    Equivalent to ``np.union1d(a, b)`` for disjoint sorted inputs, but a
    vectorised O(a + b) placement instead of a fresh O((a+b) log(a+b)) sort —
    the difference matters when merging the near-dense edge sets produced by
    low-epsilon randomized response.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    out = np.empty(a.size + b.size, dtype=np.int64)
    positions = np.searchsorted(a, b) + np.arange(b.size)
    mask = np.ones(out.size, dtype=bool)
    mask[positions] = False
    out[positions] = b
    out[mask] = a
    return out


def reject_members(draws: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Drop every element of sorted ``draws`` present in sorted ``reference``.

    Binary-search membership over the sorted ``reference`` — the shared
    idiom behind rejection sampling and the net-change bookkeeping of
    attack-override application.  Both inputs must be sorted; ``draws``
    need not be unique.
    """
    if not reference.size or not draws.size:
        return draws
    positions = np.searchsorted(reference, draws)
    positions = np.minimum(positions, reference.size - 1)
    return draws[reference[positions] != draws]


#: Pair-space cap (16M codes, a 16 MiB bool table) for the membership-table
#: rejection path of :func:`sample_pairs_excluding`; larger spaces binary
#: search instead.  Speed dispatch only — accepted codes are identical.
_MEMBER_TABLE_MAX_CODES = 1 << 24


def sample_pairs_excluding(
    n: int,
    count: int,
    forbidden_codes: np.ndarray,
    rng: np.random.Generator,
    max_rounds: int = 64,
    oversample: float | None = None,
) -> np.ndarray:
    """Sample ``count`` distinct unordered-pair codes uniformly, avoiding a set.

    ``forbidden_codes`` must be a sorted int64 array (typically the codes of
    the existing edges).  Sampling is rejection-based: draw a batch, drop
    forbidden and duplicate codes, repeat.

    Accepted draws accumulate as per-round blocks; rejection tests binary-search
    the fixed forbidden set and each (small) accepted block separately, and the
    blocks are concatenated once at the end.  The previous implementation
    re-sorted the whole forbidden-plus-accepted union every round — O(E log E)
    per round with E ~ n^2/4 in the dense-flip regime of low-epsilon randomized
    response — which made sampling quadratic-ish in the flip count.

    ``oversample`` selects the batch-sizing policy:

    * ``None`` (default) — the flat ``1.1 * remaining + 16`` of the original
      implementation.  This keeps the generator stream *draw-for-draw
      identical* to every previously recorded run: batch sizes determine what
      ``rng`` emits, what ``rng`` emits determines the sampled pairs, and the
      sampled pairs flow into ``perturb_graph`` and therefore into every
      cached engine result (``repro.engine.cache.CACHE_VERSION`` stays valid).
      In dense regimes this takes O(log) rounds, but each round is now cheap.
    * a float ``f`` — density-proportional batches
      ``f * remaining / (1 - rho)`` where ``rho`` is the current density of
      forbidden plus already-accepted codes, converging in ~1 round even when
      half of all pairs are excluded.  This consumes a *different* stream from
      the same ``rng`` (still deterministic), so it must not be used where
      bit-compatibility with previously recorded results matters.
    """
    total = pair_count(n)
    forbidden = np.asarray(forbidden_codes, dtype=np.int64)
    available = total - forbidden.size
    if count > available:
        raise ValueError(
            f"cannot sample {count} pairs: only {available} non-forbidden pairs exist"
        )
    if count == 0:
        return np.empty(0, dtype=np.int64)

    # Small pair spaces get an O(1)-per-draw membership table covering
    # forbidden plus already-accepted codes; larger ones fall back to binary
    # search.  Both reject exactly the same draws, so the accepted codes (and
    # the generator stream) are identical either way.
    member = None
    if total <= _MEMBER_TABLE_MAX_CODES:
        member = np.zeros(total, dtype=bool)
        member[forbidden] = True

    chosen: list[np.ndarray] = []
    excluded_size = forbidden.size
    remaining = count
    for _ in range(max_rounds):
        if oversample is None:
            # Flat factor plus a small floor: expected round count ~1 for
            # sparse forbidden sets, and stream-compatible with history.
            batch = max(int(remaining * 1.1) + 16, remaining)
        else:
            density = excluded_size / total if total else 0.0
            batch = max(
                int(remaining * oversample / max(1.0 - density, 1e-9)) + 16, remaining
            )
        draws = rng.integers(0, total, size=batch, dtype=np.int64)
        draws = sorted_unique(draws)
        if member is not None:
            draws = draws[~member[draws]]
        else:
            draws = reject_members(draws, forbidden)
            # Earlier blocks are sorted (a post-``choice`` block is only ever
            # appended in the final round, after which the loop exits).
            for block in chosen:
                draws = reject_members(draws, block)
        if draws.size > remaining:
            draws = rng.choice(draws, size=remaining, replace=False)
        if draws.size:
            if member is not None:
                member[draws] = True
            chosen.append(draws)
            excluded_size += draws.size
            remaining -= draws.size
        if remaining == 0:
            return np.concatenate(chosen)
    raise RuntimeError(
        f"pair sampling failed to converge after {max_rounds} rounds "
        f"({remaining}/{count} still missing)"
    )
