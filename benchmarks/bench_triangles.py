"""Microbenchmark — packed vs sparse triangle counting across densities.

Runs in the CI smoke job so backend perf regressions show up in the log.
At each density both backends must agree bit-for-bit; the packed backend is
expected to pull ahead as density grows (the dispatch threshold in
``repro.graph.bitmatrix`` sits at 0.05 by default).
"""

import time

import numpy as np
import pytest
from conftest import emit

from repro.graph import metrics
from repro.graph.bitmatrix import should_use_packed
from repro.graph.generators import erdos_renyi_graph

NODES = 600
DENSITIES = [0.01, 0.15, 0.45]


def _best_of(callable_, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_triangle_backends_timing():
    lines = [
        f"triangles_per_node backends, n={NODES} (best of 3)",
        f"{'density':>8} {'sparse_s':>10} {'packed_s':>10} {'speedup':>8} {'dispatch':>9}",
    ]
    for density in DENSITIES:
        graph = erdos_renyi_graph(NODES, density, rng=int(density * 1000))
        sparse_time, sparse_counts = _best_of(lambda: metrics._triangles_sparse(graph))
        packed_time, packed_counts = _best_of(lambda: metrics._triangles_packed(graph))
        assert np.array_equal(sparse_counts, packed_counts), f"backend mismatch at {density}"
        dispatch = "packed" if should_use_packed(graph) else "sparse"
        lines.append(
            f"{density:>8.2f} {sparse_time:>10.4f} {packed_time:>10.4f} "
            f"{sparse_time / max(packed_time, 1e-9):>7.1f}x {dispatch:>9}"
        )
    emit("bench_triangles", "\n".join(lines))


@pytest.mark.parametrize("density", DENSITIES)
def test_dispatch_routes_as_documented(density, monkeypatch):
    monkeypatch.delenv("REPRO_DENSE_THRESHOLD", raising=False)
    monkeypatch.delenv("REPRO_DENSE_MAX_BYTES", raising=False)
    graph = erdos_renyi_graph(NODES, density, rng=0)
    expected_packed = density >= 0.05
    assert should_use_packed(graph) == expected_packed
