"""The three data poisoning attacks against degree centrality (§V).

All three attacks act through the adjacency bits fake users claim: every
crafted bit toward a target raises the server's calibrated degree estimate of
that target.

* **RVA** — random connections up to the budget, random degree value.  Hits
  targets only by chance.
* **RNA** — one crafted edge to a random target, then honest LDP
  perturbation of the whole report.  Stealthy but weak and insensitive to
  the privacy budget.
* **MGA** — every fake node claims as many targets as the connection budget
  allows.  Maximizes the overall gain (Theorem 1).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.base import Attack, ensure_attack_rng, random_new_neighbors
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.graph.adjacency import Graph
from repro.ldp.mechanisms import rr_keep_probability
from repro.protocols.base import FakeReport
from repro.utils.rng import RngLike


class DegreeRVA(Attack):
    """Random Value Attack on degree centrality.

    Keeps the fake node's organic edges, adds random new connections up to
    the attacker's connection budget (so the report blends in with perturbed
    genuine reports), and reports a degree drawn uniformly from the degree
    space.  Crafted values are sent verbatim — no further perturbation.
    """

    name = "RVA"

    def craft(
        self,
        graph: Graph,
        threat: ThreatModel,
        knowledge: AttackerKnowledge,
        rng: RngLike = None,
    ) -> Dict[int, FakeReport]:
        generator = ensure_attack_rng(rng)
        budget = knowledge.connection_budget
        overrides: Dict[int, FakeReport] = {}
        for fake in threat.fake_users.tolist():
            organic = graph.neighbors(fake)
            extra = max(0, budget - organic.size)
            new = random_new_neighbors(fake, organic, extra, threat.num_nodes, generator)
            claimed = np.union1d(organic, new)
            reported = float(generator.integers(0, knowledge.degree_domain))
            overrides[fake] = FakeReport(claimed_neighbors=claimed, reported_degree=reported)
        return overrides


class DegreeRNA(Attack):
    """Random Node Attack on degree centrality.

    Each fake node adds one edge to a uniformly chosen target to its local
    data and then runs the *honest* LDP client on it.  Under common random
    numbers the honest client's output differs from the unattacked run only
    in the crafted edge, so the report is expressed in augment mode: the
    extra edge (itself subjected to randomized response, surviving with
    probability ``p``) plus a degree shift of exactly +1.
    """

    name = "RNA"

    def craft(
        self,
        graph: Graph,
        threat: ThreatModel,
        knowledge: AttackerKnowledge,
        rng: RngLike = None,
    ) -> Dict[int, FakeReport]:
        generator = ensure_attack_rng(rng)
        keep = rr_keep_probability(knowledge.adjacency_epsilon)
        overrides: Dict[int, FakeReport] = {}
        for fake in threat.fake_users.tolist():
            target = int(generator.choice(threat.targets))
            already_connected = graph.has_edge(fake, target)
            # The crafted bit goes through randomized response like any other.
            survives = generator.random() < keep
            extra = (
                np.array([target], dtype=np.int64)
                if survives and not already_connected
                else np.empty(0, dtype=np.int64)
            )
            overrides[fake] = FakeReport(
                claimed_neighbors=extra,
                reported_degree=0.0,
                augment=True,
                degree_delta=0.0 if already_connected else 1.0,
            )
        return overrides


class DegreeMGA(Attack):
    """Maximal Gain Attack on degree centrality.

    Each fake node claims edges to ``min(r, budget)`` randomly chosen targets
    (all of them when the budget allows), keeps its organic edges in the
    report, and sends everything verbatim.  Theorem 1 gives the expected
    overall gain of this strategy.

    Parameters
    ----------
    respect_budget:
        If False the budget cap is ignored and every fake node claims every
        target — the unconstrained optimum, trivially detectable; kept as an
        ablation (DESIGN.md §6).
    keep_organic_edges:
        If False the report contains target claims only.
    evade_consistency:
        Extension: make both degree channels agree so Detect2 (§VII-B) sees
        nothing.  The report is padded with random non-target claims up to
        the connection budget — the 1-count of an average honest *perturbed*
        row — and the degree value sent is what the server's calibration
        derives from that count, ``(|claims| - (N-1)(1-p)) / (2p-1)``.
        Target claims are unaffected, so the gain is unchanged; only
        coordination/noise-level signals remain (see the hybrid defense).
    """

    name = "MGA"

    def __init__(
        self,
        respect_budget: bool = True,
        keep_organic_edges: bool = True,
        evade_consistency: bool = False,
    ):
        self.respect_budget = bool(respect_budget)
        self.keep_organic_edges = bool(keep_organic_edges)
        self.evade_consistency = bool(evade_consistency)

    def craft(
        self,
        graph: Graph,
        threat: ThreatModel,
        knowledge: AttackerKnowledge,
        rng: RngLike = None,
    ) -> Dict[int, FakeReport]:
        generator = ensure_attack_rng(rng)
        budget = knowledge.connection_budget if self.respect_budget else threat.num_targets
        per_fake = min(threat.num_targets, budget)
        overrides: Dict[int, FakeReport] = {}
        for fake in threat.fake_users.tolist():
            if per_fake >= threat.num_targets:
                chosen = threat.targets
            else:
                chosen = generator.choice(threat.targets, size=per_fake, replace=False)
            claimed = (
                np.union1d(graph.neighbors(fake), chosen)
                if self.keep_organic_edges
                else np.sort(np.asarray(chosen, dtype=np.int64))
            )
            if self.evade_consistency:
                padding = random_new_neighbors(
                    fake,
                    claimed,
                    max(0, knowledge.connection_budget - claimed.size),
                    threat.num_nodes,
                    generator,
                )
                claimed = np.union1d(claimed, padding)
            overrides[fake] = FakeReport(
                claimed_neighbors=claimed,
                reported_degree=self._degree_report(claimed.size, knowledge),
            )
        return overrides

    def _degree_report(self, claim_count: int, knowledge: AttackerKnowledge) -> float:
        """The degree value sent alongside the crafted bits."""
        if not self.evade_consistency:
            return float(claim_count)
        keep = rr_keep_probability(knowledge.adjacency_epsilon)
        calibrated = (
            claim_count - (knowledge.num_nodes - 1) * (1.0 - keep)
        ) / (2.0 * keep - 1.0)
        return max(0.0, float(calibrated))
