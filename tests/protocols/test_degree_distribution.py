"""Tests for LDP degree-distribution estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.base import CollectedReports, FakeReport
from repro.protocols.degree_distribution import (
    degree_histogram,
    estimate_degree_distribution,
    histogram_distance,
)
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(300, 4, 0.5, rng=0)


class TestDegreeHistogram:
    def test_normalised(self):
        hist = degree_histogram(np.array([0.0, 1.0, 5.0, 5.0]), 10, bins=5)
        assert hist.sum() == pytest.approx(1.0)

    def test_clipping(self):
        hist = degree_histogram(np.array([-10.0, 100.0]), 10, bins=3)
        assert hist[0] == pytest.approx(0.5)
        assert hist[-1] == pytest.approx(0.5)

    def test_empty_degrades_to_uniform(self):
        hist = degree_histogram(np.array([]), 10, bins=4)
        assert np.allclose(hist, 0.25)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            degree_histogram(np.array([1.0]), 10, bins=0)
        with pytest.raises(ValueError):
            degree_histogram(np.array([1.0]), 1, bins=4)

    @given(
        degrees=st.lists(st.floats(-50, 500, allow_nan=False), min_size=1, max_size=60),
        bins=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_a_distribution(self, degrees, bins):
        hist = degree_histogram(np.array(degrees), 100, bins=bins)
        assert hist.shape == (bins,)
        assert np.all(hist >= 0)
        assert hist.sum() == pytest.approx(1.0)


class TestEstimateDegreeDistribution:
    def test_tracks_truth_at_high_epsilon(self, graph):
        protocol = LFGDPRProtocol(epsilon=40.0)
        reports = protocol.collect(graph, rng=0)
        estimated = estimate_degree_distribution(reports, bins=16)
        truth = degree_histogram(graph.degrees().astype(float), graph.num_nodes, 16)
        assert histogram_distance(estimated, truth) < 0.05

    def test_excluded_users_dropped(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        excluded = CollectedReports(
            perturbed_graph=reports.perturbed_graph,
            reported_degrees=reports.reported_degrees,
            adjacency_epsilon=reports.adjacency_epsilon,
            degree_epsilon=reports.degree_epsilon,
            excluded=np.array([0, 1, 2]),
        )
        full = estimate_degree_distribution(reports, bins=8)
        reduced = estimate_degree_distribution(excluded, bins=8)
        assert not np.allclose(full, reduced)

    def test_attack_distorts_distribution(self, graph):
        """Fake users reporting absurd degrees visibly shift the histogram."""
        protocol = LFGDPRProtocol(epsilon=4.0)
        fakes = np.arange(30)
        overrides = {
            int(fake): FakeReport(
                claimed_neighbors=np.array([100]), reported_degree=float(graph.num_nodes - 1)
            )
            for fake in fakes
        }
        clean = protocol.collect(graph, rng=5)
        attacked = protocol.collect(graph, rng=5, overrides=overrides)
        distance = histogram_distance(
            estimate_degree_distribution(clean), estimate_degree_distribution(attacked)
        )
        assert distance > 0.1


class TestHistogramDistance:
    def test_zero_for_identical(self):
        hist = np.array([0.5, 0.5])
        assert histogram_distance(hist, hist) == 0.0

    def test_l1_of_disjoint(self):
        assert histogram_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 2.0

    def test_norm_parameter(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert histogram_distance(a, b, norm=2.0) == pytest.approx(np.sqrt(2))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="bins"):
            histogram_distance(np.zeros(3), np.zeros(4))
