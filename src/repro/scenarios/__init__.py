"""Declarative scenarios: frozen experiment specs compiled to engine tasks.

A *scenario* describes one experiment — a paper figure or any cross-product
workload — as plain values (dataset, metric, swept parameter, grid, series
of attack × protocol × defense).  The subsystem splits cleanly:

* :mod:`repro.scenarios.spec` — the frozen data model;
* :mod:`repro.scenarios.compiler` — lowering specs to
  :class:`~repro.engine.tasks.TrialTask` batches (seed-key compatible with
  the historical figure drivers, so outputs stay bit-identical);
* :mod:`repro.scenarios.run` — load/compile/execute/aggregate;
* :mod:`repro.scenarios.registry` — the string-keyed catalog lookup;
* :mod:`repro.scenarios.catalog` — every registered scenario;
* :mod:`repro.scenarios.golden` — the golden-result regression store.

Quickstart::

    from repro.scenarios import get_scenario, run_scenario
    from repro.experiments.config import ExperimentConfig

    spec = get_scenario("fig6", dataset="enron")
    result = run_scenario(spec, ExperimentConfig(trials=2, scale=0.05, jobs=4))
    print(result.sweep().format())
"""

from repro.scenarios.compiler import compile_panels, compile_scenario
from repro.scenarios.golden import (
    GOLDEN_CONFIG,
    check_golden,
    default_golden_dir,
    golden_path,
    load_golden,
    record_golden,
)
from repro.scenarios.registry import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.run import (
    ScenarioResult,
    community_labels,
    prepare_scenario,
    run_scenario,
    run_scenarios,
)
from repro.scenarios.spec import PanelSpec, ScenarioSpec, SeriesSpec

# Importing the catalog registers every shipped scenario.
from repro.scenarios import catalog  # noqa: F401  (import for side effect)

__all__ = [
    "GOLDEN_CONFIG",
    "PanelSpec",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioSpec",
    "SeriesSpec",
    "check_golden",
    "community_labels",
    "compile_panels",
    "compile_scenario",
    "default_golden_dir",
    "get_scenario",
    "golden_path",
    "load_golden",
    "prepare_scenario",
    "record_golden",
    "register_scenario",
    "run_scenario",
    "run_scenarios",
    "scenario_names",
]
