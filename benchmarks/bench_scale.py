"""Million-user scale bench: streaming collection wall-clock and peak RSS.

Runs the LF-GDPR streaming collection sweep (``collect_blocks``) on sparse
synthetic graphs at ``n = 10^5`` (always) and ``n = 10^6`` (opt in with
``REPRO_SCALE_MILLION=1``), recording wall-clock per size into
``benchmarks/BENCH_timings.json`` plus a peak-RSS table under
``benchmarks/results/``.

The point of the sweep is the memory envelope, not the arithmetic: the dense
path would materialize the full packed adjacency — ``n^2 / 8`` bytes, 125 GB
at a million nodes — while the streaming path holds one row block at a time.
``REPRO_SCALE_RLIMIT_GB`` (CI sets 12) arms a hard ``RLIMIT_AS`` cap *below*
dense materialization for the million-node leg, so a regression that sneaks
the full matrix back in fails with ``MemoryError`` instead of quietly
surviving on a big runner.
"""

from __future__ import annotations

import os
import resource
import time

import numpy as np
import pytest

from conftest import emit, record_timing
from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import _row_popcounts
from repro.protocols.lfgdpr import LFGDPRProtocol
from repro.utils.sparse import pair_count

#: Total privacy budget of the sweep.  Deliberately high: the adjacency share
#: (eps/2 = 8) keeps the expected flip count near ``3.4e-4`` of all pairs, so
#: the perturbed graph stays sparse enough to hold as codes (~1.3 GB at
#: n = 10^6) while still exercising the full RR + streaming pipeline.
SWEEP_EPSILON = 16.0

AVERAGE_DEGREE = 10.0


def _synthetic_graph(n: int, seed: int) -> Graph:
    """Sparse uniform graph at the target average degree, built vectorized."""
    rng = np.random.default_rng(seed)
    target = int(n * AVERAGE_DEGREE / 2)
    codes = rng.integers(0, pair_count(n), size=int(target * 1.05), dtype=np.int64)
    codes = np.unique(codes)[:target]
    return Graph.from_codes(n, codes, assume_sorted_unique=True)


def _peak_rss_gb() -> float:
    """High-water resident set of this process (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / (1024.0 * 1024.0)


def _arm_address_space_cap():
    """Apply the REPRO_SCALE_RLIMIT_GB hard cap; returns the old soft limit."""
    gb = os.environ.get("REPRO_SCALE_RLIMIT_GB")
    if not gb:
        return None
    cap = int(float(gb) * (1 << 30))
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
    return soft, hard


def _streaming_sweep(n: int, seed: int) -> dict:
    """One full streaming collection at size ``n``; returns the measurements."""
    build_start = time.perf_counter()
    graph = _synthetic_graph(n, seed)
    build_seconds = time.perf_counter() - build_start

    protocol = LFGDPRProtocol(epsilon=SWEEP_EPSILON)
    observed = np.zeros(n, dtype=np.int64)
    sweep_start = time.perf_counter()
    blocks = 0
    for block in protocol.collect_blocks(graph, rng=seed):
        observed[block.start : block.stop] = _row_popcounts(block.adjacency_rows)
        blocks += 1
    sweep_seconds = time.perf_counter() - sweep_start

    # Consistency: per-row popcounts of an undirected adjacency sum to 2E.
    assert observed.sum() % 2 == 0
    return {
        "n": n,
        "edges": graph.num_edges,
        "perturbed_edges": int(observed.sum()) // 2,
        "blocks": blocks,
        "build_seconds": build_seconds,
        "sweep_seconds": sweep_seconds,
        "peak_rss_gb": _peak_rss_gb(),
    }


def _report(result: dict) -> None:
    n = result["n"]
    record_timing(f"bench_scale.n{n}", result["sweep_seconds"])
    dense_gb = n * n / 8 / (1 << 30)
    emit(
        "bench_scale",
        "\n".join(
            [
                f"streaming collection sweep, n = {n:,}",
                f"  input edges        {result['edges']:,}",
                f"  perturbed edges    {result['perturbed_edges']:,}",
                f"  row blocks         {result['blocks']}",
                f"  graph build        {result['build_seconds']:.2f} s",
                f"  collection sweep   {result['sweep_seconds']:.2f} s",
                f"  peak RSS           {result['peak_rss_gb']:.2f} GB "
                f"(dense matrix would be {dense_gb:,.1f} GB)",
            ]
        ),
    )


def test_scale_100k():
    result = _streaming_sweep(100_000, seed=0)
    assert result["perturbed_edges"] > result["edges"]
    _report(result)


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_MILLION") != "1",
    reason="million-node leg is CI-gated; set REPRO_SCALE_MILLION=1",
)
def test_scale_1m():
    n = 1_000_000
    limits = _arm_address_space_cap()
    try:
        if limits is not None:
            cap = resource.getrlimit(resource.RLIMIT_AS)[0]
            # The cap must sit below dense materialization or it proves nothing.
            assert cap < n * n // 8
        result = _streaming_sweep(n, seed=0)
    finally:
        if limits is not None:
            resource.setrlimit(resource.RLIMIT_AS, limits)
    assert result["perturbed_edges"] > result["edges"]
    _report(result)
