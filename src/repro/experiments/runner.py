"""Generic sweep runner shared by all figure drivers.

One experiment point = the mean overall gain of one attack over
``config.trials`` independent threat-model draws; a *sweep* varies one
parameter (epsilon, beta or gamma) while the rest stay at Table III
defaults, producing one series per attack — exactly the curves the paper's
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.base import Attack
from repro.core.clustering_attacks import ClusteringMGA, ClusteringRNA, ClusteringRVA
from repro.core.degree_attacks import DegreeMGA, DegreeRNA, DegreeRVA
from repro.core.gain import average_gain
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.graph.adjacency import Graph
from repro.protocols.base import GraphLDPProtocol
from repro.protocols.lfgdpr import LFGDPRProtocol
from repro.utils.rng import child_rng

#: Parameters a sweep may vary.
SWEEPABLE = ("epsilon", "beta", "gamma")

#: Attack constructors in the paper's presentation order.
DEGREE_ATTACKS: Dict[str, Callable[[], Attack]] = {
    "RVA": DegreeRVA,
    "RNA": DegreeRNA,
    "MGA": DegreeMGA,
}
CLUSTERING_ATTACKS: Dict[str, Callable[[], Attack]] = {
    "RVA": ClusteringRVA,
    "RNA": ClusteringRNA,
    "MGA": ClusteringMGA,
}


@dataclass
class SweepResult:
    """Gain curves of several attacks across one swept parameter."""

    figure: str
    dataset: str
    metric: str
    parameter: str
    values: Sequence[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def format(self) -> str:
        """Render the sweep as the table the paper's figure plots."""
        headers = [self.parameter] + list(self.series)
        rows = [
            [value] + [self.series[name][index] for name in self.series]
            for index, value in enumerate(self.values)
        ]
        title = f"{self.figure} — {self.dataset} — {self.metric}"
        return format_table(headers, rows, title=title)

    def gains_of(self, attack_name: str) -> List[float]:
        """Series of one attack; raises KeyError with context if absent."""
        if attack_name not in self.series:
            known = ", ".join(self.series)
            raise KeyError(f"no series {attack_name!r}; have: {known}")
        return self.series[attack_name]


def run_attack_sweep(
    graph: Graph,
    dataset: str,
    metric: str,
    parameter: str,
    values: Sequence[float],
    config: ExperimentConfig,
    attacks: Optional[Mapping[str, Callable[[], Attack]]] = None,
    protocol_factory: Callable[[float], GraphLDPProtocol] = LFGDPRProtocol,
    labels: Optional[np.ndarray] = None,
    figure: str = "",
) -> SweepResult:
    """Run one figure's sweep and return the gain curves.

    Parameters
    ----------
    parameter / values:
        Which of ``epsilon``/``beta``/``gamma`` varies and over which grid.
    attacks:
        Name -> constructor mapping; defaults to the degree attacks for
        ``degree_centrality`` and the clustering attacks otherwise.
    protocol_factory:
        Called with the (possibly swept) epsilon; lets Exp 9 swap in LDPGen.
    labels:
        Community labels, required when ``metric == "modularity"``.
    """
    if parameter not in SWEEPABLE:
        raise ValueError(f"parameter must be one of {SWEEPABLE}, got {parameter!r}")
    if attacks is None:
        attacks = DEGREE_ATTACKS if metric == "degree_centrality" else CLUSTERING_ATTACKS

    result = SweepResult(
        figure=figure,
        dataset=dataset,
        metric=metric,
        parameter=parameter,
        values=list(values),
        series={name: [] for name in attacks},
    )
    for value in values:
        point = {
            "epsilon": config.epsilon,
            "beta": config.beta,
            "gamma": config.gamma,
            parameter: value,
        }
        protocol = protocol_factory(point["epsilon"])
        for name, make_attack in attacks.items():
            gain = average_gain(
                graph,
                protocol,
                make_attack(),
                metric,
                beta=point["beta"],
                gamma=point["gamma"],
                trials=config.trials,
                rng=child_rng(config.seed, f"{figure}-{dataset}-{name}-{value}"),
                labels=labels,
            )
            result.series[name].append(gain)
    return result
