"""Telemetry callbacks: the hook protocol and the live progress printer.

:class:`TelemetryCallbacks` is the attachment point the ROADMAP's adaptive
trial allocation (item 4) needs: the engine drivers fire ``batch_start`` /
``task_done`` / ``batch_done`` and the scenario aggregator ``point_done``
through :meth:`~repro.telemetry.core.Tracer` dispatch, so a progress bar,
a variance monitor or a future early-stop controller attaches with
``tracer.add_callback(...)`` — zero engine changes.

Callbacks run in the driving process (for parallel batches, as chunk
futures complete), never inside workers, so they may hold open files and
terminal state.  Exceptions propagate: a deliberate early-stop hook raising
is how a future controller will end a batch.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, TextIO


class TelemetryCallbacks:
    """Base/no-op implementation of every telemetry hook.

    Subclass and override what you need; unimplemented hooks stay no-ops so
    the dispatch sites never need feature checks.
    """

    def on_batch_start(self, total: int) -> None:
        """A task batch of ``total`` tasks is about to execute."""

    def on_task_done(self, task, gain: float) -> None:
        """One task finished (or was answered from cache) with ``gain``."""

    def on_point_done(self, figure: str, series: str, value: float,
                      mean: float, stderr: float, trials: int) -> None:
        """One aggregated sweep point is final: the per-point variance feed."""

    def on_batch_done(self, stats: dict) -> None:
        """The batch finished; ``stats`` carries task/cache-hit counts."""


class ProgressPrinter(TelemetryCallbacks):
    """Live per-panel progress on one rewritten stderr line.

    Tracks completed tasks per panel (the ``figure`` display coordinate each
    task carries) and rewrites a single ``\\r`` line as results land —
    cache hits count immediately, computed tasks as their chunks complete.
    Only writes to a TTY-ish stream it was given; the batch-done summary
    always prints, so ``--progress`` in CI logs stays one line per batch.
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self._per_panel: Dict[str, int] = {}
        self._line_open = False

    def on_batch_start(self, total: int) -> None:
        self.total = total
        self.done = 0
        self._per_panel.clear()

    def on_task_done(self, task, gain: float) -> None:
        self.done += 1
        panel = getattr(task, "figure", "") or "batch"
        self._per_panel[panel] = self._per_panel.get(panel, 0) + 1
        panels = " ".join(
            f"{name}:{count}" for name, count in sorted(self._per_panel.items())
        )
        self.stream.write(f"\r[{self.done}/{self.total}] {panels}"[:200])
        self.stream.flush()
        self._line_open = True

    def on_batch_done(self, stats: dict) -> None:
        if self._line_open:
            self.stream.write("\n")
            self._line_open = False
        hits = stats.get("cache_hits", 0)
        self.stream.write(
            f"batch done: {stats.get('tasks', self.done)} tasks "
            f"({hits} from cache)\n"
        )
        self.stream.flush()
