"""Extension — untargeted manipulation attacks (Cheu et al. family).

Not a paper figure: the related-work section contrasts the paper's targeted
attacks with untargeted distribution-level manipulation; this bench measures
that family's L1/L2 distortion of the full degree-centrality estimate vector
across privacy budgets.
"""

import numpy as np
from conftest import bench_config, bench_trials, emit

from repro.core.threat_model import ThreatModel
from repro.core.untargeted_attacks import (
    UntargetedConcentratedAttack,
    UntargetedUniformAttack,
    UntargetedWithdrawalAttack,
    evaluate_untargeted_attack,
)
from repro.experiments.reporting import format_table
from repro.graph.datasets import load_dataset
from repro.protocols.lfgdpr import LFGDPRProtocol

EPSILONS = (1.0, 2.0, 4.0, 8.0)
ATTACKS = [
    UntargetedUniformAttack(),
    UntargetedConcentratedAttack(),
    UntargetedWithdrawalAttack(),
]


def test_untargeted_distortion(benchmark):
    config = bench_config("facebook")
    graph = load_dataset("facebook", scale=config.scale, rng=config.seed)
    threat = ThreatModel.sample(graph, 0.05, 0.05, rng=0)
    trials = max(2, bench_trials())

    def run():
        rows = []
        for epsilon in EPSILONS:
            protocol = LFGDPRProtocol(epsilon=epsilon)
            for attack in ATTACKS:
                for norm in (1.0, 2.0):
                    distances = [
                        evaluate_untargeted_attack(
                            graph, protocol, attack, threat, norm=norm, rng=seed
                        ).distance
                        for seed in range(trials)
                    ]
                    rows.append([epsilon, attack.name, int(norm), float(np.mean(distances))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_untargeted",
        format_table(
            ["epsilon", "attack", "Lp", "distortion"],
            rows,
            title="Extension — untargeted attacks, degree-centrality distortion",
        ),
    )
    # Concentration maximises L2 distortion at every epsilon.
    for epsilon in EPSILONS:
        l2 = {
            row[1]: row[3] for row in rows if row[0] == epsilon and row[2] == 2
        }
        assert l2["U-Concentrated"] >= l2["U-Uniform"]
