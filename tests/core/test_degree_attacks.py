"""Tests for the degree-centrality attacks."""

import numpy as np
import pytest

from repro.core.degree_attacks import DegreeMGA, DegreeRNA, DegreeRVA
from repro.core.gain import evaluate_attack
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(400, 5, 0.5, rng=0)


@pytest.fixture(scope="module")
def threat(graph):
    return ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)


@pytest.fixture(scope="module")
def knowledge(graph):
    return AttackerKnowledge.from_protocol(LFGDPRProtocol(epsilon=4.0), graph)


class TestCraftingContracts:
    @pytest.mark.parametrize("attack", [DegreeRVA(), DegreeRNA(), DegreeMGA()])
    def test_one_report_per_fake_user(self, attack, graph, threat, knowledge):
        overrides = attack.craft(graph, threat, knowledge, rng=0)
        assert sorted(overrides) == threat.fake_users.tolist()

    @pytest.mark.parametrize("attack", [DegreeRVA(), DegreeRNA(), DegreeMGA()])
    def test_no_self_claims(self, attack, graph, threat, knowledge):
        overrides = attack.craft(graph, threat, knowledge, rng=1)
        for fake, report in overrides.items():
            assert fake not in report.claimed_neighbors

    @pytest.mark.parametrize("attack", [DegreeRVA(), DegreeRNA(), DegreeMGA()])
    def test_deterministic(self, attack, graph, threat, knowledge):
        a = attack.craft(graph, threat, knowledge, rng=5)
        b = attack.craft(graph, threat, knowledge, rng=5)
        for fake in threat.fake_users.tolist():
            assert np.array_equal(a[fake].claimed_neighbors, b[fake].claimed_neighbors)
            assert a[fake].reported_degree == b[fake].reported_degree


class TestRVA:
    def test_keeps_organic_edges(self, graph, threat, knowledge):
        overrides = DegreeRVA().craft(graph, threat, knowledge, rng=0)
        for fake, report in overrides.items():
            organic = graph.neighbors(fake)
            assert np.intersect1d(report.claimed_neighbors, organic).size == organic.size

    def test_respects_budget(self, graph, threat, knowledge):
        overrides = DegreeRVA().craft(graph, threat, knowledge, rng=0)
        for fake, report in overrides.items():
            organic = graph.neighbors(fake).size
            assert report.claimed_neighbors.size <= max(knowledge.connection_budget, organic)

    def test_degree_in_domain(self, graph, threat, knowledge):
        overrides = DegreeRVA().craft(graph, threat, knowledge, rng=0)
        for report in overrides.values():
            assert 0 <= report.reported_degree < knowledge.degree_domain


class TestRNA:
    def test_augment_mode(self, graph, threat, knowledge):
        overrides = DegreeRNA().craft(graph, threat, knowledge, rng=0)
        assert all(report.augment for report in overrides.values())

    def test_at_most_one_extra_edge_to_a_target(self, graph, threat, knowledge):
        overrides = DegreeRNA().craft(graph, threat, knowledge, rng=0)
        target_set = set(threat.targets.tolist())
        for report in overrides.values():
            assert report.claimed_neighbors.size <= 1
            for claimed in report.claimed_neighbors.tolist():
                assert claimed in target_set

    def test_survival_rate_matches_rr(self, graph, threat, knowledge):
        from repro.ldp.mechanisms import rr_keep_probability

        rng = np.random.default_rng(0)
        keep = rr_keep_probability(knowledge.adjacency_epsilon)
        survived = []
        for _ in range(40):
            overrides = DegreeRNA().craft(graph, threat, knowledge, rng=rng)
            survived.extend(
                report.claimed_neighbors.size for report in overrides.values()
            )
        assert np.mean(survived) == pytest.approx(keep, abs=0.08)

    def test_degree_delta_is_one(self, graph, threat, knowledge):
        overrides = DegreeRNA().craft(graph, threat, knowledge, rng=0)
        for report in overrides.values():
            assert report.degree_delta in (0.0, 1.0)
        assert any(report.degree_delta == 1.0 for report in overrides.values())


class TestMGA:
    def test_claims_min_r_budget_targets(self, graph, threat, knowledge):
        overrides = DegreeMGA(keep_organic_edges=False).craft(graph, threat, knowledge, rng=0)
        expected = min(threat.num_targets, knowledge.connection_budget)
        for report in overrides.values():
            claimed_targets = np.intersect1d(report.claimed_neighbors, threat.targets)
            assert claimed_targets.size == expected

    def test_keeps_organic_by_default(self, graph, threat, knowledge):
        overrides = DegreeMGA().craft(graph, threat, knowledge, rng=0)
        some_fake = threat.fake_users[0]
        organic = graph.neighbors(some_fake)
        claimed = overrides[int(some_fake)].claimed_neighbors
        assert np.intersect1d(claimed, organic).size == organic.size

    def test_unbounded_variant_claims_all_targets(self, graph, threat, knowledge):
        overrides = DegreeMGA(respect_budget=False).craft(graph, threat, knowledge, rng=0)
        for report in overrides.values():
            claimed_targets = np.intersect1d(report.claimed_neighbors, threat.targets)
            assert claimed_targets.size == threat.num_targets

    def test_reported_degree_consistent(self, graph, threat, knowledge):
        overrides = DegreeMGA().craft(graph, threat, knowledge, rng=0)
        for report in overrides.values():
            assert report.reported_degree == report.claimed_neighbors.size


class TestAttackOrdering:
    def test_mga_beats_rva_beats_rna(self, graph, threat):
        """The paper's headline ordering on degree centrality (Exp 1-3)."""
        protocol = LFGDPRProtocol(epsilon=4.0)
        gains = {}
        for attack in (DegreeMGA(), DegreeRVA(), DegreeRNA()):
            totals = [
                evaluate_attack(
                    graph, protocol, attack, threat, metric="degree_centrality", rng=seed
                ).total_gain
                for seed in range(3)
            ]
            gains[attack.name] = np.mean(totals)
        assert gains["MGA"] > gains["RVA"] > gains["RNA"]

    def test_gains_positive(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        outcome = evaluate_attack(
            graph, protocol, DegreeMGA(), threat, metric="degree_centrality", rng=0
        )
        assert outcome.total_gain > 0
        assert np.all(outcome.per_target_gain >= 0)
