"""Tests for repro.ldp.mechanisms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldp.mechanisms import (
    calibrate_bit_counts,
    degree_noise_scale,
    laplace_noise,
    perturb_bits,
    perturb_degree,
    rr_keep_probability,
)


class TestKeepProbability:
    def test_epsilon_zero_is_half(self):
        assert rr_keep_probability(0.0) == pytest.approx(0.5)

    def test_known_value(self):
        assert rr_keep_probability(math.log(3)) == pytest.approx(0.75)

    def test_monotone_in_epsilon(self):
        values = [rr_keep_probability(eps) for eps in (0.5, 1, 2, 4, 8)]
        assert values == sorted(values)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rr_keep_probability(-0.1)

    @given(eps=st.floats(min_value=0.0, max_value=15.0, allow_nan=False))
    def test_privacy_ratio_bounded(self, eps):
        """p/(1-p) == e^eps: the LDP guarantee of symmetric RR.

        The tolerance is loose at the top of the range because 1-p underflows
        toward the float64 resolution limit.
        """
        p = rr_keep_probability(eps)
        assert 0.5 <= p < 1.0
        assert p / (1.0 - p) == pytest.approx(math.exp(eps), rel=1e-6)


class TestPerturbBits:
    def test_output_is_binary(self):
        bits = np.array([0, 1, 1, 0, 1], dtype=np.uint8)
        out = perturb_bits(bits, 2.0, rng=0)
        assert set(np.unique(out)).issubset({0, 1})

    def test_high_epsilon_preserves(self):
        bits = np.array([0, 1] * 500, dtype=np.uint8)
        out = perturb_bits(bits, 50.0, rng=0)
        assert np.array_equal(out, bits)

    def test_flip_rate_matches_theory(self):
        rng = np.random.default_rng(0)
        bits = np.zeros(200_000, dtype=np.uint8)
        out = perturb_bits(bits, 1.0, rng=rng)
        expected_flip = 1.0 - rr_keep_probability(1.0)
        assert out.mean() == pytest.approx(expected_flip, rel=0.05)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="only 0 and 1"):
            perturb_bits(np.array([0, 2]), 1.0, rng=0)

    def test_deterministic_with_seed(self):
        bits = np.array([0, 1] * 100, dtype=np.uint8)
        assert np.array_equal(perturb_bits(bits, 1.0, rng=7), perturb_bits(bits, 1.0, rng=7))

    def test_shape_preserved(self):
        bits = np.zeros((4, 5), dtype=np.uint8)
        assert perturb_bits(bits, 1.0, rng=0).shape == (4, 5)


class TestLaplace:
    def test_scale(self):
        rng = np.random.default_rng(0)
        draws = laplace_noise(2.0, size=100_000, rng=rng)
        # Laplace(0, b) has std = b * sqrt(2).
        assert draws.std() == pytest.approx(2.0 * math.sqrt(2.0), rel=0.05)
        assert draws.mean() == pytest.approx(0.0, abs=0.05)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            laplace_noise(0.0)

    def test_degree_noise_scale(self):
        assert degree_noise_scale(2.0) == 0.5
        assert degree_noise_scale(2.0, sensitivity=2.0) == 1.0


class TestPerturbDegree:
    def test_unbiased(self):
        rng = np.random.default_rng(0)
        degrees = np.full(100_000, 25.0)
        noisy = perturb_degree(degrees, 2.0, rng=rng)
        assert noisy.mean() == pytest.approx(25.0, abs=0.1)

    def test_scalar_input(self):
        noisy = perturb_degree(10, 1.0, rng=0)
        assert noisy.shape == (1,)

    def test_rejects_zero_epsilon(self):
        with pytest.raises(ValueError):
            perturb_degree(10, 0.0, rng=0)

    def test_deterministic(self):
        a = perturb_degree(np.arange(10.0), 1.0, rng=3)
        b = perturb_degree(np.arange(10.0), 1.0, rng=3)
        assert np.array_equal(a, b)


class TestCalibration:
    def test_inverts_expectation_exactly(self):
        # With x = k p + (T - k)(1 - p) plugged in, calibration returns k.
        epsilon = 1.5
        p = rr_keep_probability(epsilon)
        true_count, total = 120.0, 1000.0
        observed = true_count * p + (total - true_count) * (1 - p)
        assert calibrate_bit_counts(observed, total, epsilon) == pytest.approx(true_count)

    def test_vectorised(self):
        epsilon = 2.0
        p = rr_keep_probability(epsilon)
        true_counts = np.array([0.0, 10.0, 500.0])
        totals = np.array([100.0, 100.0, 1000.0])
        observed = true_counts * p + (totals - true_counts) * (1 - p)
        calibrated = calibrate_bit_counts(observed, totals, epsilon)
        assert np.allclose(calibrated, true_counts)

    def test_epsilon_zero_rejected(self):
        with pytest.raises(ValueError, match="no signal"):
            calibrate_bit_counts(50.0, 100.0, 0.0)

    @given(
        eps=st.floats(min_value=0.1, max_value=10.0),
        true_count=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, eps, true_count):
        total = 1000.0
        p = rr_keep_probability(eps)
        observed = true_count * p + (total - true_count) * (1 - p)
        assert calibrate_bit_counts(observed, total, eps) == pytest.approx(
            true_count, abs=1e-6
        )

    def test_monte_carlo_unbiased(self):
        epsilon = 1.0
        rng = np.random.default_rng(0)
        bits = np.zeros(10_000, dtype=np.uint8)
        bits[:3_000] = 1
        estimates = [
            calibrate_bit_counts(perturb_bits(bits, epsilon, rng=rng).sum(), bits.size, epsilon)
            for _ in range(50)
        ]
        assert np.mean(estimates) == pytest.approx(3_000, rel=0.03)
