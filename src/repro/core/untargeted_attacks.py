"""Untargeted manipulation attacks (extension; Cheu–Smith–Ullman style).

The paper's related-work section contrasts its *targeted* attacks with the
untargeted manipulation attacks of Cheu et al. (EuroS&P 2021), whose goal is
to distort the *overall* estimate vector — maximising an Lp distance between
the estimated and true distributions rather than shifting chosen targets.
This module implements that family for the graph setting, rounding out the
attack taxonomy:

* :class:`UntargetedUniformAttack` — each fake user spreads its budget over
  uniformly random nodes; the distortion mass is spread thin.
* :class:`UntargetedConcentratedAttack` — every fake user claims the *same*
  random set of ``budget`` nodes, concentrating the distortion (maximising
  L2 / worst-case displacement for a fixed claim budget).
* :class:`UntargetedWithdrawalAttack` — fake users report empty bit vectors
  and zero degrees, deleting their organic contribution (the "silent"
  manipulation baseline).

Gain is measured as the Lp distance between the full estimated metric
vectors of the paired runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.base import Attack, ensure_attack_rng, random_new_neighbors
from repro.core.gain import paired_collection_enabled
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.graph.adjacency import Graph
from repro.protocols.base import FakeReport, GraphLDPProtocol
from repro.utils.rng import RngLike, child_rng


class UntargetedUniformAttack(Attack):
    """Spread the claim budget uniformly over the whole node set."""

    name = "U-Uniform"

    def craft(
        self,
        graph: Graph,
        threat: ThreatModel,
        knowledge: AttackerKnowledge,
        rng: RngLike = None,
    ) -> Dict[int, FakeReport]:
        generator = ensure_attack_rng(rng)
        budget = knowledge.connection_budget
        overrides: Dict[int, FakeReport] = {}
        for fake in threat.fake_users.tolist():
            claimed = random_new_neighbors(
                fake, np.empty(0, dtype=np.int64), budget, threat.num_nodes, generator
            )
            overrides[fake] = FakeReport(
                claimed_neighbors=claimed, reported_degree=float(claimed.size)
            )
        return overrides


class UntargetedConcentratedAttack(Attack):
    """All fake users claim one shared random victim set of ``budget`` nodes.

    For a fixed per-user claim budget this concentrates the poisoned bits on
    the fewest rows, maximising the L2 displacement of the estimate vector.
    """

    name = "U-Concentrated"

    def craft(
        self,
        graph: Graph,
        threat: ThreatModel,
        knowledge: AttackerKnowledge,
        rng: RngLike = None,
    ) -> Dict[int, FakeReport]:
        generator = ensure_attack_rng(rng)
        budget = knowledge.connection_budget
        candidates = np.setdiff1d(np.arange(threat.num_nodes), threat.fake_users)
        victim_count = min(budget, candidates.size)
        victims = np.sort(generator.choice(candidates, size=victim_count, replace=False))
        return {
            fake: FakeReport(
                claimed_neighbors=victims, reported_degree=float(victims.size)
            )
            for fake in threat.fake_users.tolist()
        }


class UntargetedWithdrawalAttack(Attack):
    """Report nothing: erase the fake users' organic contribution."""

    name = "U-Withdraw"

    def craft(
        self,
        graph: Graph,
        threat: ThreatModel,
        knowledge: AttackerKnowledge,
        rng: RngLike = None,
    ) -> Dict[int, FakeReport]:
        return {
            fake: FakeReport(
                claimed_neighbors=np.empty(0, dtype=np.int64), reported_degree=0.0
            )
            for fake in threat.fake_users.tolist()
        }


@dataclass
class UntargetedOutcome:
    """Distortion of the whole estimate vector under an untargeted attack."""

    attack_name: str
    metric: str
    norm: float
    distance: float
    before: np.ndarray
    after: np.ndarray


def evaluate_untargeted_attack(
    graph: Graph,
    protocol: GraphLDPProtocol,
    attack: Attack,
    threat: ThreatModel,
    metric: str = "degree_centrality",
    norm: float = 1.0,
    rng: RngLike = 0,
) -> UntargetedOutcome:
    """Paired evaluation measuring ``||f~_after - f~_before||_p`` over all nodes.

    The ``targets`` of the threat model are ignored (the attack is
    untargeted); the distance runs over the entire estimate vector.
    """
    if metric not in ("degree_centrality", "clustering_coefficient"):
        raise ValueError(
            "untargeted evaluation supports degree_centrality or "
            f"clustering_coefficient, got {metric!r}"
        )
    knowledge = AttackerKnowledge.from_protocol(protocol, graph)
    overrides = attack.craft(graph, threat, knowledge, rng=child_rng(rng, "attack-craft"))
    seed = int(child_rng(rng, "protocol-run").integers(2**63 - 1))
    if paired_collection_enabled():
        run = protocol.collect_paired(graph, seed)
        before_reports = run.before
        after_reports = run.after(overrides)
    else:
        before_reports = protocol.collect(graph, seed)
        after_reports = protocol.collect(graph, seed, overrides=overrides)
    if metric == "degree_centrality":
        before = protocol.estimate_degree_centrality(before_reports)
        after = protocol.estimate_degree_centrality(after_reports)
    else:
        before = protocol.estimate_clustering_coefficient(before_reports)
        after = protocol.estimate_clustering_coefficient(after_reports)
    distance = float(np.linalg.norm(after - before, ord=norm))
    return UntargetedOutcome(
        attack_name=attack.name,
        metric=metric,
        norm=norm,
        distance=distance,
        before=before,
        after=after,
    )
