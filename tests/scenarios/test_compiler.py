"""Compiler tests: seed-key compatibility and batch structure.

The scenario compiler must emit the *historical* seed-derivation keys of the
pre-scenario figure drivers — that equivalence is what keeps every recorded
figure output bit-identical.  These tests pin both key shapes against
independent constructions: the sweep style against the engine-level
:func:`~repro.experiments.runner.build_sweep_tasks`, the defense style
against literally-spelled key strings.
"""

import pytest

from repro.engine.tasks import TrialTask, derive_trial_seed, graph_fingerprint
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_sweep_tasks
from repro.graph.generators import powerlaw_cluster_graph
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import (
    SWEEP_DEFENSE_ARG,
    SWEEP_FLAT,
    PanelSpec,
    ScenarioSpec,
    SeriesSpec,
)

CONFIG = ExperimentConfig(trials=2, seed=7, cache=False)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(120, 4, 0.5, rng=0)


class TestSweepStyle:
    def test_matches_legacy_sweep_builder(self, graph):
        """fig6-shaped scenarios compile to build_sweep_tasks' exact batch."""
        spec = get_scenario("fig6")
        compiled = compile_scenario(spec, graph, CONFIG)
        legacy = build_sweep_tasks(
            graph, spec.dataset, spec.metric, "epsilon", spec.values, CONFIG,
            {"RVA": "degree/rva", "RNA": "degree/rna", "MGA": "degree/mga"},
            "lfgdpr", "", figure="Fig6",
        )
        assert set(compiled) == set(legacy)
        assert len(compiled) == len(legacy) == 8 * 3 * CONFIG.trials

    def test_multi_panel_matches_two_legacy_batches(self, graph):
        """fig14 compiles to the union of the two historical panel batches."""
        spec = get_scenario("fig14")
        compiled = compile_scenario(spec, graph, CONFIG)
        legacy = []
        for panel, protocol in (("LF-GDPR", "lfgdpr"), ("LDPGen", "ldpgen")):
            legacy += build_sweep_tasks(
                graph, spec.dataset, spec.metric, "epsilon", spec.values, CONFIG,
                {"RVA": "clustering/rva", "RNA": "clustering/rna", "MGA": "clustering/mga"},
                protocol, "", figure=f"Fig14-{panel}",
            )
        assert set(compiled) == set(legacy)

    def test_per_series_protocols_in_one_panel(self, graph):
        """Cross-product series may mix protocols inside one panel."""
        spec = get_scenario("xprod/protocol-duel-mga")
        compiled = compile_scenario(spec, graph, CONFIG)
        protocols = {task.series: task.protocol for task in compiled}
        assert protocols == {"LF-GDPR/MGA": "lfgdpr", "LDPGen/MGA": "ldpgen"}


class TestDefenseStyle:
    def test_threshold_sweep_matches_historical_keys(self, graph):
        """Fig. 12(a): flat references measured once, Detect1 per threshold."""
        spec = get_scenario("fig12a")
        compiled = compile_scenario(spec, graph, CONFIG)
        graph_key = graph_fingerprint(graph)

        def expected(series, defense, defense_args, seed_key, value):
            return [
                TrialTask(
                    graph_key=graph_key, metric="degree_centrality",
                    attack="degree/mga", protocol="lfgdpr",
                    epsilon=CONFIG.epsilon, beta=CONFIG.beta, gamma=CONFIG.gamma,
                    seed=derive_trial_seed(CONFIG.seed, f"Fig12a|{seed_key}|trial={trial}"),
                    defense=defense, defense_args=defense_args,
                    figure="Fig12a", series=series, parameter="threshold",
                    value=value, trial=trial,
                )
                for trial in range(CONFIG.trials)
            ]

        legacy = expected("NoDefense", "", (), "NoDefense", 0.0)
        legacy += expected("Naive1", "naive1", (), "Naive1", 0.0)
        for threshold in spec.values:
            legacy += expected(
                "Detect1", "detect1", (("threshold", int(threshold)),),
                f"Detect1|threshold={threshold}", float(threshold),
            )
        assert set(compiled) == set(legacy)
        # Flat series are measured once, not once per grid point.
        assert len(compiled) == (2 + len(spec.values)) * CONFIG.trials

    def test_beta_sweep_matches_historical_keys(self, graph):
        """Fig. 12(b): every series re-measured at every beta."""
        spec = get_scenario("fig12b")
        compiled = compile_scenario(spec, graph, CONFIG)
        graph_key = graph_fingerprint(graph)
        legacy = []
        for series, defense in (("NoDefense", ""), ("Detect2", "detect2"), ("Naive2", "naive2")):
            for beta in spec.values:
                legacy += [
                    TrialTask(
                        graph_key=graph_key, metric="degree_centrality",
                        attack="degree/rva", protocol="lfgdpr",
                        epsilon=CONFIG.epsilon, beta=beta, gamma=CONFIG.gamma,
                        seed=derive_trial_seed(
                            CONFIG.seed, f"Fig12b|{series}|beta={beta}|trial={trial}"
                        ),
                        defense=defense, defense_args=(),
                        figure="Fig12b", series=series, parameter="beta",
                        value=float(beta), trial=trial,
                    )
                    for trial in range(CONFIG.trials)
                ]
        assert set(compiled) == set(legacy)

    def test_integer_thresholds_stay_integral(self, graph):
        spec = get_scenario("fig12a")
        for task in compile_scenario(spec, graph, CONFIG):
            for name, value in task.defense_args:
                assert name == "threshold"
                assert isinstance(value, int)


class TestCompileErrors:
    def test_stats_scenarios_do_not_compile(self, graph):
        with pytest.raises(ValueError, match="compiles to no tasks"):
            compile_scenario(get_scenario("table2"), graph, CONFIG)

    def test_modularity_needs_labels(self, graph):
        with pytest.raises(ValueError, match="community labels"):
            compile_scenario(get_scenario("fig15"), graph, CONFIG)


class TestBatchShape:
    def test_every_task_carries_display_coordinates(self, graph):
        spec = ScenarioSpec(
            name="shape", description="d", values=(2.0, 4.0),
            panels=(
                PanelSpec(
                    figure="Shape",
                    series=(
                        SeriesSpec(name="MGA", attack="degree/mga"),
                        SeriesSpec(name="Flat", attack="degree/rva", sweep=SWEEP_FLAT),
                        SeriesSpec(
                            name="D1", attack="degree/mga", defense="detect1",
                            sweep=SWEEP_DEFENSE_ARG, sweep_arg="threshold",
                        ),
                    ),
                ),
            ),
            seed_style="defense", parameter="epsilon",
        )
        tasks = compile_scenario(spec, graph, CONFIG)
        # MGA sweeps the point: epsilon follows the grid.
        assert {t.epsilon for t in tasks if t.series == "MGA"} == {2.0, 4.0}
        # Flat stays at the config default and appears once.
        flat = [t for t in tasks if t.series == "Flat"]
        assert len(flat) == CONFIG.trials
        assert {t.epsilon for t in flat} == {CONFIG.epsilon}
        # Defense-arg sweep: epsilon stays default, threshold follows the grid.
        d1 = [t for t in tasks if t.series == "D1"]
        assert {t.epsilon for t in d1} == {CONFIG.epsilon}
        assert {dict(t.defense_args)["threshold"] for t in d1} == {2.0, 4.0}
        # Seeds are unique across the whole batch.
        assert len({t.seed for t in tasks}) == len(tasks)


class TestPerPanelGraphs:
    """compile_panels: heterogeneous batches keyed by per-panel graphs."""

    def test_panels_compile_against_their_own_graphs(self, graph):
        from repro.scenarios.compiler import compile_panels

        other = powerlaw_cluster_graph(90, 4, 0.5, rng=1)
        spec = ScenarioSpec(
            name="t/two-graphs", description="", metric="degree_centrality",
            parameter="epsilon", values=(2.0,),
            panels=(
                PanelSpec(figure="PA", name="a", series=(SeriesSpec(name="MGA", attack="degree/mga"),)),
                PanelSpec(figure="PB", name="b", series=(SeriesSpec(name="MGA", attack="degree/mga"),)),
            ),
        )
        tasks = compile_panels(
            spec, CONFIG,
            graphs={"a": graph, "b": other},
            labels={"a": None, "b": None},
        )
        keys = {task.figure: task.graph_key for task in tasks}
        assert keys == {
            "PA": graph_fingerprint(graph),
            "PB": graph_fingerprint(other),
        }

    def test_same_graph_everywhere_matches_compile_scenario(self, graph):
        from repro.scenarios.compiler import compile_panels

        spec = get_scenario("fig14")
        via_scenario = compile_scenario(spec, graph, CONFIG)
        via_panels = compile_panels(
            spec, CONFIG,
            graphs={panel.key: graph for panel in spec.panels},
            labels={panel.key: None for panel in spec.panels},
        )
        assert via_panels == via_scenario

    def test_single_graph_compile_rejects_pinned_panels(self, graph):
        spec = get_scenario("xprod/cross-dataset-mga")
        with pytest.raises(ValueError, match="per-panel"):
            compile_scenario(spec, graph, CONFIG)
