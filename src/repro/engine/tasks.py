"""The declarative trial task spec and its stable content hash.

A :class:`TrialTask` describes one attack-gain measurement — one threat-model
draw of one attack against one protocol configuration on one graph — without
holding any live objects.  Attacks, protocols and defenses are referenced by
registry name; the graph by a content fingerprint.  This makes tasks:

* **hashable** — the identity fields feed a SHA-256 content hash that keys
  the on-disk result cache;
* **portable** — tasks pickle cheaply to process-pool workers;
* **deterministic** — each task carries its own derived integer seed, so its
  result is a pure function of the spec and the graph, independent of which
  executor runs it, in which order, or on how many workers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Tuple, Union

import numpy as np

from repro.graph.adjacency import Graph
from repro.utils.rng import child_rng

#: Fields that define a task's identity (everything the result depends on).
#: The remaining fields are display coordinates used to place the result back
#: into a sweep table; they never influence the computation or the cache key.
IDENTITY_FIELDS = (
    "graph_key",
    "metric",
    "attack",
    "protocol",
    "epsilon",
    "beta",
    "gamma",
    "seed",
    "defense",
    "defense_args",
    "labels_key",
)


def derive_trial_seed(root_seed: int, key: str) -> int:
    """Deterministic per-task integer seed from a root seed and a string key.

    The key encodes the task's position in the experiment (figure, dataset,
    series, swept value, trial index), so every task gets an independent
    stream regardless of how many tasks run, in what order, or on how many
    processes — the property that makes serial and parallel runs
    bit-identical.
    """
    return int(child_rng(int(root_seed), key).integers(2**63 - 1))


def graph_fingerprint(graph: Graph) -> str:
    """Stable content fingerprint of a graph (node count + edge set).

    Used as the task's ``graph_key`` so cached results are only reused for
    the exact same graph, whichever dataset/scale/seed produced it.
    """
    rows, cols = graph.edge_arrays()
    digest = hashlib.sha256()
    digest.update(np.int64(graph.num_nodes).tobytes())
    digest.update(np.ascontiguousarray(rows, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(cols, dtype=np.int64).tobytes())
    return digest.hexdigest()[:16]


def labels_fingerprint(labels) -> str:
    """Stable fingerprint of a community labelling (empty string for none).

    Part of the task identity: two modularity evaluations on the same graph
    but under different labelings must never share a cache entry.
    """
    if labels is None:
        return ""
    array = np.ascontiguousarray(labels, dtype=np.int64)
    digest = hashlib.sha256()
    digest.update(np.int64(array.size).tobytes())
    digest.update(array.tobytes())
    return digest.hexdigest()[:16]


def identity_payload(task: "TrialTask") -> dict:
    """A task's identity fields as stored/compared on disk (tuples -> lists).

    The single definition both cache generations validate entries against —
    the legacy per-task cache and the sharded store must agree byte for
    byte, or legacy read-through would silently degrade to misses.
    """
    payload = dict(task.identity())
    payload["defense_args"] = [list(pair) for pair in task.defense_args]
    return payload


@dataclass(frozen=True)
class TrialTask:
    """One attack-gain measurement, fully described by values.

    Attributes
    ----------
    graph_key:
        :func:`graph_fingerprint` of the graph the task runs on (the graph
        itself travels out-of-band through the executor).
    metric:
        One of :data:`repro.core.gain.METRICS`.
    attack / protocol / defense:
        Registry names (:data:`~repro.engine.registry.ATTACKS`, ...).
        ``defense`` is empty for undefended evaluations.
    defense_args:
        Sorted ``(name, value)`` pairs passed to the defense factory
        (e.g. ``(("threshold", 100),)`` for Detect1).
    epsilon / beta / gamma:
        Protocol budget and threat-model fractions for this point.
    seed:
        Derived integer seed (:func:`derive_trial_seed`); encodes the trial
        index, so two trials of the same point differ only here.
    labels_key:
        :func:`labels_fingerprint` of the community labelling a modularity
        evaluation uses (empty when the metric needs no labels).
    figure / series / parameter / value / trial:
        Display coordinates — where the result lands in the sweep table.
        Excluded from the content hash.
    """

    graph_key: str
    metric: str
    attack: str
    protocol: str
    epsilon: float
    beta: float
    gamma: float
    seed: int
    defense: str = ""
    defense_args: Tuple[Tuple[str, Union[int, float, str]], ...] = ()
    labels_key: str = ""
    figure: str = ""
    series: str = ""
    parameter: str = ""
    value: float = 0.0
    trial: int = 0

    def identity(self) -> dict:
        """The identity fields as a plain dict (what the hash covers)."""
        return {
            name: getattr(self, name)
            for name in IDENTITY_FIELDS
        }

    def content_hash(self) -> str:
        """Stable SHA-256 hash of the identity fields (the cache key)."""
        canonical = json.dumps(
            identity_payload(self), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __post_init__(self):
        known = {spec.name for spec in fields(self)}
        missing = [name for name in IDENTITY_FIELDS if name not in known]
        if missing:  # pragma: no cover - guards future refactors
            raise AssertionError(f"IDENTITY_FIELDS out of sync: {missing}")
