"""run_scenario aggregation tests (tiny scales)."""

import pytest

from repro.engine.cache import NullCache
from repro.experiments.config import ExperimentConfig
from repro.scenarios.registry import get_scenario
from repro.scenarios.run import run_scenario

TINY = ExperimentConfig(trials=1, scale=0.02, seed=0, cache=False)


def _run(name, config=TINY):
    return run_scenario(get_scenario(name), config, cache=NullCache())


class TestSweepAggregation:
    def test_single_panel_unwraps(self):
        result = _run("fig6")
        sweep = result.sweep()
        assert set(sweep.series) == {"RVA", "RNA", "MGA"}
        assert len(sweep.series["MGA"]) == len(sweep.values) == 8

    def test_flat_series_replicated_across_grid(self):
        result = _run("fig12a")
        sweep = result.sweep()
        flat = sweep.series["NoDefense"]
        assert len(flat) == len(sweep.values)
        assert len(set(flat)) == 1, "flat reference must repeat one measurement"
        assert len(set(sweep.series["Detect1"])) > 1 or len(sweep.values) == 1

    def test_multi_panel_keys_and_unwrap_refusal(self):
        result = _run("fig14")
        assert sorted(result.panels) == ["LDPGen", "LF-GDPR"]
        with pytest.raises(ValueError, match="pick one explicitly"):
            result.sweep()

    def test_format_contains_every_panel(self):
        text = _run("fig14").format()
        assert "Fig14-LF-GDPR" in text and "Fig14-LDPGen" in text

    def test_series_order_matches_spec(self):
        spec = get_scenario("fig12a")
        sweep = _run("fig12a").sweep()
        assert list(sweep.series) == [s.name for s in spec.panels[0].series]


class TestStats:
    def test_table2_rows(self):
        result = _run("table2")
        assert result.table is not None
        assert [row[0] for row in result.table] == ["facebook", "enron", "astroph", "gplus"]
        assert "facebook" in result.format()

    def test_dataset_override_narrows_stats(self):
        spec = get_scenario("table2", dataset="enron")
        result = run_scenario(spec, TINY)
        assert [row[0] for row in result.table] == ["enron"]


class TestOverrides:
    def test_dataset_override_changes_graph(self):
        facebook = _run("fig6").sweep()
        enron = run_scenario(
            get_scenario("fig6", dataset="enron"), TINY, cache=NullCache()
        ).sweep()
        assert facebook.dataset == "facebook" and enron.dataset == "enron"
        assert facebook.series != enron.series
