"""Fig. 8 — impact of gamma on attacks to degree centrality (Exp 3).

Expected shapes (paper): all attacks grow with the number of targets (larger
attack surface); MGA consistently on top.
"""

import numpy as np
import pytest
from conftest import bench_config, emit

from repro.experiments.figures import fig8


@pytest.mark.parametrize("dataset", ["facebook", "enron", "astroph", "gplus"])
def test_fig8_degree_vs_gamma(benchmark, dataset):
    config = bench_config(dataset)

    result = benchmark.pedantic(fig8, args=(dataset, config), rounds=1, iterations=1)

    emit("fig08_degree_vs_gamma", result.format())
    mga = np.array(result.gains_of("MGA"))
    rva = np.array(result.gains_of("RVA"))
    assert np.all(mga >= rva)
    assert mga[-1] > mga[0], "more targets -> larger overall gain"
