"""Tests for repro.graph.metrics against hand-computed and networkx values."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.metrics import (
    average_degree,
    degree_centrality,
    edge_density,
    local_clustering_coefficients,
    modularity,
    modularity_from_labels,
    triangles_per_node,
)


@pytest.fixture
def small_clustered():
    """Two triangles sharing node 2, plus a pendant node 5."""
    return Graph(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5)])


class TestDegreeCentrality:
    def test_values(self, small_clustered):
        centrality = degree_centrality(small_clustered)
        degrees = small_clustered.degrees()
        assert np.allclose(centrality, degrees / 5.0)

    def test_empty_graph(self):
        assert degree_centrality(Graph(0)).size == 0

    def test_single_node(self):
        assert degree_centrality(Graph(1)).tolist() == [0.0]

    def test_star_center_is_one(self):
        star = Graph(5, [(0, i) for i in range(1, 5)])
        assert degree_centrality(star)[0] == 1.0


class TestTriangles:
    def test_hand_counted(self, small_clustered):
        triangles = triangles_per_node(small_clustered)
        assert triangles.tolist() == [1, 1, 2, 1, 1, 0]

    def test_triangle_free(self):
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert triangles_per_node(path).tolist() == [0, 0, 0, 0]

    def test_complete_graph(self):
        k5 = Graph(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
        # Each node of K5 is in C(4,2) = 6 triangles.
        assert triangles_per_node(k5).tolist() == [6] * 5

    def test_matches_networkx(self):
        g = powerlaw_cluster_graph(200, 4, 0.5, rng=0)
        ours = triangles_per_node(g)
        theirs = nx.triangles(g.to_networkx())
        assert ours.tolist() == [theirs[i] for i in range(g.num_nodes)]

    def test_empty(self):
        assert triangles_per_node(Graph(0)).size == 0


class TestClusteringCoefficients:
    def test_hand_computed(self, small_clustered):
        cc = local_clustering_coefficients(small_clustered)
        # node 2 has degree 4 and 2 triangles: 2*2/(4*3) = 1/3
        assert cc[2] == pytest.approx(1.0 / 3.0)
        # node 0 has degree 2 and 1 triangle: 2*1/(2*1) = 1
        assert cc[0] == pytest.approx(1.0)
        # pendant node 5 has degree 1 -> 0 by convention
        assert cc[5] == 0.0

    def test_matches_networkx(self):
        g = powerlaw_cluster_graph(200, 4, 0.5, rng=1)
        ours = local_clustering_coefficients(g)
        theirs = nx.clustering(g.to_networkx())
        assert np.allclose(ours, [theirs[i] for i in range(g.num_nodes)])

    def test_isolated_nodes_zero(self):
        assert local_clustering_coefficients(Graph(3)).tolist() == [0.0, 0.0, 0.0]


class TestDensityAndAverageDegree:
    def test_average_degree(self, small_clustered):
        assert average_degree(small_clustered) == pytest.approx(2 * 7 / 6)

    def test_average_degree_empty(self):
        assert average_degree(Graph(0)) == 0.0

    def test_edge_density_complete(self):
        k4 = Graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert edge_density(k4) == 1.0

    def test_edge_density_empty(self):
        assert edge_density(Graph(1)) == 0.0


class TestModularity:
    def test_matches_networkx(self):
        g = powerlaw_cluster_graph(150, 3, 0.4, rng=2)
        nx_graph = g.to_networkx()
        communities = list(nx.algorithms.community.greedy_modularity_communities(nx_graph))
        ours = modularity(g, [sorted(c) for c in communities])
        theirs = nx.algorithms.community.modularity(nx_graph, communities)
        assert ours == pytest.approx(theirs)

    def test_single_community_zero(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert modularity(g, [[0, 1, 2, 3]]) == pytest.approx(0.0)

    def test_rejects_overlap(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="overlap"):
            modularity(g, [[0, 1], [1, 2]])

    def test_rejects_incomplete_cover(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="cover"):
            modularity(g, [[0, 1]])

    def test_rejects_out_of_range(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="out of node range"):
            modularity(g, [[0, 1], [2, 3]])

    def test_labels_variant_agrees(self):
        g = powerlaw_cluster_graph(80, 3, 0.4, rng=3)
        labels = np.arange(g.num_nodes) % 4
        communities = [np.flatnonzero(labels == k).tolist() for k in range(4)]
        assert modularity_from_labels(g, labels) == pytest.approx(modularity(g, communities))

    def test_labels_shape_checked(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="one entry per node"):
            modularity_from_labels(g, np.zeros(2, dtype=np.int64))

    def test_empty_graph_zero(self):
        assert modularity_from_labels(Graph(3), np.zeros(3, dtype=np.int64)) == 0.0
