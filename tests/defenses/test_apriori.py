"""Tests for the from-scratch Apriori miner, including brute-force checks."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defenses.apriori import apriori, count_contained_itemsets


def brute_force(transactions, min_support, max_size):
    """Reference implementation: enumerate every candidate itemset."""
    items = sorted({item for t in transactions for item in t})
    sets = [frozenset(t) for t in transactions]
    found = {}
    for size in range(1, max_size + 1):
        for candidate in combinations(items, size):
            candidate = frozenset(candidate)
            support = sum(1 for t in sets if candidate <= t)
            if support >= min_support:
                found[candidate] = support
    return found


class TestApriori:
    def test_textbook_example(self):
        transactions = [
            {1, 3, 4},
            {2, 3, 5},
            {1, 2, 3, 5},
            {2, 5},
        ]
        found = apriori(transactions, min_support=2, max_size=3)
        assert found[frozenset({2, 3, 5})] == 2
        assert found[frozenset({1, 3})] == 2
        assert frozenset({1, 2}) not in found  # support 1

    def test_single_items(self):
        found = apriori([{1}, {1}, {2}], min_support=2, max_size=1)
        assert found == {frozenset({1}): 2}

    def test_empty_transactions(self):
        assert apriori([], min_support=1) == {}

    def test_support_threshold_respected(self):
        found = apriori([{1, 2}] * 5 + [{3}], min_support=6)
        assert found == {}

    def test_max_size_respected(self):
        found = apriori([{1, 2, 3}] * 3, min_support=2, max_size=2)
        assert all(len(itemset) <= 2 for itemset in found)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            apriori([{1}], min_support=0)
        with pytest.raises(ValueError):
            apriori([{1}], min_support=1, max_size=0)

    def test_duplicates_in_transaction_ignored(self):
        found = apriori([[1, 1, 2], [1, 2]], min_support=2)
        assert found[frozenset({1, 2})] == 2

    @given(
        data=st.lists(
            st.lists(st.integers(min_value=0, max_value=8), max_size=6),
            min_size=1,
            max_size=12,
        ),
        min_support=st.integers(min_value=1, max_value=4),
        max_size=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, data, min_support, max_size):
        assert apriori(data, min_support, max_size) == brute_force(
            data, min_support, max_size
        )


class TestCountContainedItemsets:
    def test_counting(self):
        itemsets = [frozenset({1, 2}), frozenset({2, 3}), frozenset({4})]
        assert count_contained_itemsets({1, 2, 3}, itemsets) == 2

    def test_empty(self):
        assert count_contained_itemsets({1, 2}, []) == 0
