"""Tests for the sweep runner and figure drivers (small scales)."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    community_labels,
    fig6,
    fig9,
    fig12a,
    fig12b,
    fig14,
    table2_rows,
)
from repro.experiments.runner import (
    CLUSTERING_ATTACKS,
    DEGREE_ATTACKS,
    SweepResult,
    run_attack_sweep,
)
from repro.graph.generators import powerlaw_cluster_graph

TINY = ExperimentConfig(trials=1, seed=0, scale=0.05)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(200, 4, 0.5, rng=0)


class TestRunAttackSweep:
    def test_epsilon_sweep_structure(self, graph):
        result = run_attack_sweep(
            graph, "toy", "degree_centrality", "epsilon", [2.0, 4.0], TINY, figure="T"
        )
        assert set(result.series) == {"RVA", "RNA", "MGA"}
        assert all(len(series) == 2 for series in result.series.values())

    def test_clustering_attacks_selected_by_metric(self, graph):
        result = run_attack_sweep(
            graph, "toy", "clustering_coefficient", "epsilon", [4.0], TINY
        )
        assert set(result.series) == set(CLUSTERING_ATTACKS)

    def test_invalid_parameter(self, graph):
        with pytest.raises(ValueError, match="parameter"):
            run_attack_sweep(graph, "toy", "degree_centrality", "delta", [1], TINY)

    def test_deterministic(self, graph):
        a = run_attack_sweep(graph, "toy", "degree_centrality", "beta", [0.05], TINY)
        b = run_attack_sweep(graph, "toy", "degree_centrality", "beta", [0.05], TINY)
        assert a.series == b.series

    def test_gains_finite_and_nonnegative(self, graph):
        result = run_attack_sweep(
            graph, "toy", "degree_centrality", "gamma", [0.01, 0.05], TINY
        )
        for series in result.series.values():
            assert all(np.isfinite(g) and g >= 0 for g in series)


class TestSweepResult:
    def test_format_contains_values(self):
        result = SweepResult(
            figure="FigX", dataset="toy", metric="m", parameter="epsilon",
            values=[1.0, 2.0], series={"MGA": [0.5, 0.25]},
        )
        text = result.format()
        assert "FigX" in text and "MGA" in text and "0.2500" in text
        # No stderr recorded -> no ± column.
        assert "±" not in text

    def test_gains_of_missing_attack(self):
        result = SweepResult("F", "d", "m", "epsilon", [1.0], {"MGA": [1.0]})
        with pytest.raises(KeyError, match="have: MGA"):
            result.gains_of("RVA")

    def test_add_point_aggregates_trials(self):
        result = SweepResult("F", "d", "m", "epsilon", [1.0])
        result.add_point("MGA", [1.0, 3.0])
        assert result.series["MGA"] == [2.0]
        # Sample stdev of [1, 3] is sqrt(2); SEM = sqrt(2)/sqrt(2) = 1.
        assert result.stderr["MGA"] == [1.0]
        assert result.samples["MGA"] == [[1.0, 3.0]]

    def test_single_trial_stderr_is_zero(self):
        result = SweepResult("F", "d", "m", "epsilon", [1.0])
        result.add_point("MGA", [4.0])
        assert result.stderr["MGA"] == [0.0]

    def test_format_renders_stderr_column(self):
        result = SweepResult("F", "d", "m", "epsilon", [1.0])
        result.add_point("MGA", [1.0, 3.0])
        text = result.format()
        assert "±" in text and "2.0000" in text and "1.0000" in text


class TestSweepStatistics:
    def test_sweep_carries_per_trial_samples(self, graph):
        config = ExperimentConfig(trials=3, seed=0, cache=False)
        result = run_attack_sweep(
            graph, "toy", "degree_centrality", "epsilon", [4.0], config, figure="S"
        )
        for name in result.series:
            assert len(result.samples[name]) == 1
            assert len(result.samples[name][0]) == 3
            assert result.series[name][0] == pytest.approx(
                float(np.mean(result.samples[name][0]))
            )
            assert result.stderr[name][0] >= 0.0
        assert "±" in result.format()


class TestFigureDrivers:
    def test_table2_rows(self):
        rows = table2_rows(TINY)
        assert len(rows) == 4
        assert rows[0][0] == "facebook"
        assert rows[0][1] == 4039 and rows[0][2] == 88234

    def test_fig6_small(self):
        config = TINY.with_overrides(scale=0.04)
        result = fig6("facebook", config.with_overrides())
        # Restrict to a tiny sweep by slicing is not possible; just check shape.
        assert result.metric == "degree_centrality"
        assert len(result.values) == 8

    def test_fig9_small(self):
        result = fig9("facebook", TINY.with_overrides(scale=0.04))
        assert result.metric == "clustering_coefficient"
        assert set(result.series) == {"RVA", "RNA", "MGA"}

    def test_fig12a_series(self):
        result = fig12a(TINY.with_overrides(scale=0.04))
        assert set(result.series) == {"NoDefense", "Detect1", "Naive1"}
        assert len(result.values) == 6

    def test_fig12b_series(self):
        result = fig12b(TINY.with_overrides(scale=0.04))
        assert set(result.series) == {"NoDefense", "Detect2", "Naive2"}

    def test_fig14_two_protocols(self):
        results = fig14(TINY.with_overrides(scale=0.03), epsilons=[4.0])
        assert set(results) == {"LF-GDPR", "LDPGen"}
        for sweep in results.values():
            assert len(sweep.values) == 1

    def test_community_labels_partition(self, graph):
        labels = community_labels(graph)
        assert labels.shape == (graph.num_nodes,)
        assert labels.min() == 0
