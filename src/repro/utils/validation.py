"""Argument validation helpers.

These keep the public API strict and the error messages uniform.  Every check
raises early with the offending name and value, following the
"return/raise as early as the incorrect context has been detected" idiom.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Tuple, Type, Union

import numpy as np


def check_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(value: Real, name: str) -> Real:
    """Raise :class:`ValueError` unless ``value`` > 0."""
    check_type(value, Real, name)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: Real, name: str) -> Real:
    """Raise :class:`ValueError` unless ``value`` >= 0."""
    check_type(value, Real, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: Real, name: str) -> Real:
    """Raise :class:`ValueError` unless ``value`` is in [0, 1]."""
    check_type(value, Real, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
    return value


def check_fraction(value: Real, name: str) -> Real:
    """Raise :class:`ValueError` unless ``value`` is in (0, 1).

    Used for the fake-user fraction ``beta`` and target fraction ``gamma``;
    a fraction of exactly 0 or 1 makes the threat model degenerate.
    """
    check_type(value, Real, name)
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must lie strictly between 0 and 1, got {value}")
    return value


def check_positive_int(value: Any, name: str) -> int:
    """Raise unless ``value`` is a bona-fide positive integer.

    Rejects floats (even integral ones like ``3.0``) and booleans: a config
    knob like ``trials`` or ``jobs`` silently truncated from a float is
    almost always a caller bug, and ``True`` counting as 1 trial is worse.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_scale(value: Any, name: str) -> Real:
    """Raise unless ``value`` is a scale factor in (0, 1]."""
    check_type(value, Real, name)
    if isinstance(value, bool) or not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value!r}")
    return value


def check_in_range(value: Real, low: Real, high: Real, name: str) -> Real:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    check_type(value, Real, name)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
