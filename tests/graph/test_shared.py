"""Tests for the shared-memory export/attach surface of Graph.

Lifecycle contract under test: the exporter creates the segment
(:meth:`Graph.to_shared`), any number of processes attach zero-copy
(:meth:`Graph.attach_shared`), and the exporter — only — unlinks.
"""

import numpy as np
import pytest

from repro.graph.adjacency import Graph, SharedGraphHandle
from repro.graph.generators import powerlaw_cluster_graph


@pytest.fixture
def graph():
    return powerlaw_cluster_graph(120, 4, 0.3, rng=7)


class TestRoundTrip:
    def test_attach_reproduces_graph(self, graph):
        handle, segment = graph.to_shared()
        try:
            attached, view = Graph.attach_shared(handle)
            assert attached == graph
            assert attached.num_nodes == graph.num_nodes
            assert attached.num_edges == graph.num_edges
            assert np.array_equal(attached.degrees(), graph.degrees())
            del attached
            view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_handle_is_small_and_picklable(self, graph):
        import pickle

        handle, segment = graph.to_shared()
        try:
            clone = pickle.loads(pickle.dumps(handle))
            assert clone == handle
            assert isinstance(clone, SharedGraphHandle)
            # The whole point: workers receive a name, not an edge array.
            assert len(pickle.dumps(handle)) < 200
        finally:
            segment.close()
            segment.unlink()

    def test_attached_codes_are_zero_copy_and_read_only(self, graph):
        handle, segment = graph.to_shared()
        try:
            attached, view = Graph.attach_shared(handle)
            codes = attached.edge_codes
            assert not codes.flags.owndata, "attached codes must view the segment"
            with pytest.raises(ValueError):
                attached._codes[0] = 0
            del attached, codes
            view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_empty_graph_round_trips(self):
        empty = Graph(5, [])
        handle, segment = empty.to_shared()
        try:
            attached, view = Graph.attach_shared(handle)
            assert attached == empty
            assert attached.num_edges == 0
            view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_metrics_identical_through_shared_memory(self, graph):
        from repro.graph.metrics import triangles_per_node

        handle, segment = graph.to_shared()
        try:
            attached, view = Graph.attach_shared(handle)
            assert np.array_equal(
                triangles_per_node(attached), triangles_per_node(graph)
            )
            del attached
            view.close()
        finally:
            segment.close()
            segment.unlink()


class TestLifecycle:
    def test_unlink_after_attach_close(self, graph):
        """Exporter unlink succeeds once attachers have closed their views."""
        handle, segment = graph.to_shared()
        attached, view = Graph.attach_shared(handle)
        del attached
        view.close()
        segment.close()
        segment.unlink()
        with pytest.raises(FileNotFoundError):
            Graph.attach_shared(handle)


class TestAbnormalTeardown:
    """A process dying mid-sweep must not leak /dev/shm segments.

    GraphStore registers emergency hooks (atexit + a chaining SIGTERM
    handler); these tests run a real subprocess that exports a segment,
    never reaches close(), and gets killed — then assert the segment is
    gone from the system.
    """

    CHILD = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.engine.graph_store import GraphStore
from repro.graph.generators import powerlaw_cluster_graph

store = GraphStore()
key = store.add_graph(powerlaw_cluster_graph(60, 3, 0.4, rng=0))
handle = store.export_graph(key)
print(handle.shm_name, flush=True)
signal.pause()
"""

    def _spawn_and_kill(self, signum):
        import subprocess
        import sys
        import time
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD.format(src=src)],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            shm_name = child.stdout.readline().strip()
            assert shm_name, "child never exported a segment"
            segment = Path("/dev/shm") / shm_name.lstrip("/")
            assert segment.exists(), "exported segment not visible in /dev/shm"
            child.send_signal(signum)
            child.wait(timeout=30)
            # The handler unlinks before re-raising; give the fs a moment.
            for _ in range(50):
                if not segment.exists():
                    break
                time.sleep(0.1)
            return child.returncode, segment
        finally:
            if child.poll() is None:
                child.kill()
            child.stdout.close()

    @pytest.mark.skipif(
        not __import__("pathlib").Path("/dev/shm").is_dir(),
        reason="needs a POSIX /dev/shm",
    )
    def test_sigterm_unlinks_segments_and_dies_conventionally(self):
        import signal

        returncode, segment = self._spawn_and_kill(signal.SIGTERM)
        assert not segment.exists(), f"leaked {segment} after SIGTERM"
        assert returncode == -signal.SIGTERM, (
            "the chaining handler must re-raise SIGTERM after cleanup"
        )

    @pytest.mark.skipif(
        not __import__("pathlib").Path("/dev/shm").is_dir(),
        reason="needs a POSIX /dev/shm",
    )
    def test_sigint_unlinks_segments_via_atexit(self):
        """KeyboardInterrupt unwinds into a normal exit; atexit must clean."""
        import signal

        _, segment = self._spawn_and_kill(signal.SIGINT)
        assert not segment.exists(), f"leaked {segment} after SIGINT"

    def test_forked_child_close_never_unlinks_parent_segments(self, graph):
        """Ownership is pinned to the creating PID."""
        import multiprocessing

        from repro.engine.graph_store import GraphStore

        store = GraphStore()
        try:
            key = store.add_graph(graph)
            handle = store.export_graph(key)

            def child_close(result_queue):
                store.close()  # inherited via fork: must NOT unlink
                result_queue.put(True)

            context = multiprocessing.get_context("fork")
            queue = context.Queue()
            worker = context.Process(target=child_close, args=(queue,))
            worker.start()
            assert queue.get(timeout=30) is True
            worker.join(timeout=30)
            # Parent can still attach: the segment survived the child.
            attached, view = Graph.attach_shared(handle)
            assert attached == graph
            del attached
            view.close()
        finally:
            store.close()
