"""End-to-end pipeline tests: graph -> protocol -> attack -> defense -> gain.

Every attack x metric x protocol combination must run cleanly on a small
graph and produce finite, reproducible gains; the headline orderings of the
paper must hold on seeded medium graphs.
"""

import numpy as np
import pytest

from repro import (
    ClusteringMGA,
    ClusteringRNA,
    ClusteringRVA,
    DegreeMGA,
    DegreeRNA,
    DegreeRVA,
    LDPGenProtocol,
    LFGDPRProtocol,
    ThreatModel,
    evaluate_attack,
)
from repro.defenses import (
    DegreeConsistencyDefense,
    FrequentItemsetDefense,
    NaiveDegreeTailsDefense,
    NaiveTopDegreeDefense,
    evaluate_defended_attack,
)
from repro.experiments.figures import community_labels
from repro.graph.generators import powerlaw_cluster_graph

ALL_ATTACKS = [
    DegreeRVA(), DegreeRNA(), DegreeMGA(),
    ClusteringRVA(), ClusteringRNA(), ClusteringMGA(),
]
ALL_METRICS = ["degree_centrality", "clustering_coefficient", "modularity"]


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(250, 4, 0.5, rng=0)


@pytest.fixture(scope="module")
def threat(graph):
    return ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)


@pytest.fixture(scope="module")
def labels(graph):
    return community_labels(graph)


class TestEveryCombination:
    @pytest.mark.parametrize("attack", ALL_ATTACKS, ids=lambda a: type(a).__name__)
    @pytest.mark.parametrize("metric", ALL_METRICS)
    def test_lfgdpr(self, graph, threat, labels, attack, metric):
        protocol = LFGDPRProtocol(epsilon=4.0)
        outcome = evaluate_attack(
            graph, protocol, attack, threat, metric=metric, rng=0,
            labels=labels if metric == "modularity" else None,
        )
        assert np.all(np.isfinite(outcome.per_target_gain))
        assert outcome.total_gain >= 0

    @pytest.mark.parametrize("attack", ALL_ATTACKS, ids=lambda a: type(a).__name__)
    @pytest.mark.parametrize("metric", ALL_METRICS)
    def test_ldpgen(self, graph, threat, labels, attack, metric):
        protocol = LDPGenProtocol(epsilon=4.0)
        outcome = evaluate_attack(
            graph, protocol, attack, threat, metric=metric, rng=0,
            labels=labels if metric == "modularity" else None,
        )
        assert np.all(np.isfinite(outcome.per_target_gain))
        assert outcome.total_gain >= 0


class TestEveryDefenseCombination:
    DEFENSES = [
        FrequentItemsetDefense(threshold=50),
        DegreeConsistencyDefense(),
        NaiveTopDegreeDefense(),
        NaiveDegreeTailsDefense(),
    ]

    @pytest.mark.parametrize("defense", DEFENSES, ids=lambda d: d.name)
    @pytest.mark.parametrize(
        "attack", [DegreeMGA(), DegreeRVA(), ClusteringMGA()],
        ids=lambda a: type(a).__name__,
    )
    def test_defense_runs(self, graph, threat, attack, defense):
        protocol = LFGDPRProtocol(epsilon=4.0)
        metric = (
            "clustering_coefficient" if isinstance(attack, ClusteringMGA) else "degree_centrality"
        )
        outcome = evaluate_defended_attack(
            graph, protocol, attack, defense, threat, metric=metric, rng=0
        )
        assert np.isfinite(outcome.total_gain)
        assert 0.0 <= outcome.quality.precision <= 1.0
        assert 0.0 <= outcome.quality.recall <= 1.0


class TestReproducibility:
    def test_same_seed_same_everything(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        runs = [
            evaluate_attack(graph, protocol, DegreeMGA(), threat, rng=11)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].before, runs[1].before)
        assert np.array_equal(runs[0].after, runs[1].after)

    def test_attack_ordering_degree(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        gains = {
            attack.name: np.mean(
                [
                    evaluate_attack(graph, protocol, attack, threat, rng=s).total_gain
                    for s in range(3)
                ]
            )
            for attack in (DegreeMGA(), DegreeRVA(), DegreeRNA())
        }
        assert gains["MGA"] > gains["RVA"]
        assert gains["MGA"] > gains["RNA"]

    def test_gain_scales_with_more_fakes(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        small = ThreatModel.sample(graph, beta=0.02, gamma=0.05, rng=1)
        large = ThreatModel.sample(graph, beta=0.2, gamma=0.05, rng=1)
        gain_small = np.mean(
            [
                evaluate_attack(graph, protocol, DegreeMGA(), small, rng=s).total_gain
                for s in range(3)
            ]
        )
        gain_large = np.mean(
            [
                evaluate_attack(graph, protocol, DegreeMGA(), large, rng=s).total_gain
                for s in range(3)
            ]
        )
        assert gain_large > gain_small


class TestFakeUserSemantics:
    def test_attack_only_touches_fake_reports(self, graph, threat):
        """Genuine users' pairs and degree reports are identical across the
        paired runs for every attack."""
        protocol = LFGDPRProtocol(epsilon=4.0)
        from repro.core.threat_model import AttackerKnowledge

        knowledge = AttackerKnowledge.from_protocol(protocol, graph)
        fake_set = set(threat.fake_users.tolist())
        for attack in ALL_ATTACKS:
            overrides = attack.craft(graph, threat, knowledge, rng=0)
            before = protocol.collect(graph, 99)
            after = protocol.collect(graph, 99, overrides=overrides)
            before_pairs = {
                (u, v)
                for u, v in before.perturbed_graph.edges()
                if u not in fake_set and v not in fake_set
            }
            after_pairs = {
                (u, v)
                for u, v in after.perturbed_graph.edges()
                if u not in fake_set and v not in fake_set
            }
            assert before_pairs == after_pairs, type(attack).__name__
            genuine = np.setdiff1d(np.arange(graph.num_nodes), threat.fake_users)
            assert np.array_equal(
                before.reported_degrees[genuine], after.reported_degrees[genuine]
            ), type(attack).__name__
