"""Tests for Detect1, Detect2 and the naive baselines on planted attacks."""

import numpy as np
import pytest

from repro.core.clustering_attacks import ClusteringMGA
from repro.core.degree_attacks import DegreeMGA, DegreeRVA
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.defenses.base import detection_quality
from repro.defenses.degree_consistency import DegreeConsistencyDefense
from repro.defenses.evaluation import evaluate_defended_attack
from repro.defenses.frequent_itemset import FrequentItemsetDefense
from repro.defenses.naive import NaiveDegreeTailsDefense, NaiveTopDegreeDefense
from repro.core.gain import evaluate_attack
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(400, 5, 0.5, rng=0)


@pytest.fixture(scope="module")
def threat(graph):
    return ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)


@pytest.fixture(scope="module")
def protocol():
    return LFGDPRProtocol(epsilon=4.0)


def attacked_reports(graph, threat, protocol, attack, seed=0):
    knowledge = AttackerKnowledge.from_protocol(protocol, graph)
    overrides = attack.craft(graph, threat, knowledge, rng=seed)
    return protocol.collect(graph, seed, overrides=overrides)


class TestFrequentItemsetDefense:
    def test_flags_mga_fakes(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeMGA(), seed=0)
        defense = FrequentItemsetDefense(threshold=50)
        quality = detection_quality(defense.detect(reports), threat.fake_users)
        assert quality.recall > 0.5

    def test_clean_reports_mostly_unflagged(self, graph, threat, protocol):
        clean = protocol.collect(graph, rng=0)
        defense = FrequentItemsetDefense(threshold=50)
        flagged = defense.detect(clean)
        assert flagged.size < 0.1 * graph.num_nodes

    def test_higher_threshold_flags_fewer(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeMGA(), seed=0)
        low = FrequentItemsetDefense(threshold=10).detect(reports).size
        high = FrequentItemsetDefense(threshold=500).detect(reports).size
        assert high <= low

    def test_explicit_supports(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeMGA(), seed=0)
        defense = FrequentItemsetDefense(threshold=50, item_support=5, pair_support=10)
        assert isinstance(defense.detect(reports), np.ndarray)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            FrequentItemsetDefense(threshold=0)

    def test_counts_nonnegative(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, ClusteringMGA(), seed=0)
        counts = FrequentItemsetDefense(threshold=50).frequent_pair_counts(reports)
        assert counts.shape == (graph.num_nodes,)
        assert np.all(counts >= 0)


class TestDegreeConsistencyDefense:
    def test_flags_rva_fakes(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeRVA(), seed=0)
        defense = DegreeConsistencyDefense()
        quality = detection_quality(defense.detect(reports), threat.fake_users)
        # RVA draws degrees uniformly: most fall far from the bit-vector
        # degree, but draws that happen to land nearby are missed.
        assert quality.recall > 0.5

    def test_clean_reports_rarely_flagged(self, graph, protocol):
        clean = protocol.collect(graph, rng=1)
        flagged = DegreeConsistencyDefense().detect(clean)
        assert flagged.size <= 0.02 * graph.num_nodes

    def test_paper_policy_is_permissive(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeRVA(), seed=0)
        sigma = DegreeConsistencyDefense(policy="sigma").detect(reports).size
        paper = DegreeConsistencyDefense(policy="paper").detect(reports).size
        assert paper <= sigma

    def test_explicit_threshold(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeRVA(), seed=0)
        tight = DegreeConsistencyDefense(threshold=1.0).detect(reports).size
        loose = DegreeConsistencyDefense(threshold=1e9).detect(reports).size
        assert loose == 0
        assert tight > 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            DegreeConsistencyDefense(policy="magic")
        with pytest.raises(ValueError):
            DegreeConsistencyDefense(threshold=-1.0)


class TestNaiveDefenses:
    def test_naive1_flags_fraction(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeMGA(), seed=0)
        flagged = NaiveTopDegreeDefense(fraction=0.03).detect(reports)
        assert flagged.size == round(0.03 * graph.num_nodes)

    def test_naive2_flags_both_tails(self, graph, threat, protocol):
        reports = attacked_reports(graph, threat, protocol, DegreeRVA(), seed=0)
        flagged = NaiveDegreeTailsDefense(fraction=0.03).detect(reports)
        count = round(0.03 * graph.num_nodes)
        assert count <= flagged.size <= 2 * count

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            NaiveTopDegreeDefense(fraction=0.0)
        with pytest.raises(ValueError):
            NaiveDegreeTailsDefense(fraction=1.0)


class TestDefendedEvaluation:
    def test_detect1_reduces_mga_gain(self, graph, threat, protocol):
        seeds = range(3)
        undefended = np.mean(
            [
                evaluate_attack(
                    graph, protocol, DegreeMGA(), threat, metric="degree_centrality", rng=s
                ).total_gain
                for s in seeds
            ]
        )
        defended = np.mean(
            [
                evaluate_defended_attack(
                    graph,
                    protocol,
                    DegreeMGA(),
                    FrequentItemsetDefense(threshold=50),
                    threat,
                    metric="degree_centrality",
                    rng=s,
                ).total_gain
                for s in seeds
            ]
        )
        assert defended < undefended

    def test_detect2_reduces_rva_gain_but_not_fully(self, graph, threat, protocol):
        seeds = range(4)
        undefended = np.mean(
            [
                evaluate_attack(
                    graph, protocol, DegreeRVA(), threat, metric="degree_centrality", rng=s
                ).total_gain
                for s in seeds
            ]
        )
        defended = np.mean(
            [
                evaluate_defended_attack(
                    graph,
                    protocol,
                    DegreeRVA(),
                    DegreeConsistencyDefense(),
                    threat,
                    metric="degree_centrality",
                    rng=s,
                ).total_gain
                for s in seeds
            ]
        )
        assert defended < undefended
        assert defended > 0, "the countermeasure must not fully neutralise the attack"

    def test_outcome_fields(self, graph, threat, protocol):
        outcome = evaluate_defended_attack(
            graph,
            protocol,
            DegreeMGA(),
            FrequentItemsetDefense(threshold=50),
            threat,
            metric="degree_centrality",
            rng=0,
        )
        assert outcome.attack_name == "MGA"
        assert outcome.defense_name == "Detect1"
        assert 0.0 <= outcome.quality.precision <= 1.0
        assert outcome.total_gain >= 0

    def test_metric_validated(self, graph, threat, protocol):
        with pytest.raises(ValueError, match="metric"):
            evaluate_defended_attack(
                graph,
                protocol,
                DegreeMGA(),
                FrequentItemsetDefense(threshold=50),
                threat,
                metric="pagerank",
            )

    def test_modularity_requires_labels(self, graph, threat, protocol):
        with pytest.raises(ValueError, match="labels"):
            evaluate_defended_attack(
                graph,
                protocol,
                DegreeMGA(),
                FrequentItemsetDefense(threshold=50),
                threat,
                metric="modularity",
            )
