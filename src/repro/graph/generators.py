"""Random-graph generators used to build the dataset surrogates.

Thin, seed-disciplined wrappers over networkx generators plus a tuned
power-law-cluster generator that targets a requested average degree.  All
generators return :class:`repro.graph.Graph` with integer node labels.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.graph.adjacency import Graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_probability


def _nx_seed(rng: RngLike) -> int:
    """Derive an integer seed for networkx from our RngLike convention."""
    return int(ensure_rng(rng).integers(0, 2**31 - 1))


def _holme_kim_edges(n: int, m: int, p: float, rand: random.Random) -> list:
    """Edge list of ``nx.powerlaw_cluster_graph(n, m, p, seed)``, replayed.

    A draw-for-draw replica of the networkx Holme–Kim loop over plain
    dict-of-dicts adjacency: the same ``rand.choice`` / ``rand.random``
    calls in the same order, the same insertion-ordered neighbour
    iteration, and the same ``set.pop`` target order, so the produced edge
    set is identical for any seed.  Inlining the membership tests removes
    the per-edge ``Graph.has_edge`` method dispatch that dominates
    surrogate generation for high-degree datasets (~6M calls for the
    G+ surrogate) — generation only, results unchanged.
    """
    adjacency: dict = {node: {} for node in range(m)}
    edges: list = []
    repeated_nodes = list(range(m))
    source = m
    while source < n:
        # _random_subset: draw until m unique targets accumulate.  The pop
        # order of the resulting set matches networkx exactly — CPython set
        # iteration is deterministic in the inserted values.
        targets: set = set()
        while len(targets) < m:
            targets.add(rand.choice(repeated_nodes))
        source_adjacency = adjacency.setdefault(source, {})
        target = targets.pop()
        if target not in source_adjacency:
            source_adjacency[target] = None
            adjacency.setdefault(target, {})[source] = None
            edges.append((source, target))
        repeated_nodes.append(target)
        count = 1
        while count < m:
            if rand.random() < p:  # clustering step: try to close a triangle
                neighborhood = [
                    nbr
                    for nbr in adjacency[target]
                    if nbr not in source_adjacency and nbr != source
                ]
                if neighborhood:
                    nbr = rand.choice(neighborhood)
                    source_adjacency[nbr] = None
                    adjacency[nbr][source] = None
                    edges.append((source, nbr))
                    repeated_nodes.append(nbr)
                    count += 1
                    continue
            # preferential attachment step (may re-add an existing edge,
            # which networkx silently keeps — the repeat weight still lands)
            target = targets.pop()
            if target not in source_adjacency:
                source_adjacency[target] = None
                adjacency.setdefault(target, {})[source] = None
                edges.append((source, target))
            repeated_nodes.append(target)
            count += 1
        repeated_nodes.extend([source] * m)
        source += 1
    return edges


def erdos_renyi_graph(num_nodes: int, edge_probability: float, rng: RngLike = None) -> Graph:
    """G(n, p) random graph.

    Uses the sparse ``fast_gnp_random_graph`` algorithm, fine for the edge
    densities that occur in this library.
    """
    check_positive(num_nodes, "num_nodes")
    check_probability(edge_probability, "edge_probability")
    nx_graph = nx.fast_gnp_random_graph(num_nodes, edge_probability, seed=_nx_seed(rng))
    return Graph.from_networkx(nx_graph)


def barabasi_albert_graph(num_nodes: int, edges_per_node: int, rng: RngLike = None) -> Graph:
    """Preferential-attachment graph (power-law degrees, low clustering)."""
    check_positive(num_nodes, "num_nodes")
    check_positive(edges_per_node, "edges_per_node")
    nx_graph = nx.barabasi_albert_graph(num_nodes, edges_per_node, seed=_nx_seed(rng))
    return Graph.from_networkx(nx_graph)


def powerlaw_cluster_graph(
    num_nodes: int,
    edges_per_node: int,
    triangle_probability: float,
    rng: RngLike = None,
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    This is the backbone of the social-network surrogates: it produces the
    heavy-tailed degree distribution and the high local clustering that the
    SNAP datasets in Table II exhibit.
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(edges_per_node, "edges_per_node")
    check_probability(triangle_probability, "triangle_probability")
    if num_nodes < edges_per_node:
        raise ValueError(
            f"num_nodes must be at least edges_per_node "
            f"({num_nodes} < {edges_per_node})"
        )
    edges = _holme_kim_edges(
        num_nodes,
        edges_per_node,
        triangle_probability,
        random.Random(_nx_seed(rng)),
    )
    return Graph(num_nodes, edges)


def surrogate_social_graph(
    num_nodes: int,
    target_average_degree: float,
    triangle_probability: float = 0.5,
    rng: RngLike = None,
) -> Graph:
    """Social-network surrogate with a requested average degree.

    A Holme–Kim graph with attachment parameter ``m`` has average degree
    close to ``2 m``; we round ``target_average_degree / 2`` to pick ``m``
    (minimum 1) and keep the clustering knob exposed.
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(target_average_degree, "target_average_degree")
    edges_per_node = max(1, round(target_average_degree / 2.0))
    if edges_per_node >= num_nodes:
        raise ValueError(
            "target_average_degree too large for num_nodes "
            f"({target_average_degree} vs {num_nodes})"
        )
    return powerlaw_cluster_graph(num_nodes, edges_per_node, triangle_probability, rng=rng)
