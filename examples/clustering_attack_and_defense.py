"""Scenario: distorting community cohesion metrics, then defending.

A data collector estimates local clustering coefficients under LDP (how
tightly each user's friends know each other — a standard cohesion signal for
recommender and moderation pipelines).  The attacker runs the clustering MGA
with its prioritized allocation: bots pair up, claim each other, and claim
shared targets, closing fake triangles around every target.

The second half mounts the paper's two countermeasures plus the naive
baselines against the attack and prints the residual gain and the detector
quality — reproducing the §VIII-D conclusion that the defenses mitigate but
do not neutralise.

Run:  python examples/clustering_attack_and_defense.py
"""

from repro import ClusteringMGA, ClusteringRVA, LFGDPRProtocol, ThreatModel, evaluate_attack, load_dataset
from repro.defenses import (
    DegreeConsistencyDefense,
    FrequentItemsetDefense,
    NaiveTopDegreeDefense,
    evaluate_defended_attack,
)


def main():
    graph = load_dataset("facebook", scale=0.2)
    protocol = LFGDPRProtocol(epsilon=4.0)
    threat = ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)
    print(
        f"graph: {graph.num_nodes} nodes | attacker: {threat.num_fake} bots, "
        f"{threat.num_targets} targets | eps = 4\n"
    )

    # --- the attack --------------------------------------------------
    for attack in (ClusteringMGA(), ClusteringRVA()):
        outcome = evaluate_attack(
            graph, protocol, attack, threat, metric="clustering_coefficient", rng=0
        )
        print(f"{attack.name}: overall clustering-coefficient gain {outcome.total_gain:.4f}")

    # --- the defenses ------------------------------------------------
    print("\ndefending against the clustering MGA:")
    defenses = [
        FrequentItemsetDefense(threshold=75),
        DegreeConsistencyDefense(),
        NaiveTopDegreeDefense(),
    ]
    undefended = evaluate_attack(
        graph, protocol, ClusteringMGA(), threat, metric="clustering_coefficient", rng=0
    ).total_gain
    print(f"  no defense:  residual gain {undefended:.4f}")
    for defense in defenses:
        outcome = evaluate_defended_attack(
            graph, protocol, ClusteringMGA(), defense, threat,
            metric="clustering_coefficient", rng=0,
        )
        print(
            f"  {defense.name:8s}: residual gain {outcome.total_gain:.4f}   "
            f"(precision {outcome.quality.precision:.2f}, "
            f"recall {outcome.quality.recall:.2f})"
        )

    print(
        "\nDetect1 catches the coordinated claim pattern but leaves residual"
        "\ndistortion. Detect2 flags the fakes too (verbatim claims lack RR"
        "\nnoise, so the two degree channels disagree) - but its removal"
        "\nrepair wrecks genuine estimates and the residual gain goes UP."
        "\nNaive1 mostly flags genuine hubs. Hence the paper's call for new"
        "\ndefenses."
    )


if __name__ == "__main__":
    main()
