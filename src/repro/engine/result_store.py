"""Sharded, append-only result store with legacy per-task read-through.

The original :class:`~repro.engine.cache.ResultCache` wrote one tiny JSON
file per task.  At scenario scale that layout is dominated by filesystem
metadata: thousands of ``open``/``rename`` pairs, one inode each, and a
directory entry per trial.  :class:`ShardedResultStore` replaces it with 256
append-only shard files keyed by the first two hex digits of the task
content hash — the same prefix the legacy layout used for its fan-out
directories, so both generations share one cache root:

* ``<root>/shard-<hh>.jsonl`` — one JSON line per result, appended with a
  single ``write`` on an ``O_APPEND`` descriptor (atomic on POSIX), so
  concurrent processes can append to the same shard without locks or torn
  reads; duplicate hashes resolve last-writer-wins;
* ``<root>/<hh>/<hash>.json`` — the legacy per-task layout, still **read**
  transparently: a shard miss falls through to the legacy file, and a hit
  there is migrated forward by appending it to the shard, so old caches
  keep answering without a recompute and converge to the new layout.

Entries store the full task identity next to the gain, exactly like the
legacy cache: a version bump, an identity mismatch (hash collision) or a
torn trailing line all degrade to a miss, never to a wrong result.
:data:`~repro.engine.cache.CACHE_VERSION` is shared with the legacy cache —
task identities did not change, so neither did the stamp.

Integrity (see :mod:`repro.engine.integrity`): every line appended here
carries a CRC32 checksum verified at parse time (pre-checksum lines stay
readable — the field is optional, no version bump); lines failing
verification are copied to ``<root>/quarantine/`` with a structured reason
and counted, never silently dropped; an append hitting ``ENOSPC``/``EIO``
degrades the store to a loud in-memory overlay so the sweep finishes, with
the non-durable results reported so ``--resume`` recomputes exactly those.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.engine.cache import CACHE_VERSION, default_cache_dir
from repro.engine.integrity import (
    REASON_NON_FINITE,
    REASON_TORN_LINE,
    REASON_UNPARSEABLE,
    CHECKSUM_FIELD,
    Quarantine,
    ensure_finite_gain,
    inspect_line,
    is_disk_fault,
    salvage_line,
    stamp_checksum,
)
from repro.engine.tasks import TrialTask, identity_payload
from repro.telemetry.core import current_tracer

#: Hex digits of the content hash selecting a shard (256 shards).
SHARD_PREFIX_LEN = 2


def _write_all(descriptor: int, data: bytes) -> None:
    """Write every byte of ``data`` to ``descriptor``, looping on short writes.

    ``os.write`` may legitimately write fewer bytes than asked (signals,
    quotas, pipes/FUSE backends); a naive single call would then leave a
    torn line *mid-file*, where the store's torn-line tolerance — built for
    an interrupted trailing append — cannot help.
    """
    view = memoryview(data)
    while view:
        written = os.write(descriptor, view)
        view = view[written:]


class ShardedResultStore:
    """Task-hash-keyed persistent gain store over append-only shards.

    Parameters
    ----------
    root:
        Cache directory, shared with (and layered over) any legacy per-task
        cache already there.  Defaults to
        :func:`repro.engine.cache.default_cache_dir`.

    Shard indexes are loaded lazily, one file parse per touched prefix, and
    kept in memory for the store's lifetime; ``put`` updates both the file
    and the index.  Writers in other processes are picked up by a fresh
    store instance (or :meth:`refresh`).
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.appends = 0
        self.migrated = 0
        self.shards_loaded = 0
        self.reloads = 0
        self.corrupt = 0
        self.legacy_corrupt = 0
        #: True once an append hit a disk fault and the store switched to
        #: the in-memory overlay for the entries it could not persist.
        self.degraded = False
        self.quarantine = Quarantine(self.root)
        self._index: Dict[str, Dict[str, dict]] = {}
        self._loaded: Set[str] = set()
        #: hash -> entry this store computed but could NOT persist (disk
        #: fault).  Served from memory for the session; reported at close
        #: so ``--resume`` knows exactly what to recompute.
        self._non_durable: Dict[str, dict] = {}
        #: prefix -> (size, mtime_ns) of the shard file when last parsed;
        #: None when no file existed.  A mismatch on a miss means another
        #: process appended since — reload instead of recomputing its work.
        self._shard_stats: Dict[str, Optional[Tuple[int, int]]] = {}

    def stats(self) -> Dict[str, int]:
        """Lifetime counters of this store instance.

        ``hits``/``misses`` count :meth:`get` outcomes, ``appends`` counts
        :meth:`put` writes, ``migrated`` counts legacy entries forwarded
        into shards, ``shards_loaded`` counts shard files actually parsed,
        ``reloads`` counts staleness-probe re-parses that picked up other
        processes' appends, ``corrupt``/``quarantined`` count shard lines
        failing integrity verification (and the quarantine records written
        for them), ``legacy_corrupt`` counts unreadable legacy per-task
        files, and ``non_durable`` counts results held only in memory after
        a disk-fault degradation.
        :meth:`~repro.engine.session.EngineSession.close` logs this
        snapshot through telemetry.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "appends": self.appends,
            "migrated": self.migrated,
            "shards_loaded": self.shards_loaded,
            "reloads": self.reloads,
            "corrupt": self.corrupt,
            "quarantined": self.quarantine.added,
            "legacy_corrupt": self.legacy_corrupt,
            "non_durable": len(self._non_durable),
        }

    @property
    def non_durable_count(self) -> int:
        """Results this store computed but could not persist (disk fault)."""
        return len(self._non_durable)

    def non_durable_tasks(self) -> List[dict]:
        """Identity payloads of every non-durable result, for reporting."""
        return [
            dict(entry.get("task", {}), hash=digest)
            for digest, entry in sorted(self._non_durable.items())
        ]

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def shard_path(self, prefix: str) -> Path:
        """Where one shard's append-only file lives."""
        return self.root / f"shard-{prefix}.jsonl"

    def _legacy_path(self, digest: str) -> Path:
        """Where the pre-shard layout kept this task's entry."""
        return self.root / digest[:SHARD_PREFIX_LEN] / f"{digest}.json"

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, task: TrialTask) -> Optional[float]:
        """The stored gain for ``task``, or None on any kind of miss.

        A miss on an already loaded shard probes the shard file's
        size/mtime first: if another process appended since this store
        parsed it, the shard is re-read and the lookup retried, so
        concurrent writers' results become visible without a full
        :meth:`refresh` — the probe is one ``stat`` and only runs on
        misses, hits stay pure dictionary lookups.
        """
        digest = task.content_hash()
        prefix = digest[:SHARD_PREFIX_LEN]
        self._load_shard(prefix)
        entry = self._index.get(prefix, {}).get(digest)
        if entry is None and self._reload_if_stale(prefix):
            entry = self._index.get(prefix, {}).get(digest)
        if entry is None:
            entry = self._read_legacy(task, digest)
        if entry is None or not self._valid(entry, task):
            self.misses += 1
            current_tracer().counter("result_store.miss")
            return None
        self.hits += 1
        current_tracer().counter("result_store.hit")
        return float(entry["gain"])

    def _valid(self, entry: dict, task: TrialTask) -> bool:
        return (
            entry.get("cache_version") == CACHE_VERSION
            and entry.get("task") == identity_payload(task)
        )

    def _record_corrupt(
        self, source: str, line_number: int, raw: str, reason: str
    ) -> None:
        """Count one damaged record and copy it into the quarantine."""
        self.corrupt += 1
        current_tracer().counter("integrity.corrupt")
        self.quarantine.add(source, line_number, raw, reason)

    def _read_legacy(self, task: TrialTask, digest: str) -> Optional[dict]:
        """Read-through of the legacy per-task file, migrating on a hit.

        Damage here is never silent: an unreadable, unparseable or
        non-finite legacy file is counted (``result_store.legacy_corrupt``)
        and quarantined, then degrades to a miss.
        """
        path = self._legacy_path(digest)
        source = f"{digest[:SHARD_PREFIX_LEN]}/{path.name}"
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            # Unreadable (permissions, I/O error): nothing to quarantine,
            # but the skip must be visible.
            self.legacy_corrupt += 1
            current_tracer().counter("result_store.legacy_corrupt")
            return None
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            self.legacy_corrupt += 1
            current_tracer().counter("result_store.legacy_corrupt")
            self._record_corrupt(source, 1, raw, REASON_UNPARSEABLE)
            return None
        if not isinstance(entry, dict):
            self.legacy_corrupt += 1
            current_tracer().counter("result_store.legacy_corrupt")
            self._record_corrupt(source, 1, raw, REASON_UNPARSEABLE)
            return None
        gain = entry.get("gain")
        if (
            not isinstance(gain, (int, float))
            or isinstance(gain, bool)
            or not math.isfinite(gain)
        ):
            self.legacy_corrupt += 1
            current_tracer().counter("result_store.legacy_corrupt")
            self._record_corrupt(source, 1, raw, REASON_NON_FINITE)
            return None
        if not self._valid(entry, task):
            return None
        # Migrate forward (legacy entries carry no hash field): next time
        # this prefix loads, the shard answers.  Migration is best-effort —
        # a read-only or full cache root must degrade to answering from the
        # legacy file, never fail the read.
        entry = stamp_checksum({**entry, "hash": digest})
        try:
            self._append(digest, entry)
        except OSError:
            self._index.setdefault(digest[:SHARD_PREFIX_LEN], {})[digest] = entry
        self.migrated += 1
        current_tracer().counter("result_store.migrated")
        return entry

    def _shard_stat(self, prefix: str) -> Optional[Tuple[int, int]]:
        """The shard file's (size, mtime_ns), or None when absent."""
        try:
            status = os.stat(self.shard_path(prefix))
        except OSError:
            return None
        return (status.st_size, status.st_mtime_ns)

    def _load_shard(self, prefix: str) -> None:
        if prefix in self._loaded:
            return
        self._loaded.add(prefix)
        index = self._index.setdefault(prefix, {})
        # Stat *before* reading: a writer appending mid-parse then looks
        # stale on the next miss and triggers a (cheap, idempotent) reload
        # instead of being silently skipped forever.
        self._shard_stats[prefix] = self._shard_stat(prefix)
        source = f"shard-{prefix}.jsonl"
        try:
            content = self.shard_path(prefix).read_text(encoding="utf-8")
        except OSError:
            self._apply_overlay(prefix, index)
            return
        self.shards_loaded += 1
        lines = content.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
            terminated = True
        else:
            terminated = content.endswith("\n")
        for number, raw in enumerate(lines, start=1):
            if not raw.strip():
                continue
            if number == len(lines) and not terminated:
                # Unterminated trailing line: either a concurrent append
                # in flight (a reload after the writer finishes will parse
                # it) or an interrupted writer's torn tail (``cache
                # repair`` quarantines it).  Either way: lenient skip,
                # never poison reads, never quarantine a live write.
                current_tracer().counter("result_store.torn_tail")
                continue
            entry, reason = inspect_line(raw)
            if entry is None:
                # A torn fragment with a complete later line appended
                # behind it reads as one unparseable line; the trailing
                # record is intact and checksum-verified — recover it,
                # quarantine only the fragment.
                salvaged, fragment = salvage_line(raw)
                if salvaged is not None:
                    current_tracer().counter("integrity.salvaged")
                    self._record_corrupt(
                        source, number, fragment, REASON_TORN_LINE
                    )
                    index[salvaged["hash"]] = salvaged
                    continue
                self._record_corrupt(source, number, raw, reason)
                continue
            index[entry["hash"]] = entry  # duplicates: last writer wins
        self._apply_overlay(prefix, index)

    def _apply_overlay(self, prefix: str, index: Dict[str, dict]) -> None:
        """Re-impose non-durable in-memory results after a (re)load."""
        for digest, entry in self._non_durable.items():
            if digest.startswith(prefix):
                index[digest] = entry

    def _reload_if_stale(self, prefix: str) -> bool:
        """Re-parse a loaded shard iff its file changed since; True if so."""
        if self._shard_stat(prefix) == self._shard_stats.get(prefix):
            return False
        self._loaded.discard(prefix)
        self._index.pop(prefix, None)
        self._load_shard(prefix)
        self.reloads += 1
        current_tracer().counter("result_store.reload")
        return True

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, task: TrialTask, gain: float) -> None:
        """Append ``gain`` for ``task`` to its shard (atomic single write).

        The entry is checksummed (:func:`~repro.engine.integrity.
        stamp_checksum`) and the gain guarded — a non-finite value raises
        :class:`~repro.engine.integrity.NonFiniteGainError` before it can
        reach disk.  A disk fault (``ENOSPC``/``EIO``) degrades to the
        in-memory overlay instead of failing the sweep; a later successful
        append retries the backlog.

        Idempotent against what this store already knows: if the in-memory
        index holds an identical entry (a cache hit another layer re-put,
        or a distributed retry of work that did land), no shard line is
        appended — duplicate lines are harmless (last-writer-wins) but
        pure bloat.
        """
        digest = task.content_hash()
        value = ensure_finite_gain(task, gain)
        entry = stamp_checksum({
            "cache_version": CACHE_VERSION,
            "hash": digest,
            "task": identity_payload(task),
            "gain": value,
        })
        prefix = digest[:SHARD_PREFIX_LEN]
        existing = self._index.get(prefix, {}).get(digest)
        if existing is not None and self._same_result(existing, entry):
            current_tracer().counter("result_store.dedup")
            return
        try:
            with current_tracer().timer("result_store.append"):
                self._append(digest, entry)
        except OSError as error:
            if not is_disk_fault(error):
                raise
            self._degrade(digest, entry, error)
            return
        self.appends += 1
        if self._non_durable:
            self._flush_non_durable()

    def _same_result(self, existing: dict, entry: dict) -> bool:
        """Identical results modulo the checksum field (legacy lines lack it)."""
        strip = lambda e: {k: v for k, v in e.items() if k != CHECKSUM_FIELD}
        return strip(existing) == strip(entry)

    def _degrade(self, digest: str, entry: dict, error: OSError) -> None:
        """Keep a result the disk refused: serve it from memory, loudly."""
        prefix = digest[:SHARD_PREFIX_LEN]
        self._index.setdefault(prefix, {})[digest] = entry
        self._non_durable[digest] = entry
        current_tracer().counter("integrity.degraded")
        if not self.degraded:
            self.degraded = True
            current_tracer().event(
                "result_store.degraded", root=str(self.root), error=str(error)
            )
            warnings.warn(
                f"result store at {self.root} hit a disk fault ({error}); "
                "degrading to an in-memory overlay — the sweep will finish "
                "but these results are NOT durable; free space and rerun "
                "with --resume to recompute and persist exactly the "
                "non-durable tasks",
                RuntimeWarning,
                stacklevel=3,
            )

    def _flush_non_durable(self) -> None:
        """Retry persisting the overlay after a successful append."""
        for digest in sorted(self._non_durable):
            entry = self._non_durable[digest]
            try:
                self._append(digest, entry)
            except OSError as error:
                if is_disk_fault(error):
                    return  # still degraded; keep serving from memory
                raise
            del self._non_durable[digest]
            self.appends += 1
            current_tracer().counter("integrity.flushed")

    def _append(self, digest: str, entry: dict) -> None:
        prefix = digest[:SHARD_PREFIX_LEN]
        path = self.shard_path(prefix)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        # One write-all on an O_APPEND descriptor: concurrent appenders from
        # separate processes interleave whole lines, never fragments (short
        # writes — rare but legal — loop until the full line landed).
        descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            _write_all(descriptor, line.encode("utf-8"))
            # Remember our own append's stat so the next staleness probe
            # does not mistake it for a foreign write and re-parse for
            # nothing (fstat on the open descriptor is race-free enough:
            # a concurrent foreign append after it still flips the stat).
            status = os.fstat(descriptor)
            self._shard_stats[prefix] = (status.st_size, status.st_mtime_ns)
        finally:
            os.close(descriptor)
        self._index.setdefault(prefix, {})[digest] = entry

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Forget loaded indexes so other processes' appends become visible.

        The staleness probe in :meth:`get` already catches foreign appends
        to *grown* shard files; an explicit refresh additionally drops any
        in-memory-only state and is what the resume path
        (``scenario run --resume``) calls before replaying a batch.
        Non-durable overlay entries survive — they exist nowhere else.
        """
        self._index.clear()
        self._loaded.clear()
        self._shard_stats.clear()

    def clear(self) -> int:
        """Delete every entry — shards and legacy files; returns entry count.

        Counts distinct stored results (same semantics as ``len``), not raw
        shard lines — duplicate appends and torn lines are not entries.
        Quarantined records are kept (they document damage, not state).
        """
        removed = len(self)
        if self.root.is_dir():
            for shard in self.root.glob("shard-*.jsonl"):
                shard.unlink()
            for entry in self.root.glob("[0-9a-f][0-9a-f]/*.json"):
                entry.unlink()
        self.refresh()
        self._non_durable.clear()
        return removed

    def __len__(self) -> int:
        """Distinct stored results (shards plus unmigrated legacy entries)."""
        if not self.root.is_dir():
            return len(self._non_durable)
        digests = set(self._non_durable)
        for shard in self.root.glob("shard-*.jsonl"):
            prefix = shard.stem[len("shard-"):]
            self._load_shard(prefix)
        for index in self._index.values():
            digests.update(index)
        for entry in self.root.glob("[0-9a-f][0-9a-f]/*.json"):
            digests.add(entry.stem)
        return len(digests)
