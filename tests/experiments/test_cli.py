"""Tests for the experiment CLI."""

import io

import pytest

from repro.experiments.cli import ARTIFACTS, build_parser, run


class TestParser:
    def test_artifact_choices(self):
        assert "fig6" in ARTIFACTS and "table2" in ARTIFACTS and "fig15" in ARTIFACTS

    def test_parses_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.dataset == "facebook"
        assert args.trials == 2

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--dataset", "twitter"])


class TestRun:
    def test_list(self):
        out = io.StringIO()
        assert run(["list"], out=out) == 0
        text = out.getvalue()
        assert "table2" in text and "fig14" in text

    def test_table2(self):
        out = io.StringIO()
        assert run(["table2", "--scale", "0.05"], out=out) == 0
        assert "facebook" in out.getvalue()

    def test_fig6_tiny(self):
        out = io.StringIO()
        code = run(
            ["fig6", "--dataset", "facebook", "--scale", "0.04", "--trials", "1"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "MGA" in text and "epsilon" in text

    def test_fig12a_tiny(self):
        out = io.StringIO()
        code = run(["fig12a", "--scale", "0.04", "--trials", "1"], out=out)
        assert code == 0
        assert "Detect1" in out.getvalue()

    def test_fig14_tiny(self):
        out = io.StringIO()
        code = run(["fig14", "--scale", "0.03", "--trials", "1"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "LF-GDPR" in text and "LDPGen" in text
