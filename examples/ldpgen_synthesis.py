"""Scenario: poisoning a synthetic-graph release pipeline (LDPGen).

LDPGen never releases estimates directly — it publishes a *synthetic* graph
generated from noisy group-connectivity reports, and analysts compute
whatever they like on it.  This example shows that poisoning survives the
synthesis step (Exp 9 / Figs. 14-15): crafted reports shift the group
connection probabilities, and the targets' clustering coefficients and the
graph's modularity move in the released synthetic graph.

Run:  python examples/ldpgen_synthesis.py
"""

import numpy as np

from repro import (
    ClusteringMGA,
    DegreeMGA,
    LDPGenProtocol,
    ThreatModel,
    evaluate_attack,
    load_dataset,
)
from repro.experiments.figures import community_labels
from repro.graph.metrics import average_degree


def main():
    graph = load_dataset("facebook", scale=0.15)
    protocol = LDPGenProtocol(epsilon=4.0, refined_groups=8)
    threat = ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)

    # Show what the honest pipeline releases.
    reports = protocol.collect(graph, rng=0)
    synthetic = reports.perturbed_graph
    print("honest LDPGen release:")
    print(f"  original:  {graph.num_nodes} nodes, avg degree {average_degree(graph):.1f}")
    print(f"  synthetic: {synthetic.num_nodes} nodes, avg degree {average_degree(synthetic):.1f}")

    # Attack the released clustering coefficients of the targets.
    print(f"\npoisoning with {threat.num_fake} fake users, {threat.num_targets} targets:")
    cc_outcome = evaluate_attack(
        graph, protocol, ClusteringMGA(), threat, metric="clustering_coefficient", rng=0
    )
    print(f"  clustering-coefficient gain on synthetic graph: {cc_outcome.total_gain:.4f}")

    # Attack the modularity of the release, under the server's partition.
    labels = community_labels(graph)
    mod_outcome = evaluate_attack(
        graph, protocol, DegreeMGA(), threat, metric="modularity", rng=0, labels=labels
    )
    print(
        f"  modularity before {mod_outcome.before[0]:.4f} -> after "
        f"{mod_outcome.after[0]:.4f} (|shift| {mod_outcome.total_gain:.4f})"
    )

    # Epsilon sweep: synthesis dampens but does not remove the attack.
    print("\nclustering MGA gain across privacy budgets:")
    for epsilon in (1.0, 2.0, 4.0, 8.0):
        gains = [
            evaluate_attack(
                graph,
                LDPGenProtocol(epsilon=epsilon),
                ClusteringMGA(),
                threat,
                metric="clustering_coefficient",
                rng=seed,
            ).total_gain
            for seed in range(3)
        ]
        print(f"  eps={epsilon:>3}: {np.mean(gains):.4f}")


if __name__ == "__main__":
    main()
