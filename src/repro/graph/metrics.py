"""Exact (non-private) graph metrics.

These are the ground-truth counterparts of the LDP estimators in
``repro.protocols``: normalized degree centrality (Eq. 8 of the paper), the
local clustering coefficient (Eq. 12), per-node triangle counts, edge density
and Newman modularity.  All operate on :class:`repro.graph.Graph`.
"""

from __future__ import annotations

import os
from typing import MutableMapping, Optional, Sequence

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import BitMatrix, should_use_packed
from repro.graph.streaming import should_stream, streaming_triangles_per_node
from repro.telemetry.core import current_tracer
from repro.utils.sparse import decode_pairs, pair_count

#: Touched-row fraction above which incremental before/after estimation loses
#: to a full recompute (the delta pass costs ~4x the touched fraction of a
#: full pass, so the theoretical crossover sits near 0.25).
DEFAULT_DELTA_THRESHOLD = 0.25

#: Environment variable overriding :data:`DEFAULT_DELTA_THRESHOLD`.
DELTA_THRESHOLD_ENV = "REPRO_DELTA_THRESHOLD"


def delta_threshold() -> float:
    """The touched-row fraction crossover for incremental estimation."""
    return float(os.environ.get(DELTA_THRESHOLD_ENV, DEFAULT_DELTA_THRESHOLD))


def should_use_incremental(num_nodes: int, touched_count: int) -> bool:
    """Whether a paired after-run with ``touched_count`` changed rows should
    be estimated incrementally rather than from scratch.

    Pure predicate (no side effects); both paths are exact, so this only
    affects speed, never results.
    """
    if num_nodes < 3 or touched_count == 0:
        return False
    return touched_count <= delta_threshold() * num_nodes


#: Counters tracking how paired after-run triangle estimations were served.
#: ``incremental`` = delta path taken, ``fallback`` = full recompute because
#: the touched fraction crossed :func:`delta_threshold`.  Used by benchmarks
#: and the CI smoke job to assert the fast path is actually selected.
_DELTA_STATS = {"incremental": 0, "fallback": 0}


def delta_stats() -> dict:
    """A snapshot of the incremental-vs-fallback decision counters."""
    return dict(_DELTA_STATS)


def reset_delta_stats() -> None:
    """Zero the decision counters (call before a measured workload)."""
    for key in _DELTA_STATS:
        _DELTA_STATS[key] = 0


def degree_centrality(graph: Graph) -> np.ndarray:
    """Normalized degree centrality ``c_i = d_i / (N - 1)`` for every node.

    >>> g = Graph(3, [(0, 1), (0, 2)])
    >>> degree_centrality(g).tolist()
    [1.0, 0.5, 0.5]
    """
    n = graph.num_nodes
    if n <= 1:
        return np.zeros(n, dtype=np.float64)
    return graph.degrees().astype(np.float64) / (n - 1)


def triangles_per_node(graph: Graph) -> np.ndarray:
    """Number of triangles incident to each node (``tau_i`` in the paper).

    Density-adaptive: graphs above the packed-dispatch threshold (e.g. the
    near-dense output of low-epsilon randomized response) are counted via
    bit-packed row-AND + popcount (:class:`repro.graph.bitmatrix.BitMatrix`);
    dense-leaning graphs whose packed matrix exceeds
    ``REPRO_DENSE_MAX_BYTES`` stream packed row blocks instead
    (:func:`repro.graph.streaming.streaming_triangles_per_node`); sparser
    graphs go via ``diag(A @ A @ A) / 2`` on scipy CSR matrices.  All three
    backends produce exact integer counts, so the dispatch never changes a
    result.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if should_use_packed(graph):
        return _triangles_packed(graph)
    if should_stream(graph):
        return streaming_triangles_per_node(graph)
    return _triangles_sparse(graph)


def _triangles_packed(graph: Graph) -> np.ndarray:
    """Packed backend: edge-gather row-AND + popcount sweep."""
    edges = graph.edge_arrays()
    return BitMatrix.from_edge_arrays(graph.num_nodes, *edges).triangles_per_node(
        edges=edges
    )


def _triangles_sparse(graph: Graph) -> np.ndarray:
    """Sparse backend: each triangle at node *i* corresponds to two closed
    walks of length 3 (one per orientation)."""
    adjacency = graph.csr().astype(np.int64)
    squared = adjacency @ adjacency
    # diag(A @ A @ A)[i] = sum_j A[i, j] * (A @ A)[j, i]
    closed_walks = np.asarray(adjacency.multiply(squared.T).sum(axis=1)).ravel()
    return closed_walks // 2


def triangles_per_node_cached(graph: Graph, cache: MutableMapping) -> np.ndarray:
    """:func:`triangles_per_node` that parks its intermediates in ``cache``.

    Paired before/after evaluation calls this on the shared honest graph:
    the counts land under ``"triangles"`` and, on the packed path, the
    :class:`BitMatrix` under ``"bitmatrix"`` — both reused verbatim by
    :func:`triangles_per_node_incremental` so the honest graph is packed and
    counted exactly once per paired run.
    """
    triangles = cache.get("triangles")
    if triangles is None:
        if should_use_packed(graph):
            edges = graph.edge_arrays()
            packed = BitMatrix.from_edge_arrays(graph.num_nodes, *edges)
            cache["bitmatrix"] = packed
            triangles = packed.triangles_per_node(edges=edges)
        else:
            triangles = triangles_per_node(graph)
        cache["triangles"] = triangles
    return triangles


def triangles_touching(graph: Graph, nodes: np.ndarray) -> np.ndarray:
    """Per-node count of triangles with at least one vertex in ``nodes``.

    Density-adaptive like :func:`triangles_per_node` (packed row-AND +
    popcount vs sparse matmul restricted to the touched rows); both backends
    return the same exact integers.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if graph.num_nodes == 0 or nodes.size == 0:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    if should_use_packed(graph):
        return BitMatrix.from_graph(graph).triangles_touching(nodes)
    return _triangles_touching_sparse(graph, nodes)


def _triangles_touching_sparse(graph: Graph, nodes: np.ndarray) -> np.ndarray:
    """Sparse backend of :func:`triangles_touching`.

    Neighbour-set intersections restricted to the touched rows, phrased as
    sparse matmuls: ``P = A[S] @ A`` holds ``|N(s) & N(u)|`` for touched
    ``s`` and ``Q = A[S][:, S] @ A[S]`` the same intersection restricted to
    touched third vertices.  A touched node's count is its plain triangle
    count; an untouched node ``u`` collects, per touched neighbour ``s``,
    ``2 |N(u) & N(s)| - |N(u) & N(s) & S|`` ordered qualifying pairs, and a
    halving yields the exact count.
    """
    n = graph.num_nodes
    counts = np.zeros(n, dtype=np.int64)
    if graph.num_edges == 0:
        return counts
    adjacency = graph.csr().astype(np.int64)
    touched_rows = adjacency[nodes]
    paths = touched_rows @ adjacency
    own = touched_rows.multiply(paths)
    counts[nodes] = np.asarray(own.sum(axis=1)).ravel() // 2
    restricted = touched_rows[:, nodes] @ touched_rows
    term = np.asarray(
        touched_rows.multiply(2 * paths - restricted).sum(axis=0)
    ).ravel()
    outside = np.ones(n, dtype=bool)
    outside[nodes] = False
    counts[outside] = term[outside] // 2
    return counts


def triangles_per_node_incremental(
    before: Graph,
    after: Graph,
    touched: np.ndarray,
    before_triangles: np.ndarray,
    *,
    cache: Optional[MutableMapping] = None,
    added_codes: Optional[np.ndarray] = None,
    removed_codes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Triangle counts of ``after`` from those of ``before``, incrementally.

    Contract: ``after`` differs from ``before`` only on pairs incident to
    the ``touched`` nodes (the paired-run invariant — attack overrides only
    rewrite pairs incident to overridden users).  Every triangle gained or
    lost therefore has a vertex in ``touched``, so

    ``tau(after) = tau(before) - touching(before) + touching(after)``

    with :func:`triangles_touching` restricted to the touched rows.  All
    three terms are exact integers, making the result bit-identical to a
    full recompute; when the touched fraction exceeds
    :func:`delta_threshold` (``REPRO_DELTA_THRESHOLD``) the delta pass would
    cost more than it saves and the function falls back to
    :func:`triangles_per_node` on ``after``.  The decision is recorded in
    :func:`delta_stats`.

    ``cache`` (optional) carries the honest graph's packed matrix across
    calls; ``added_codes``/``removed_codes`` (optional, net sorted pair
    codes) let the packed path patch the before matrix's rows instead of
    re-packing ``after`` from scratch.
    """
    touched = np.asarray(touched, dtype=np.int64)
    n = before.num_nodes
    if touched.size == 0:
        return before_triangles
    if not should_use_incremental(n, touched.size):
        _DELTA_STATS["fallback"] += 1
        current_tracer().counter("delta.fallback")
        return triangles_per_node(after)
    _DELTA_STATS["incremental"] += 1
    current_tracer().counter("delta.incremental")
    if should_use_packed(before):
        packed_before = cache.get("bitmatrix") if cache is not None else None
        if packed_before is None:
            packed_before = BitMatrix.from_graph(before)
            if cache is not None:
                cache["bitmatrix"] = packed_before
        if added_codes is not None and removed_codes is not None:
            add_rows, add_cols = decode_pairs(added_codes, n)
            drop_rows, drop_cols = decode_pairs(removed_codes, n)
            packed_after = packed_before.with_edits(add_rows, add_cols, drop_rows, drop_cols)
        else:
            packed_after = BitMatrix.from_graph(after)
        return (
            before_triangles
            - packed_before.triangles_touching(touched)
            + packed_after.triangles_touching(touched)
        )
    return (
        before_triangles
        - _triangles_touching_sparse(before, touched)
        + _triangles_touching_sparse(after, touched)
    )


def local_clustering_coefficients(graph: Graph) -> np.ndarray:
    """Local clustering coefficient ``cc_i = 2 tau_i / (d_i (d_i - 1))``.

    Nodes with degree < 2 have coefficient 0 by convention.
    """
    degrees = graph.degrees().astype(np.float64)
    triangles = triangles_per_node(graph).astype(np.float64)
    denominator = degrees * (degrees - 1.0)
    coefficients = np.zeros(graph.num_nodes, dtype=np.float64)
    valid = denominator > 0
    coefficients[valid] = 2.0 * triangles[valid] / denominator[valid]
    return coefficients


def average_degree(graph: Graph) -> float:
    """Mean node degree ``2E / N`` (0 for the empty graph)."""
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes


def edge_density(graph: Graph) -> float:
    """Fraction of node pairs that are edges (``theta`` in the paper)."""
    pairs = pair_count(graph.num_nodes)
    if pairs == 0:
        return 0.0
    return graph.num_edges / pairs


def modularity(graph: Graph, communities: Sequence[Sequence[int]]) -> float:
    """Newman modularity of a node partition.

    ``Q = sum_c (e_c / E - (deg_c / 2E)^2)`` where ``e_c`` is the number of
    intra-community edges and ``deg_c`` the total degree of community ``c``.

    Raises if ``communities`` is not a partition of the node set.
    """
    n = graph.num_nodes
    labels = -np.ones(n, dtype=np.int64)
    for community_id, members in enumerate(communities):
        members = np.asarray(list(members), dtype=np.int64)
        if members.size and (members.min() < 0 or members.max() >= n):
            raise ValueError("community member out of node range")
        if np.any(labels[members] >= 0):
            raise ValueError("communities overlap")
        labels[members] = community_id
    if np.any(labels < 0):
        raise ValueError("communities do not cover all nodes")
    return modularity_from_labels(graph, labels)


def modularity_from_labels(graph: Graph, labels: np.ndarray) -> float:
    """Newman modularity given a per-node community label array."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.num_nodes,):
        raise ValueError("labels must have one entry per node")
    total_edges = graph.num_edges
    if total_edges == 0:
        return 0.0
    rows, cols = graph.edge_arrays()
    intra = np.bincount(
        labels[rows][labels[rows] == labels[cols]], minlength=labels.max() + 1
    ).astype(np.float64)
    community_degrees = np.bincount(
        labels, weights=graph.degrees().astype(np.float64), minlength=labels.max() + 1
    )
    return float(np.sum(intra / total_edges - (community_degrees / (2.0 * total_edges)) ** 2))
