"""API-surface tests: the documented public interface must stay importable.

These tests pin the names README and the examples rely on; renaming or
dropping any of them is a breaking change that must be deliberate.
"""

import importlib
import inspect

import pytest

import repro

TOP_LEVEL_API = [
    "ATTACKS",
    "PROTOCOLS",
    "DEFENSES",
    "TrialTask",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
    "Attack",
    "AttackerKnowledge",
    "AttackOutcome",
    "ClusteringMGA",
    "ClusteringRNA",
    "ClusteringRVA",
    "DegreeMGA",
    "DegreeRNA",
    "DegreeRVA",
    "FrequencyMGA",
    "FrequencyRIA",
    "FrequencyRPA",
    "ThreatModel",
    "average_gain",
    "evaluate_attack",
    "evaluate_frequency_attack",
    "theorem1_degree_gain",
    "theorem2_clustering_gain",
    "Graph",
    "load_dataset",
    "KRR",
    "OLH",
    "OUE",
    "FakeReport",
    "LDPGenProtocol",
    "LFGDPRProtocol",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioSpec",
    "SeriesSpec",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "Tracer",
    "RunManifest",
    "TelemetryCallbacks",
    "current_tracer",
]

SUBPACKAGES = [
    "repro.graph",
    "repro.ldp",
    "repro.protocols",
    "repro.core",
    "repro.defenses",
    "repro.engine",
    "repro.experiments",
    "repro.scenarios",
    "repro.telemetry",
    "repro.utils",
]


class TestTopLevel:
    @pytest.mark.parametrize("name", TOP_LEVEL_API)
    def test_exported(self, name):
        assert hasattr(repro, name), f"repro.{name} missing from public API"
        assert name in repro.__all__

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_module_docstring_mentions_paper(self):
        assert "Poisoning" in repro.__doc__


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable_with_all(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} needs a docstring"
        assert hasattr(module, "__all__"), f"{module_name} needs __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} in __all__ but missing"


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_documented(self, module_name):
        """Every public class/function reachable from a subpackage's __all__
        carries a docstring."""
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            member = getattr(module, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                if not inspect.getdoc(member):
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_methods_documented(self):
        """Public methods of the flagship classes are documented."""
        from repro import Graph, LFGDPRProtocol, ThreatModel

        for cls in (Graph, LFGDPRProtocol, ThreatModel):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) or isinstance(member, property):
                    target = member.fget if isinstance(member, property) else member
                    assert inspect.getdoc(target), f"{cls.__name__}.{name} undocumented"
