"""Edge-list I/O in the whitespace-separated SNAP format.

If a user of this library has the real SNAP datasets on disk, they can load
them with :func:`read_edge_list` and run every experiment on the genuine
graphs instead of the surrogates (see :mod:`repro.graph.datasets` for the
fetch-once cached registry built on top of this parser).

The reader streams: lines are validated one at a time and edges accumulate
in fixed-size numpy chunks, so a hundred-million-edge SNAP dump parses in
O(E) ints of memory instead of a Python list/dict of tuples per edge.
Duplicate detection, node-id compaction and graph assembly are vectorized
per chunk; error semantics (message text and which line is blamed) are
identical to a line-by-line parse.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.graph.adjacency import Graph
from repro.utils.sparse import decode_pairs, encode_pairs

PathLike = Union[str, os.PathLike]

#: Edges buffered between vectorized validation/dedup passes.
DEFAULT_CHUNK_LINES = 1 << 20

#: Largest node id the packed (lo << 32 | hi) duplicate key can hold.  Ids
#: beyond it (never seen in SNAP dumps) divert to a dict-based fallback.
_PACKED_ID_LIMIT = (1 << 32) - 1


class _WideIds(Exception):
    """Internal: a node id overflows the packed duplicate key."""


def read_edge_list(
    path: PathLike,
    num_nodes: int | None = None,
    *,
    allow_self_loops: bool = False,
    allow_duplicates: bool = False,
    chunk_lines: int | None = None,
) -> Graph:
    """Read and validate a whitespace-separated edge list (``u v`` per line).

    Lines starting with ``#`` are comments.  Node ids may be arbitrary
    non-negative integers; they are compacted to ``0..n-1`` preserving order
    of first appearance unless ``num_nodes`` is given, in which case ids are
    taken literally and must be < ``num_nodes``.

    Real-dataset files are validated strictly — every rejection names the
    offending line: malformed or non-integer tokens, negative ids, ids
    ``>= num_nodes``, self-loops and duplicate (undirected) edges all raise
    ``ValueError``.  Dataset dumps that legitimately carry self-loops or
    both edge directions can opt out per class of damage:
    ``allow_self_loops=True`` skips loops, ``allow_duplicates=True``
    collapses repeats — both silently, matching the old lenient behavior.

    ``chunk_lines`` sizes the vectorized validation buffer (default
    ``DEFAULT_CHUNK_LINES``); any value ≥ 1 parses to the identical graph.
    """
    chunk = DEFAULT_CHUNK_LINES if chunk_lines is None else int(chunk_lines)
    if chunk < 1:
        raise ValueError(f"chunk_lines must be >= 1, got {chunk_lines}")
    state = {
        "lnos": [], "us": [], "vs": [],  # the pending (unflushed) chunk
        "kept_u": [], "kept_v": [],      # unique edges, file order, as written
        "seen_keys": np.empty(0, dtype=np.uint64),   # sorted packed pair keys
        "seen_lines": np.empty(0, dtype=np.int64),   # aligned first-seen lines
    }

    def fail(message: str):
        # A duplicate on an earlier buffered line outranks this line's error
        # (a sequential parse would have hit it first).
        _flush_chunk(state, path, allow_duplicates)
        raise ValueError(message) from None

    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                parts = stripped.split()
                if len(parts) < 2:
                    fail(f"{path}:{line_number}: expected 'u v', got {stripped!r}")
                try:
                    u, v = int(parts[0]), int(parts[1])
                except ValueError:
                    fail(
                        f"{path}:{line_number}: non-integer node id in {stripped!r}"
                    )
                if u < 0 or v < 0:
                    fail(f"{path}:{line_number}: negative node id {min(u, v)}")
                if num_nodes is not None and max(u, v) >= num_nodes:
                    fail(
                        f"{path}:{line_number}: node id {max(u, v)} out of range "
                        f"for num_nodes={num_nodes}"
                    )
                if u == v:
                    if allow_self_loops:
                        continue
                    fail(
                        f"{path}:{line_number}: self-loop {u} {v} "
                        "(pass allow_self_loops=True to skip loops)"
                    )
                if u > _PACKED_ID_LIMIT or v > _PACKED_ID_LIMIT:
                    raise _WideIds()
                state["lnos"].append(line_number)
                state["us"].append(u)
                state["vs"].append(v)
                if len(state["lnos"]) >= chunk:
                    _flush_chunk(state, path, allow_duplicates)
        _flush_chunk(state, path, allow_duplicates)
    except _WideIds:
        return _read_edge_list_wide(
            path,
            num_nodes,
            allow_self_loops=allow_self_loops,
            allow_duplicates=allow_duplicates,
        )

    if state["kept_u"]:
        kept_u = np.concatenate(state["kept_u"])
        kept_v = np.concatenate(state["kept_v"])
    else:
        kept_u = kept_v = np.empty(0, dtype=np.int64)

    if num_nodes is not None:
        codes = encode_pairs(kept_u, kept_v, num_nodes)
        return Graph.from_codes(num_nodes, np.sort(codes), assume_sorted_unique=True)

    if kept_u.size == 0:
        return Graph(0, [])
    # Compact labels in order of first appearance: interleave endpoints the
    # way a sequential walk visits them, then rank unique ids by the index
    # of their first occurrence.
    flat = np.empty(2 * kept_u.size, dtype=np.int64)
    flat[0::2] = kept_u
    flat[1::2] = kept_v
    ids, first_index, inverse = np.unique(flat, return_index=True, return_inverse=True)
    rank = np.empty(ids.size, dtype=np.int64)
    rank[np.argsort(first_index, kind="stable")] = np.arange(ids.size)
    relabeled = rank[inverse]
    codes = encode_pairs(relabeled[0::2], relabeled[1::2], ids.size)
    return Graph.from_codes(ids.size, np.sort(codes), assume_sorted_unique=True)


def _flush_chunk(state: dict, path: PathLike, allow_duplicates: bool) -> None:
    """Vectorized duplicate pass over the pending chunk.

    Sorts the chunk's packed pair keys (stable, so runs keep file order),
    marks intra-chunk repeats and keys already in the cross-chunk ``seen``
    index, and either raises on the earliest duplicate line — blaming the
    same line with the same first-occurrence reference a sequential parse
    would — or appends the surviving first occurrences, in file order and
    original orientation, to the kept arrays.
    """
    if not state["lnos"]:
        return
    lno = np.array(state["lnos"], dtype=np.int64)
    u = np.array(state["us"], dtype=np.int64)
    v = np.array(state["vs"], dtype=np.int64)
    state["lnos"].clear()
    state["us"].clear()
    state["vs"].clear()

    lo = np.minimum(u, v).astype(np.uint64)
    hi = np.maximum(u, v).astype(np.uint64)
    keys = (lo << np.uint64(32)) | hi
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    repeat = np.zeros(sorted_keys.size, dtype=bool)
    repeat[1:] = sorted_keys[1:] == sorted_keys[:-1]

    seen_keys = state["seen_keys"]
    pos = np.searchsorted(seen_keys, sorted_keys)
    in_seen = np.zeros(sorted_keys.size, dtype=bool)
    if seen_keys.size:
        valid = pos < seen_keys.size
        in_seen[valid] = seen_keys[pos[valid]] == sorted_keys[valid]

    duplicate = repeat | in_seen
    if not allow_duplicates and duplicate.any():
        dup_sorted = np.flatnonzero(duplicate)
        originals = order[dup_sorted]
        pick = int(np.argmin(lno[originals]))
        original = int(originals[pick])
        s = int(dup_sorted[pick])
        if in_seen[s]:
            first = int(state["seen_lines"][pos[s]])
        else:
            run_start = s
            while repeat[run_start]:
                run_start -= 1
            first = int(lno[order[run_start]])
        raise ValueError(
            f"{path}:{int(lno[original])}: duplicate edge {int(u[original])} "
            f"{int(v[original])} (first at line {first}; pass "
            "allow_duplicates=True to collapse repeats)"
        )

    fresh = ~duplicate  # first occurrences: run starts not already seen
    keep_original = np.sort(order[fresh])
    state["kept_u"].append(u[keep_original])
    state["kept_v"].append(v[keep_original])

    fresh_keys = sorted_keys[fresh]
    fresh_lines = lno[order[fresh]]
    if seen_keys.size:
        merged_keys = np.concatenate([seen_keys, fresh_keys])
        merged_lines = np.concatenate([state["seen_lines"], fresh_lines])
        merge_order = np.argsort(merged_keys, kind="stable")
        state["seen_keys"] = merged_keys[merge_order]
        state["seen_lines"] = merged_lines[merge_order]
    else:
        state["seen_keys"] = fresh_keys
        state["seen_lines"] = fresh_lines


def _read_edge_list_wide(
    path: PathLike,
    num_nodes: int | None,
    *,
    allow_self_loops: bool,
    allow_duplicates: bool,
) -> Graph:
    """Line-by-line fallback for node ids beyond the packed-key range."""
    raw_edges: list[tuple[int, int]] = []
    seen: dict[tuple[int, int], int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_number}: expected 'u v', got {stripped!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: non-integer node id in {stripped!r}"
                ) from None
            if u < 0 or v < 0:
                raise ValueError(
                    f"{path}:{line_number}: negative node id {min(u, v)}"
                )
            if num_nodes is not None and max(u, v) >= num_nodes:
                raise ValueError(
                    f"{path}:{line_number}: node id {max(u, v)} out of range "
                    f"for num_nodes={num_nodes}"
                )
            if u == v:
                if allow_self_loops:
                    continue
                raise ValueError(
                    f"{path}:{line_number}: self-loop {u} {v} "
                    "(pass allow_self_loops=True to skip loops)"
                )
            key = (u, v) if u < v else (v, u)
            first = seen.setdefault(key, line_number)
            if first != line_number:
                if allow_duplicates:
                    continue
                raise ValueError(
                    f"{path}:{line_number}: duplicate edge {u} {v} "
                    f"(first at line {first}; pass allow_duplicates=True "
                    "to collapse repeats)"
                )
            raw_edges.append((u, v))

    if num_nodes is not None:
        return Graph(num_nodes, raw_edges)
    mapping: dict[int, int] = {}
    for u, v in raw_edges:
        if u not in mapping:
            mapping[u] = len(mapping)
        if v not in mapping:
            mapping[v] = len(mapping)
    edges = [(mapping[u], mapping[v]) for u, v in raw_edges]
    return Graph(len(mapping), edges)


def write_edge_list(
    graph: Graph,
    path: PathLike,
    *,
    header: str = "counts",
    chunk_edges: int = DEFAULT_CHUNK_LINES,
) -> None:
    """Write the graph as a canonical whitespace-separated edge list.

    Edges are emitted sorted lexicographically with ``u < v`` (the graph's
    canonical pair-code order), so equal graphs always serialize to equal
    bytes and the output round-trips through the *strict*
    :func:`read_edge_list` (``num_nodes=graph.num_nodes``) unchanged.
    Writes stream ``chunk_edges`` lines at a time — large graphs serialize
    without an all-lines string in memory.

    ``header`` selects the comment preamble:

    * ``"counts"`` (default) — the library's own ``# nodes=N edges=E`` line;
    * ``"snap"`` — a SNAP-download-style preamble (``# Nodes: N Edges: E``);
    * ``"none"`` — no header at all.
    """
    if header not in ("counts", "snap", "none"):
        raise ValueError(
            f"header must be 'counts', 'snap' or 'none', got {header!r}"
        )
    codes = graph.edge_codes
    n = graph.num_nodes
    with open(path, "w", encoding="utf-8") as handle:
        if header == "counts":
            handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        elif header == "snap":
            handle.write(
                "# Undirected graph: each unordered pair of nodes is saved once\n"
                f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n"
                "# FromNodeId\tToNodeId\n"
            )
        for start in range(0, codes.size, max(1, int(chunk_edges))):
            rows, cols = decode_pairs(codes[start : start + max(1, int(chunk_edges))], n)
            lines = "\n".join(
                f"{a} {b}" for a, b in zip(rows.tolist(), cols.tolist())
            )
            handle.write(lines)
            handle.write("\n")
