"""Fig. 13 — countermeasures against attacks to clustering coefficient (Exp 8).

Panel (a): Detect1 against MGA across thresholds {50..150} — the gain holds
roughly level while the threshold catches the fakes, then rises as fewer
nodes are flagged.  Panel (b): Detect2 against RVA across beta — defended
gain below the undefended attack, roughly insensitive to beta.
"""

import numpy as np
from conftest import bench_config, emit

from repro.experiments.figures import fig13a, fig13b


def test_fig13a_detect1_vs_mga(benchmark):
    config = bench_config("facebook")

    result = benchmark.pedantic(fig13a, args=(config,), rounds=1, iterations=1)

    emit("fig13_counter_cc", result.format())
    detect1 = np.array(result.gains_of("Detect1"))
    no_defense = np.array(result.gains_of("NoDefense"))
    assert np.all(np.isfinite(detect1))
    assert detect1.min() < no_defense[0], "some threshold mitigates the attack"
    assert detect1.min() > 0, "never fully neutralised"


def test_fig13b_detect2_vs_rva(benchmark):
    """Measured deviation from the paper, recorded in EXPERIMENTS.md: at
    bench scale Detect2's false positives cost about as much clustering
    distortion as the RVA attack itself, so the defended gain hovers at the
    undefended level instead of clearly below it.  The robust shapes are
    that Detect2 stays far below the Naive2 baseline (which amplifies the
    attack) and never neutralises the attack — the paper's own conclusion
    that the countermeasures are insufficient."""
    config = bench_config("facebook")

    result = benchmark.pedantic(fig13b, args=(config,), rounds=1, iterations=1)

    emit("fig13_counter_cc", result.format())
    detect2 = np.array(result.gains_of("Detect2"))
    naive2 = np.array(result.gains_of("Naive2"))
    no_defense = np.array(result.gains_of("NoDefense"))
    assert np.all(np.isfinite(detect2))
    assert detect2.mean() < naive2.mean(), "Detect2 clearly beats the naive baseline"
    assert detect2.mean() < 2.0 * no_defense.mean(), "Detect2 does not amplify the attack"
    assert detect2.min() > 0, "never fully neutralised"
