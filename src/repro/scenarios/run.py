"""Running a scenario end to end: load, compile, execute, aggregate.

:func:`run_scenario` is the single entry point every consumer shares — the
figure drivers in :mod:`repro.experiments.figures`, the ``scenario`` CLI
subcommands, the golden-result harness and the benchmarks.  All panels of a
scenario are flattened into **one** engine batch, so a multi-panel figure
(Fig. 14's LF-GDPR and LDPGen panels) parallelises across panels instead of
running them back to back.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.executors import CacheLike, Executor, cache_for, executor_for, run_tasks
from repro.engine.tasks import TrialTask
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import SweepResult
from repro.graph.adjacency import Graph
from repro.graph.datasets import DATASETS, load_dataset
from repro.scenarios.compiler import FLAT_VALUE, compile_scenario
from repro.scenarios.spec import SWEEP_FLAT, ScenarioSpec


def load_scenario_graph(spec: ScenarioSpec, config: ExperimentConfig) -> Graph:
    """The dataset surrogate a scenario runs on (same loading as the figures)."""
    return load_dataset(spec.dataset, scale=config.scale, rng=config.seed)


def community_labels(graph: Graph) -> np.ndarray:
    """Greedy-modularity community labelling of the original graph.

    LF-GDPR's modularity estimator needs a server-held partition; the paper
    does not specify one, so we fix the standard greedy-modularity partition
    (DESIGN.md §2).
    """
    import networkx as nx

    communities = nx.algorithms.community.greedy_modularity_communities(
        graph.to_networkx()
    )
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    for community_id, members in enumerate(communities):
        labels[list(members)] = community_id
    return labels


@dataclass
class ScenarioResult:
    """Everything one scenario run produced.

    ``panels`` maps panel keys to their :class:`SweepResult`; single-panel
    scenarios are unwrapped with :meth:`sweep`.  ``table`` holds the rows of
    a ``stats`` scenario (Table II) and is None otherwise.
    """

    spec: ScenarioSpec
    panels: "OrderedDict[str, SweepResult]" = field(default_factory=OrderedDict)
    table: Optional[List[Tuple]] = None

    def sweep(self) -> SweepResult:
        """The lone panel's sweep; raises if the scenario is multi-panel."""
        if len(self.panels) != 1:
            keys = ", ".join(self.panels) or "<none>"
            raise ValueError(
                f"scenario {self.spec.name!r} has panels {keys}; pick one explicitly"
            )
        return next(iter(self.panels.values()))

    def format(self) -> str:
        """All panels (or the stats table) rendered for the terminal."""
        if self.table is not None:
            return format_table(
                ["dataset", "paper nodes", "paper edges", "surrogate nodes", "surrogate edges"],
                self.table,
                title=self.spec.description or self.spec.name,
            )
        return "\n\n".join(panel.format() for panel in self.panels.values())


def _dataset_stats(spec: ScenarioSpec, config: ExperimentConfig) -> List[Tuple]:
    """Rows of a ``stats`` scenario: paper vs surrogate node/edge counts."""
    rows = []
    for name in spec.datasets or (spec.dataset,):
        dataset = DATASETS[name]
        graph = load_dataset(name, scale=config.scale, rng=config.seed)
        rows.append(
            (name, dataset.paper_nodes, dataset.paper_edges, graph.num_nodes, graph.num_edges)
        )
    return rows


#: A compiled sweep scenario ready to execute: (graph, labels, task batch).
PreparedScenario = Tuple[Graph, Optional["np.ndarray"], List["TrialTask"]]


def prepare_scenario(spec: ScenarioSpec, config: ExperimentConfig) -> PreparedScenario:
    """Load the graph, derive labels if needed, and compile the task batch.

    Exposed so callers that need the compiled batch *and* the run (the
    golden store hashes task identities) prepare once instead of twice —
    dataset loading and greedy-modularity labelling are the expensive parts.
    """
    graph = load_scenario_graph(spec, config)
    labels = community_labels(graph) if spec.metric == "modularity" else None
    return graph, labels, compile_scenario(spec, graph, config, labels=labels)


def run_scenario(
    spec: ScenarioSpec,
    config: ExperimentConfig = DEFAULT_CONFIG,
    executor: Optional[Executor] = None,
    cache: Optional[CacheLike] = None,
    prepared: Optional[PreparedScenario] = None,
) -> ScenarioResult:
    """Execute ``spec`` through the engine and aggregate its result curves.

    ``executor`` / ``cache`` default to what ``config.jobs`` / ``config.cache``
    imply; results are bit-identical for any executor, worker count or cache
    state because every compiled task derives its own seed.  ``prepared``
    (from :func:`prepare_scenario` with the same spec and config) skips the
    load/compile step.
    """
    if spec.kind == "stats":
        return ScenarioResult(spec=spec, table=_dataset_stats(spec, config))

    graph, labels, tasks = prepared if prepared is not None else prepare_scenario(spec, config)
    gains = run_tasks(
        tasks,
        graph,
        labels=labels,
        executor=executor if executor is not None else executor_for(config),
        cache=cache if cache is not None else cache_for(config),
    )

    by_point: Dict[Tuple[str, str, float], List[float]] = {}
    for task, gain in zip(tasks, gains):
        by_point.setdefault((task.figure, task.series, task.value), []).append(gain)

    result = ScenarioResult(spec=spec)
    for panel in spec.panels:
        sweep = SweepResult(
            figure=panel.figure,
            dataset=spec.dataset,
            metric=spec.metric,
            parameter=spec.parameter,
            values=list(spec.values),
        )
        for value in spec.values:
            for series in panel.series:
                point = FLAT_VALUE if series.sweep == SWEEP_FLAT else float(value)
                sweep.add_point(series.name, by_point[(panel.figure, series.name, point)])
        result.panels[panel.key] = sweep
    return result
