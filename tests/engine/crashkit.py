"""Crash/hang injection for process-pool workers.

The engine's pools fork on Linux, so anything the test process sets *before*
the pool is created — monkeypatched module attributes, environment
variables, globals — is inherited by every worker.  The wrappers here are
installed over ``repro.engine.executors._run_shared_chunk`` and gate on a
marker file named by :data:`MARKER_ENV`: the **first** worker call to win
the (atomic, ``O_EXCL``) marker race kills or hangs itself; every other
call — concurrent siblings and the retry round alike — delegates to the
real implementation.  One injected failure per marker, real process death,
deterministic recovery.
"""

import os
import signal
import time

from repro.engine import executors

#: Environment variable naming the marker file that arms the wrappers.
MARKER_ENV = "REPRO_TEST_CRASH_MARKER"

#: The genuine worker entry point, captured at import time.
REAL_RUN_SHARED_CHUNK = executors._run_shared_chunk


def _trip(marker: str) -> bool:
    """Atomically claim the one injected failure; False if already tripped."""
    try:
        descriptor = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(descriptor)
    return True


def sigkill_once_chunk(*args, **kwargs):
    """Die like an OOM-killed worker on the first armed call, then behave."""
    marker = os.environ.get(MARKER_ENV, "")
    if marker and _trip(marker):
        os.kill(os.getpid(), signal.SIGKILL)
    return REAL_RUN_SHARED_CHUNK(*args, **kwargs)


def hang_once_chunk(*args, **kwargs):
    """Stall forever (well past any test deadline) on the first armed call."""
    marker = os.environ.get(MARKER_ENV, "")
    if marker and _trip(marker):
        time.sleep(600)
    return REAL_RUN_SHARED_CHUNK(*args, **kwargs)
