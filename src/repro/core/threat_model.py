"""The paper's threat model (§IV-A).

An attacker controls ``m = beta * N`` *fake users* — compromised existing
devices, so in the honest ("before") world they participate with their
organic data — and aims to distort the estimated metrics of ``r = gamma * N``
attacker-chosen *target nodes*.  The attacker knows the protocol parameters
(both sub-budgets), the degree domain, and aggregate degree statistics of the
perturbed graph; it does not know other users' private edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.metrics import average_degree
from repro.ldp.perturbation import expected_perturbed_degree
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class ThreatModel:
    """Which users the attacker controls and which nodes it targets.

    Attributes
    ----------
    fake_users:
        Sorted ids of the ``m`` controlled users.
    targets:
        Sorted ids of the ``r`` target nodes (disjoint from ``fake_users``:
        targeting a node you already control is pointless).
    num_nodes:
        Total number of participating users ``N = n + m``.
    """

    fake_users: np.ndarray
    targets: np.ndarray
    num_nodes: int

    def __post_init__(self):
        fakes = np.unique(np.asarray(self.fake_users, dtype=np.int64))
        targets = np.unique(np.asarray(self.targets, dtype=np.int64))
        if fakes.size == 0:
            raise ValueError("threat model needs at least one fake user")
        if targets.size == 0:
            raise ValueError("threat model needs at least one target")
        for name, ids in (("fake_users", fakes), ("targets", targets)):
            if ids[0] < 0 or ids[-1] >= self.num_nodes:
                raise ValueError(f"{name} contain ids outside [0, {self.num_nodes})")
        if np.intersect1d(fakes, targets).size:
            raise ValueError("fake_users and targets must be disjoint")
        object.__setattr__(self, "fake_users", fakes)
        object.__setattr__(self, "targets", targets)

    @property
    def num_fake(self) -> int:
        """Number of fake users ``m``."""
        return int(self.fake_users.size)

    @property
    def num_targets(self) -> int:
        """Number of target nodes ``r``."""
        return int(self.targets.size)

    @property
    def beta(self) -> float:
        """Realised fraction of fake users."""
        return self.num_fake / self.num_nodes

    @property
    def gamma(self) -> float:
        """Realised fraction of target nodes."""
        return self.num_targets / self.num_nodes

    @classmethod
    def sample(
        cls, graph: Graph, beta: float, gamma: float, rng: RngLike = None
    ) -> "ThreatModel":
        """Draw fake users and targets uniformly at random (Table III setup).

        ``m = max(1, round(beta * N))`` users become fake; targets are drawn
        from the remaining genuine users.
        """
        check_fraction(beta, "beta")
        check_fraction(gamma, "gamma")
        generator = ensure_rng(rng)
        n = graph.num_nodes
        num_fake = max(1, round(beta * n))
        num_targets = max(1, round(gamma * n))
        if num_fake + num_targets > n:
            raise ValueError(
                f"beta={beta} and gamma={gamma} leave no room for "
                f"{num_fake} fake users and {num_targets} disjoint targets in {n} nodes"
            )
        permutation = generator.permutation(n)
        return cls(
            fake_users=permutation[:num_fake],
            targets=permutation[num_fake : num_fake + num_targets],
            num_nodes=n,
        )


@dataclass(frozen=True)
class AttackerKnowledge:
    """What the attacker knows about the protocol (§IV-A).

    The attacker sees the client-side implementation, hence both sub-budgets,
    and knows aggregate degree statistics ("the average degree in the
    perturbed graph") from which it sizes its connection budget.
    """

    num_nodes: int
    adjacency_epsilon: float
    degree_epsilon: float
    average_degree: float

    @property
    def perturbed_average_degree(self) -> float:
        """Expected average degree after randomized response (``d~``)."""
        return expected_perturbed_degree(
            self.average_degree, self.num_nodes, self.adjacency_epsilon
        )

    @property
    def connection_budget(self) -> int:
        """Max crafted connections per fake node (``floor(d~)``, at least 1)."""
        return max(1, int(self.perturbed_average_degree))

    @property
    def degree_domain(self) -> int:
        """Size of the degree value space ``[0, N - 1]``."""
        return self.num_nodes

    @classmethod
    def from_protocol(cls, protocol, graph: Graph) -> "AttackerKnowledge":
        """Derive the knowledge object from a protocol instance.

        Works for both :class:`~repro.protocols.lfgdpr.LFGDPRProtocol`
        (``budget`` attribute) and
        :class:`~repro.protocols.ldpgen.LDPGenProtocol` (``phase_epsilon``).
        """
        if hasattr(protocol, "budget"):
            eps1 = protocol.budget.adjacency_epsilon
            eps2 = protocol.budget.degree_epsilon
        elif hasattr(protocol, "phase_epsilon"):
            eps1 = protocol.phase_epsilon
            eps2 = protocol.phase_epsilon
        else:
            raise TypeError(
                f"cannot derive attacker knowledge from {type(protocol).__name__}"
            )
        return cls(
            num_nodes=graph.num_nodes,
            adjacency_epsilon=eps1,
            degree_epsilon=eps2,
            average_degree=average_degree(graph),
        )
