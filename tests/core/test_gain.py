"""Tests for the gain evaluation machinery."""

import numpy as np
import pytest

from repro.core.degree_attacks import DegreeMGA
from repro.core.gain import METRICS, AttackOutcome, average_gain, evaluate_attack
from repro.core.threat_model import ThreatModel
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.ldpgen import LDPGenProtocol
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(300, 4, 0.5, rng=0)


@pytest.fixture(scope="module")
def threat(graph):
    return ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)


class TestAttackOutcome:
    def test_gain_properties(self):
        outcome = AttackOutcome(
            attack_name="MGA",
            metric="degree_centrality",
            targets=np.array([1, 2]),
            before=np.array([0.1, 0.2]),
            after=np.array([0.3, 0.1]),
            overrides={},
        )
        assert np.allclose(outcome.per_target_gain, [0.2, 0.1])
        assert outcome.total_gain == pytest.approx(0.3)
        assert outcome.mean_gain == pytest.approx(0.15)


class TestEvaluateAttack:
    def test_deterministic(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        a = evaluate_attack(graph, protocol, DegreeMGA(), threat, rng=3)
        b = evaluate_attack(graph, protocol, DegreeMGA(), threat, rng=3)
        assert a.total_gain == b.total_gain

    def test_metric_validation(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        with pytest.raises(ValueError, match="metric must be one of"):
            evaluate_attack(graph, protocol, DegreeMGA(), threat, metric="pagerank")

    def test_modularity_requires_labels(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        with pytest.raises(ValueError, match="labels"):
            evaluate_attack(graph, protocol, DegreeMGA(), threat, metric="modularity")

    def test_modularity_metric(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        labels = (np.arange(graph.num_nodes) // 60).astype(np.int64)
        outcome = evaluate_attack(
            graph, protocol, DegreeMGA(), threat, metric="modularity", rng=0, labels=labels
        )
        assert outcome.before.shape == (1,)
        assert outcome.total_gain >= 0

    def test_paired_vs_unpaired(self, graph, threat):
        """Unpaired evaluation adds LDP noise variance to the gain."""
        protocol = LFGDPRProtocol(epsilon=4.0)
        paired = np.mean(
            [
                evaluate_attack(graph, protocol, DegreeMGA(), threat, rng=s).total_gain
                for s in range(4)
            ]
        )
        unpaired = np.mean(
            [
                evaluate_attack(
                    graph, protocol, DegreeMGA(), threat, rng=s, paired=False
                ).total_gain
                for s in range(4)
            ]
        )
        assert unpaired > paired * 0.5  # sanity: same order of magnitude
        assert unpaired != paired

    def test_works_with_ldpgen(self, graph, threat):
        protocol = LDPGenProtocol(epsilon=4.0)
        outcome = evaluate_attack(
            graph, protocol, DegreeMGA(), threat, metric="clustering_coefficient", rng=0
        )
        assert np.isfinite(outcome.total_gain)

    def test_outcome_shapes_align(self, graph, threat):
        protocol = LFGDPRProtocol(epsilon=4.0)
        outcome = evaluate_attack(graph, protocol, DegreeMGA(), threat, rng=5)
        assert outcome.targets.shape == outcome.before.shape == outcome.after.shape
        assert np.all(np.isfinite(outcome.before))
        assert np.all(np.isfinite(outcome.after))

    def test_metrics_constant(self):
        assert METRICS == ("degree_centrality", "clustering_coefficient", "modularity")


class TestAverageGain:
    def test_positive_for_mga(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        gain = average_gain(
            graph, protocol, DegreeMGA(), "degree_centrality", beta=0.05, gamma=0.05,
            trials=2, rng=0,
        )
        assert gain > 0

    def test_deterministic(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        kwargs = dict(metric="degree_centrality", beta=0.05, gamma=0.05, trials=2, rng=9)
        a = average_gain(graph, protocol, DegreeMGA(), kwargs["metric"], 0.05, 0.05, trials=2, rng=9)
        b = average_gain(graph, protocol, DegreeMGA(), kwargs["metric"], 0.05, 0.05, trials=2, rng=9)
        assert a == b

    def test_rejects_zero_trials(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        with pytest.raises(ValueError, match="trials"):
            average_gain(graph, protocol, DegreeMGA(), "degree_centrality", 0.05, 0.05, trials=0)
