"""Surrogates for the paper's evaluation datasets (Table II).

The paper evaluates on four SNAP graphs.  This environment is offline, so we
generate deterministic synthetic surrogates matched to each dataset's node
count and average degree (the quantities the attacks and estimators are
sensitive to — see DESIGN.md §2 for the substitution rationale):

========  =========  ============  ===========
Dataset   Nodes      Edges         Avg. degree
========  =========  ============  ===========
facebook  4,039      88,234        43.7
enron     36,692     183,831       10.0
astroph   18,772     198,110       21.1
gplus     107,614    12,238,285    227.4
========  =========  ============  ===========

``load_dataset(name)`` returns the surrogate at its *default scale*: Facebook
is full size, the larger graphs are scaled down (same average degree, fewer
nodes) so that the whole experiment suite runs in minutes on a laptop.  Pass
``scale=1.0`` for the paper-sized versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.generators import surrogate_social_graph
from repro.utils.rng import RngLike, child_rng
from repro.utils.validation import check_in_range

#: Per-process surrogate memo size.  Multi-panel/multi-scenario batches ask
#: for the same ``(name, scale, seed)`` surrogate once per panel; generation
#: is deterministic and graphs are immutable, so one bounded memo per
#: process answers the repeats.  Bounded: at full scale a surrogate can be
#: tens of MB, so the memo must never grow with the scenario count.
_MEMO_SIZE = 8


@dataclass(frozen=True)
class DatasetSpec:
    """Statistics of one paper dataset and surrogate-generation knobs."""

    name: str
    paper_nodes: int
    paper_edges: int
    default_scale: float
    triangle_probability: float
    description: str

    @property
    def paper_average_degree(self) -> float:
        """Average degree of the original SNAP graph."""
        return 2.0 * self.paper_edges / self.paper_nodes

    def nodes_at_scale(self, scale: float) -> int:
        """Surrogate node count at a given scale factor."""
        check_in_range(scale, 0.0, 1.0, "scale")
        return max(64, round(self.paper_nodes * scale))


#: Registry of the four Table II datasets.
DATASETS: Dict[str, DatasetSpec] = {
    "facebook": DatasetSpec(
        name="facebook",
        paper_nodes=4_039,
        paper_edges=88_234,
        default_scale=1.0,
        triangle_probability=0.7,
        description="Ego-network survey of Facebook app users (dense, clustered).",
    ),
    "enron": DatasetSpec(
        name="enron",
        paper_nodes=36_692,
        paper_edges=183_831,
        default_scale=0.12,
        triangle_probability=0.3,
        description="Enron email communication network (sparse).",
    ),
    "astroph": DatasetSpec(
        name="astroph",
        paper_nodes=18_772,
        paper_edges=198_110,
        default_scale=0.2,
        triangle_probability=0.6,
        description="arXiv Astro Physics co-authorship network.",
    ),
    "gplus": DatasetSpec(
        name="gplus",
        paper_nodes=107_614,
        paper_edges=12_238_285,
        default_scale=0.02,
        triangle_probability=0.4,
        description="Google+ social-circle share network (very dense).",
    ),
}


def load_dataset(name: str, scale: float | None = None, rng: RngLike = 0) -> Graph:
    """Generate the surrogate graph for a Table II dataset.

    Parameters
    ----------
    name:
        One of ``facebook``, ``enron``, ``astroph``, ``gplus``.
    scale:
        Node-count scale factor in (0, 1].  Defaults to the dataset's
        laptop-friendly ``default_scale``.  The average degree is held at the
        paper value regardless of scale (capped below N).
    rng:
        Seed for deterministic generation; the default (0) makes repeated
        loads identical, which the benchmark harness relies on.

    Loads are memoized per process on the full ``(name, scale, seed)``
    tuple (bounded LRU), so every panel of a multi-panel scenario — and
    every scenario of a batched run — shares one generation of the same
    surrogate.  Passing a live :class:`numpy.random.Generator` bypasses the
    memo: a stateful stream makes repeated loads intentionally different.

    >>> g = load_dataset("facebook")
    >>> g.num_nodes
    4039
    """
    spec = _lookup(name)
    if scale is None:
        scale = spec.default_scale
    if isinstance(rng, (int, np.integer)):
        return _load_dataset_memo(spec.name, float(scale), int(rng))
    return _generate(spec, float(scale), rng)


@lru_cache(maxsize=_MEMO_SIZE)
def _load_dataset_memo(name: str, scale: float, seed: int) -> Graph:
    """Deterministic-seed loads, memoized (graphs are immutable values)."""
    return _generate(DATASETS[name], scale, seed)


def _generate(spec: DatasetSpec, scale: float, rng: RngLike) -> Graph:
    num_nodes = spec.nodes_at_scale(scale)
    target_degree = min(spec.paper_average_degree, num_nodes / 4.0)
    return surrogate_social_graph(
        num_nodes,
        target_degree,
        triangle_probability=spec.triangle_probability,
        rng=child_rng(rng, f"dataset-{spec.name}-{num_nodes}"),
    )


def dataset_statistics(name: str, scale: float | None = None, rng: RngLike = 0) -> Tuple[int, int]:
    """(nodes, edges) of the surrogate — the Table II row we actually use."""
    graph = load_dataset(name, scale=scale, rng=rng)
    return graph.num_nodes, graph.num_edges


def _lookup(name: str) -> DatasetSpec:
    key = name.lower()
    if key not in DATASETS:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return DATASETS[key]
