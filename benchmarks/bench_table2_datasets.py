"""Table II — dataset statistics (paper values vs loaded surrogates)."""

from conftest import bench_trials, emit

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import table2_rows
from repro.experiments.reporting import format_table


def test_table2_datasets(benchmark):
    # Table II uses the dataset default scales (facebook full size); the
    # driver only generates the four graphs, so no bench downscaling needed.
    config = ExperimentConfig(trials=bench_trials(), seed=0, scale=None)

    rows = benchmark.pedantic(table2_rows, args=(config,), rounds=1, iterations=1)

    table = format_table(
        ["dataset", "paper nodes", "paper edges", "surrogate nodes", "surrogate edges"],
        rows,
        title="Table II — datasets (surrogates at default scales)",
    )
    emit("table2", table)
    assert len(rows) == 4
    assert rows[0][3] == 4039, "facebook surrogate is full size by default"
    assert all(edges > 0 for *_, edges in rows)
