"""Ablations of the MGA design choices called out in DESIGN.md §6.

* prioritized allocation (fake-fake edges first) vs target-only claims for
  the clustering MGA — pairing is what closes triangles;
* the connection-budget cap vs unbounded claims for the degree MGA — the cap
  costs gain but is what keeps fake reports inside the perturbed-degree
  distribution.
"""

import numpy as np
from conftest import bench_config, bench_trials, emit

from repro.core.clustering_attacks import ClusteringMGA
from repro.core.degree_attacks import DegreeMGA
from repro.core.gain import evaluate_attack
from repro.core.threat_model import ThreatModel
from repro.experiments.reporting import format_table
from repro.graph.datasets import load_dataset
from repro.protocols.lfgdpr import LFGDPRProtocol


def _mean_gain(graph, protocol, attack, metric, trials):
    threat = ThreatModel.sample(graph, 0.05, 0.05, rng=0)
    return float(
        np.mean(
            [
                evaluate_attack(
                    graph, protocol, attack, threat, metric=metric, rng=seed
                ).total_gain
                for seed in range(trials)
            ]
        )
    )


def test_ablation_prioritized_allocation(benchmark):
    config = bench_config("facebook")
    graph = load_dataset("facebook", scale=config.scale, rng=config.seed)
    protocol = LFGDPRProtocol(epsilon=4.0)
    trials = max(2, bench_trials())

    def run():
        paired = _mean_gain(
            graph, protocol, ClusteringMGA(), "clustering_coefficient", trials
        )
        target_only = _mean_gain(
            graph,
            protocol,
            ClusteringMGA(prioritize_fake_edges=False),
            "clustering_coefficient",
            trials,
        )
        return paired, target_only

    paired, target_only = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_mga_cc",
        format_table(
            ["variant", "MGA-CC gain"],
            [["prioritized (paper)", paired], ["targets only", target_only]],
            title="Ablation — prioritized allocation in clustering MGA (eps=4)",
        ),
    )
    assert paired > target_only, "fake-fake edges are what close triangles"


def test_ablation_connection_budget(benchmark):
    config = bench_config("facebook")
    graph = load_dataset("facebook", scale=config.scale, rng=config.seed)
    protocol = LFGDPRProtocol(epsilon=8.0)  # small budget -> the cap binds
    trials = max(2, bench_trials())

    def run():
        capped = _mean_gain(graph, protocol, DegreeMGA(), "degree_centrality", trials)
        unbounded = _mean_gain(
            graph,
            protocol,
            DegreeMGA(respect_budget=False),
            "degree_centrality",
            trials,
        )
        return capped, unbounded

    capped, unbounded = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_mga_cc",
        format_table(
            ["variant", "MGA gain"],
            [["budget-capped (paper)", capped], ["unbounded", unbounded]],
            title="Ablation — connection budget in degree MGA (eps=8)",
        ),
    )
    assert unbounded >= capped, "the cap trades gain for stealth"
