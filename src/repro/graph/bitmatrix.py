"""Bit-packed dense adjacency backend for near-dense perturbed graphs.

Randomized response at the paper's epsilon range flips 10-50% of all node
pairs, so every perturbed graph the estimators consume is effectively *dense*
— yet the estimation stack was built for sparse graphs: per-node triangle
counts via ``diag(A @ A @ A)`` on a scipy CSR matrix cost
``O(sum_i d_i^2) = O(theta^2 n^3)`` multiply-adds plus index churn.

:class:`BitMatrix` packs each adjacency row into uint64 words (64 pairs per
word).  Triangle counts become row-AND + popcount over a node's neighbour
rows — ``O(2 E n / 64) <= O(n^3 / 64)`` word operations — and degrees, edge
counts and intra-community edge counts are plain popcounts.  Every quantity
is an exact integer, so the packed path is **bit-identical** to the sparse
path: dispatching between them (``should_use_packed``) never changes a
result, which keeps every engine cache entry valid.

Dispatch knobs (both overridable per process):

* ``REPRO_DENSE_THRESHOLD`` — edge-density threshold above which metrics
  route through the packed backend (default ``0.05``).
* ``REPRO_DENSE_MAX_BYTES`` — upper bound on the packed matrix size; bigger
  graphs stay on the sparse path regardless of density (default 1 GiB).
"""

from __future__ import annotations

import os

import numpy as np

from repro.utils.sparse import pair_count

#: Edge density above which the packed backend beats sparse matmul.
DEFAULT_DENSITY_THRESHOLD = 0.05

#: Environment variable overriding :data:`DEFAULT_DENSITY_THRESHOLD`.
DENSITY_THRESHOLD_ENV = "REPRO_DENSE_THRESHOLD"

#: Default cap on packed-matrix memory (n^2/8 bytes): 1 GiB ~ 92k nodes.
DEFAULT_MAX_PACKED_BYTES = 1 << 30

#: Environment variable overriding :data:`DEFAULT_MAX_PACKED_BYTES`.
MAX_PACKED_BYTES_ENV = "REPRO_DENSE_MAX_BYTES"


def density_threshold() -> float:
    """The edge-density threshold for packed dispatch (env-overridable)."""
    return float(os.environ.get(DENSITY_THRESHOLD_ENV, DEFAULT_DENSITY_THRESHOLD))


def max_packed_bytes() -> int:
    """The packed-matrix memory cap in bytes (env-overridable)."""
    return int(os.environ.get(MAX_PACKED_BYTES_ENV, DEFAULT_MAX_PACKED_BYTES))


def should_use_packed(graph) -> bool:
    """Whether ``graph`` should route dense-friendly metrics through packing.

    True when the graph is dense enough for word-parallel popcounting to beat
    the sparse code paths and small enough for the n x ceil(n/64) uint64
    matrix to fit the memory cap.  Both backends are exact, so this predicate
    only affects speed, never results.
    """
    n = graph.num_nodes
    if n < 3:
        return False
    if n * n // 8 > max_packed_bytes():
        return False
    return graph.num_edges / pair_count(n) >= density_threshold()


_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")
#: Per-byte popcount table for numpy < 2.0 (no ``np.bitwise_count``).
_BYTE_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)

#: Word budget (32 MiB) for the transient gather/AND buffers of the masked
#: popcount passes, keeping peak memory bounded regardless of node degree.
_CHUNK_WORDS = 1 << 22


def _row_popcounts(words: np.ndarray) -> np.ndarray:
    """Total set bits along the last axis of a uint64 array."""
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    return _BYTE_POPCOUNT[words.view(np.uint8)].sum(axis=-1, dtype=np.int64)


def _masked_popcount_sum(matrix: np.ndarray, row_ids: np.ndarray, mask: np.ndarray) -> int:
    """``sum(popcount(matrix[i] & mask) for i in row_ids)``, chunked.

    The fancy-index gather and the AND result are matrix-row-sized
    temporaries; chunking ``row_ids`` keeps them a constant ~32 MiB apiece so
    peak memory stays within the ``REPRO_DENSE_MAX_BYTES`` promise instead of
    tripling it on high-degree nodes.
    """
    chunk = max(1, _CHUNK_WORDS // max(matrix.shape[1], 1))
    total = 0
    for start in range(0, row_ids.size, chunk):
        block = row_ids[start : start + chunk]
        total += int(_row_popcounts(matrix[block] & mask).sum())
    return total


class BitMatrix:
    """Symmetric 0/1 adjacency matrix with rows packed into uint64 words.

    Bit ``j`` of row ``i`` (word ``j >> 6``, position ``j & 63``) is 1 iff
    the undirected edge ``{i, j}`` exists.  The diagonal is always 0.

    >>> from repro.graph.adjacency import Graph
    >>> bm = BitMatrix.from_graph(Graph(4, [(0, 1), (1, 2), (2, 0)]))
    >>> bm.degrees().tolist()
    [2, 2, 2, 0]
    >>> bm.triangles_per_node().tolist()
    [1, 1, 1, 0]
    """

    __slots__ = ("num_nodes", "num_words", "rows")

    def __init__(self, num_nodes: int, rows: np.ndarray):
        self.num_nodes = int(num_nodes)
        self.num_words = (self.num_nodes + 63) >> 6
        if rows.shape != (self.num_nodes, self.num_words):
            raise ValueError(
                f"packed rows have shape {rows.shape}, expected "
                f"({self.num_nodes}, {self.num_words})"
            )
        self.rows = rows

    @classmethod
    def from_graph(cls, graph) -> "BitMatrix":
        """Pack a :class:`repro.graph.Graph` (O(E) plus the matrix zeroing)."""
        rows, cols = graph.edge_arrays()
        return cls.from_edge_arrays(graph.num_nodes, rows, cols)

    @classmethod
    def from_edge_arrays(cls, num_nodes: int, rows: np.ndarray, cols: np.ndarray) -> "BitMatrix":
        """Pack aligned edge arrays (duplicate-free, self-loop-free)."""
        n = int(num_nodes)
        words = (n + 63) >> 6
        if n == 0 or rows.size == 0:
            return cls(n, np.zeros((n, words), dtype=np.uint64))
        sym_rows = np.concatenate([rows, cols])
        sym_cols = np.concatenate([cols, rows])
        flat = sym_rows * words + (sym_cols >> 6)
        bit = sym_cols & 63
        # Each (row, bit) position appears at most once in a simple graph, so
        # summing per-word bit values is an exact OR.  bincount accumulates in
        # float64, hence the split into two 32-bit halves (every partial sum
        # stays < 2^32, exactly representable) — this is much faster than the
        # unbuffered np.bitwise_or.at ufunc for the near-dense edge sets here.
        matrix = np.zeros(n * words, dtype=np.uint64)
        low = bit < 32
        if low.any():
            weights = (1 << bit[low]).astype(np.float64)
            matrix |= np.bincount(flat[low], weights=weights, minlength=n * words).astype(
                np.uint64
            )
        high = ~low
        if high.any():
            weights = (1 << (bit[high] - 32)).astype(np.float64)
            matrix |= np.bincount(flat[high], weights=weights, minlength=n * words).astype(
                np.uint64
            ) << np.uint64(32)
        return cls(n, matrix.reshape(n, words))

    # ------------------------------------------------------------------
    # Exact integer counts
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Degree of every node (row popcounts)."""
        return _row_popcounts(self.rows)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.degrees().sum()) // 2

    def edge_density(self) -> float:
        """Fraction of node pairs that are edges."""
        pairs = pair_count(self.num_nodes)
        if pairs == 0:
            return 0.0
        return self.num_edges / pairs

    def triangles_per_node(self) -> np.ndarray:
        """Number of triangles incident to each node.

        For node ``i``, ``sum_{j in N(i)} |N(i) & N(j)|`` counts every
        incident triangle twice (once per far endpoint), so one row-AND +
        popcount pass over the neighbour rows and a halving yield the exact
        count: ``O(2 E ceil(n/64))`` word operations total.
        """
        n = self.num_nodes
        counts = np.zeros(n, dtype=np.int64)
        if n == 0:
            return counts
        matrix = self.rows
        # Endian-independent bit extraction: word >> position, mask 1.
        word_index = np.arange(n, dtype=np.int64) >> 6
        bit_shift = (np.arange(n, dtype=np.int64) & 63).astype(np.uint64)
        one = np.uint64(1)
        for node in range(n):
            row = matrix[node]
            present = (row[word_index] >> bit_shift) & one
            neighbors = np.nonzero(present)[0]
            if neighbors.size:
                counts[node] = _masked_popcount_sum(matrix, neighbors, row) // 2
        return counts

    def with_edits(
        self,
        add_rows: np.ndarray,
        add_cols: np.ndarray,
        drop_rows: np.ndarray,
        drop_cols: np.ndarray,
    ) -> "BitMatrix":
        """A new matrix with the given edges dropped and added (row patching).

        This is the packed counterpart of rebuilding the graph after an
        attack override: instead of re-packing all ``E`` edges, the before
        matrix's rows are copied once (a flat memcpy) and only the changed
        pairs — a ``~beta`` fraction under the paper's threat model — are
        toggled, in both orientations.  Dropping a missing edge or adding a
        present one is idempotent, but callers normally pass the *net*
        added/removed sets so the two never overlap.
        """
        rows = self.rows.copy()
        one = np.uint64(1)
        drop_rows = np.asarray(drop_rows, dtype=np.int64)
        add_rows = np.asarray(add_rows, dtype=np.int64)
        if drop_rows.size:
            sym_r = np.concatenate([drop_rows, np.asarray(drop_cols, dtype=np.int64)])
            sym_c = np.concatenate([np.asarray(drop_cols, dtype=np.int64), drop_rows])
            np.bitwise_and.at(
                rows, (sym_r, sym_c >> 6), ~(one << (sym_c & 63).astype(np.uint64))
            )
        if add_rows.size:
            sym_r = np.concatenate([add_rows, np.asarray(add_cols, dtype=np.int64)])
            sym_c = np.concatenate([np.asarray(add_cols, dtype=np.int64), add_rows])
            np.bitwise_or.at(
                rows, (sym_r, sym_c >> 6), one << (sym_c & 63).astype(np.uint64)
            )
        return BitMatrix(self.num_nodes, rows)

    def triangles_touching(self, nodes: np.ndarray) -> np.ndarray:
        """Per-node count of triangles with at least one vertex in ``nodes``.

        The building block of incremental before/after triangle counting:
        when two graphs differ only on pairs incident to ``nodes`` (the
        attacker-touched rows of a paired run), their full per-node triangle
        counts differ exactly by this quantity, so the delta costs
        ``O(sum_{s in nodes} deg(s) * ceil(n/64))`` words — a ``~2 beta``
        fraction of a full :meth:`triangles_per_node` pass.

        For ``u`` in ``nodes`` every incident triangle qualifies, so the
        count is the plain per-row triangle count.  For ``u`` outside, each
        touched neighbour ``s`` contributes ``|N(u) & N(s)|`` pairs where
        ``s`` itself is the touched vertex plus ``|N(u) & N(s) \\ nodes|``
        pairs where the third vertex is the touched one; summing and halving
        counts every qualifying triangle exactly once.
        """
        n = self.num_nodes
        counts = np.zeros(n, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        if n == 0 or nodes.size == 0:
            return counts
        one = np.uint64(1)
        mask = np.zeros(self.num_words, dtype=np.uint64)
        np.bitwise_or.at(mask, nodes >> 6, one << (nodes & 63).astype(np.uint64))
        word_index = np.arange(n, dtype=np.int64) >> 6
        bit_shift = (np.arange(n, dtype=np.int64) & 63).astype(np.uint64)
        # Ordered qualifying-pair counts for nodes outside the touched set.
        term = np.zeros(n, dtype=np.int64)
        chunk = max(1, _CHUNK_WORDS // max(self.num_words, 1))
        for node in nodes.tolist():
            row = self.rows[node]
            present = (row[word_index] >> bit_shift) & one
            neighbors = np.nonzero(present)[0]
            if not neighbors.size:
                continue
            own = 0
            for start in range(0, neighbors.size, chunk):
                block = neighbors[start : start + chunk]
                anded = self.rows[block] & row
                pop_full = _row_popcounts(anded)
                pop_touched = _row_popcounts(anded & mask)
                own += int(pop_full.sum())
                term[block] += 2 * pop_full - pop_touched
            counts[node] = own // 2
        outside = np.ones(n, dtype=bool)
        outside[nodes] = False
        counts[outside] = term[outside] // 2
        return counts

    def intra_community_edges(self, labels: np.ndarray, num_communities: int) -> np.ndarray:
        """Number of edges with both endpoints in each community.

        Exactly :func:`np.bincount` over same-label edges, computed as
        popcounts of member rows masked by the community's packed indicator —
        ``O(n ceil(n/64))`` words instead of touching every edge index.
        """
        labels = np.asarray(labels, dtype=np.int64)
        counts = np.zeros(num_communities, dtype=np.int64)
        one = np.uint64(1)
        for community in range(num_communities):
            members = np.flatnonzero(labels == community)
            if members.size < 2:
                continue
            mask = np.zeros(self.num_words, dtype=np.uint64)
            np.bitwise_or.at(
                mask, members >> 6, one << (members & 63).astype(np.uint64)
            )
            counts[community] = _masked_popcount_sum(self.rows, members, mask) // 2
        return counts

    def __repr__(self) -> str:
        return f"BitMatrix(num_nodes={self.num_nodes}, num_words={self.num_words})"
