"""Countermeasures against the poisoning attacks (§VII) and their baselines."""

from repro.defenses.apriori import apriori, count_contained_itemsets
from repro.defenses.base import (
    Defense,
    DetectionQuality,
    detection_quality,
    remove_flagged_pairs,
    resample_flagged_rows,
)
from repro.defenses.degree_consistency import DegreeConsistencyDefense
from repro.defenses.evaluation import DefendedOutcome, evaluate_defended_attack
from repro.defenses.frequency import (
    OUEAnomalyDefense,
    defended_estimate,
    normalize_frequencies,
)
from repro.defenses.frequent_itemset import FrequentItemsetDefense
from repro.defenses.hybrid import HybridDefense
from repro.defenses.naive import NaiveDegreeTailsDefense, NaiveTopDegreeDefense

__all__ = [
    "OUEAnomalyDefense",
    "defended_estimate",
    "normalize_frequencies",
    "HybridDefense",
    "apriori",
    "count_contained_itemsets",
    "Defense",
    "DetectionQuality",
    "detection_quality",
    "remove_flagged_pairs",
    "resample_flagged_rows",
    "DegreeConsistencyDefense",
    "DefendedOutcome",
    "evaluate_defended_attack",
    "FrequentItemsetDefense",
    "NaiveDegreeTailsDefense",
    "NaiveTopDegreeDefense",
]
