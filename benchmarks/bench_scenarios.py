"""Scenario-driven sweep benchmark (extension workloads).

Not a paper figure: this bench runs registered cross-product scenarios —
workloads the paper never measured — end to end through the declarative
scenario subsystem (spec -> compiled TrialTask batch -> engine), timing the
full pipeline and sanity-checking the aggregated curves.  It doubles as the
CI smoke test proving that a scenario outside the paper's fixed grid is one
registry lookup away.
"""

import numpy as np
import pytest
from conftest import bench_config, emit

from repro.scenarios import get_scenario, run_scenario


@pytest.mark.parametrize(
    "name",
    ["xprod/protocol-duel-mga", "xprod/defense-matrix-mga"],
)
def test_scenario_sweep(benchmark, name):
    spec = get_scenario(name)
    config = bench_config(spec.dataset)

    result = benchmark.pedantic(
        run_scenario, args=(spec, config), rounds=1, iterations=1
    )

    emit(f"scenario_{name.replace('/', '__')}", result.format())
    sweep = result.sweep()
    assert list(sweep.values) == list(spec.values)
    for series, curve in sweep.series.items():
        assert len(curve) == len(spec.values)
        assert all(np.isfinite(g) for g in curve), series


def test_scenario_compile_overhead(benchmark):
    """Compiling a spec to its task batch is negligible next to running it."""
    from repro.scenarios.compiler import compile_scenario
    from repro.scenarios.run import load_scenario_graph

    spec = get_scenario("fig12a")
    config = bench_config(spec.dataset)
    graph = load_scenario_graph(spec, config)

    tasks = benchmark(compile_scenario, spec, graph, config)
    assert len(tasks) == (2 + len(spec.values)) * config.trials
