"""Tracer isolation: every telemetry test starts and ends at NULL_TRACER.

The tracer is process-local state; a test that installs one and fails
before restoring it must not leak spans into its neighbours.
"""

from __future__ import annotations

import pytest

from repro.telemetry.core import NULL_TRACER, reset_env_activation, set_tracer


@pytest.fixture(autouse=True)
def _reset_tracer():
    set_tracer(NULL_TRACER)
    yield
    set_tracer(NULL_TRACER)
    reset_env_activation()
