"""Fig. 7 — impact of beta on attacks to degree centrality (Exp 2).

Expected shapes (paper): all three attacks grow with the fake-user fraction;
MGA > RVA > RNA throughout.
"""

import numpy as np
import pytest
from conftest import bench_config, emit

from repro.experiments.figures import fig7


@pytest.mark.parametrize("dataset", ["facebook", "enron", "astroph", "gplus"])
def test_fig7_degree_vs_beta(benchmark, dataset):
    config = bench_config(dataset)

    result = benchmark.pedantic(fig7, args=(dataset, config), rounds=1, iterations=1)

    emit("fig07_degree_vs_beta", result.format())
    mga = np.array(result.gains_of("MGA"))
    rva = np.array(result.gains_of("RVA"))
    rna = np.array(result.gains_of("RNA"))
    assert np.all(mga >= rva) and np.all(mga >= rna)
    # Positive correlation with beta: more fake users, more gain.
    assert mga[-1] > mga[0]
    assert rva[-1] > rva[0]
