"""Frequency oracles kRR, OUE and OLH.

These are the state-of-the-art LDP protocols for frequency estimation (Wang
et al., USENIX Security 2017) that Cao et al.'s poisoning attacks — which the
paper's graph attacks generalise — were designed against.  They serve two
roles in this repository: (i) substrate validation, because our graph MGA is
"MGA adapted for graphs", and (ii) a complete implementation of the related
attack family (``repro.core.frequency_attacks``).

All three oracles share one interface:

* ``perturb(values, rng)`` — client side; returns an array of *reports*.
* ``support_counts(reports)`` — server side; for each item, the number of
  reports that support it.
* ``estimate_frequencies(reports)`` — unbiased frequency estimates via the
  standard ``(count/n - q) / (p - q)`` calibration.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive

#: A large prime for the OLH affine hash family (fits comfortably in int64).
_OLH_PRIME = 2_147_483_647


class FrequencyOracle(abc.ABC):
    """Common interface of the three frequency oracles.

    Parameters
    ----------
    domain_size:
        Number of items; values are integers in ``[0, domain_size)``.
    epsilon:
        Privacy budget.
    """

    def __init__(self, domain_size: int, epsilon: float):
        check_positive(domain_size, "domain_size")
        check_positive(epsilon, "epsilon")
        if domain_size < 2:
            raise ValueError(f"domain_size must be at least 2, got {domain_size}")
        self.domain_size = int(domain_size)
        self.epsilon = float(epsilon)

    # -- client side ----------------------------------------------------
    @abc.abstractmethod
    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb one value per user; returns the reports array."""

    # -- server side ----------------------------------------------------
    @abc.abstractmethod
    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        """For each item, the number of reports supporting it."""

    @property
    @abc.abstractmethod
    def support_probability_true(self) -> float:
        """P[report supports item | user holds item] (``p`` in the literature)."""

    @property
    @abc.abstractmethod
    def support_probability_false(self) -> float:
        """P[report supports item | user does not hold it] (``q``)."""

    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased per-item frequency estimates from the reports."""
        num_users = self._num_reports(reports)
        if num_users == 0:
            raise ValueError("cannot estimate frequencies from zero reports")
        p = self.support_probability_true
        q = self.support_probability_false
        counts = self.support_counts(reports).astype(np.float64)
        return (counts / num_users - q) / (p - q)

    def _num_reports(self, reports: np.ndarray) -> int:
        return int(np.asarray(reports).shape[0])

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("values must be a 1-D array of item ids")
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise ValueError("value out of domain range")
        return values


class KRR(FrequencyOracle):
    """k-ary randomized response (a.k.a. generalized RR / direct encoding).

    Reports the true value with probability ``p = e^eps / (e^eps + d - 1)``
    and any specific other value with probability ``q = 1 / (e^eps + d - 1)``.
    Reports are plain item ids.
    """

    @property
    def support_probability_true(self) -> float:
        exp = math.exp(self.epsilon)
        return exp / (exp + self.domain_size - 1)

    @property
    def support_probability_false(self) -> float:
        exp = math.exp(self.epsilon)
        return 1.0 / (exp + self.domain_size - 1)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        values = self._check_values(values)
        generator = ensure_rng(rng)
        keep = generator.random(values.size) < self.support_probability_true
        # Draw a uniform *other* value by sampling [0, d-1) and skipping self.
        others = generator.integers(0, self.domain_size - 1, size=values.size)
        others = np.where(others >= values, others + 1, others)
        return np.where(keep, values, others).astype(np.int64)

    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        reports = self._check_values(np.asarray(reports, dtype=np.int64))
        return np.bincount(reports, minlength=self.domain_size)


class OUE(FrequencyOracle):
    """Optimized unary encoding.

    The value is one-hot encoded; 1-bits are kept with probability 1/2 and
    0-bits flipped to 1 with probability ``q = 1 / (e^eps + 1)``.  Reports are
    ``(num_users, domain_size)`` 0/1 matrices.
    """

    @property
    def support_probability_true(self) -> float:
        return 0.5

    @property
    def support_probability_false(self) -> float:
        return 1.0 / (math.exp(self.epsilon) + 1.0)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        values = self._check_values(values)
        generator = ensure_rng(rng)
        num_users = values.size
        draws = generator.random((num_users, self.domain_size))
        reports = (draws < self.support_probability_false).astype(np.uint8)
        held = draws[np.arange(num_users), values] < self.support_probability_true
        reports[np.arange(num_users), values] = held.astype(np.uint8)
        return reports

    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        reports = np.asarray(reports)
        if reports.ndim != 2 or reports.shape[1] != self.domain_size:
            raise ValueError("OUE reports must be (num_users, domain_size) matrices")
        return reports.sum(axis=0).astype(np.int64)


class OLH(FrequencyOracle):
    """Optimized local hashing.

    Each user draws a hash function from an affine family mapping items to
    ``g = round(e^eps) + 1`` buckets, then reports ``kRR(hash(value))`` over
    the bucket domain together with the hash seed.  Reports are
    ``(num_users, 3)`` int64 arrays of ``(a, b, y)``: hash coefficients and
    the perturbed bucket.
    """

    def __init__(self, domain_size: int, epsilon: float):
        super().__init__(domain_size, epsilon)
        self.num_buckets = int(round(math.exp(epsilon))) + 1

    @property
    def support_probability_true(self) -> float:
        exp = math.exp(self.epsilon)
        return exp / (exp + self.num_buckets - 1)

    @property
    def support_probability_false(self) -> float:
        return 1.0 / self.num_buckets

    def hash_items(self, a: np.ndarray, b: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Affine hash ``((a * item + b) mod P) mod g``, vectorised.

        ``a``/``b`` may be scalars or arrays broadcastable against ``items``.
        """
        return ((a * items + b) % _OLH_PRIME) % self.num_buckets

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        values = self._check_values(values)
        generator = ensure_rng(rng)
        num_users = values.size
        a = generator.integers(1, _OLH_PRIME, size=num_users, dtype=np.int64)
        b = generator.integers(0, _OLH_PRIME, size=num_users, dtype=np.int64)
        buckets = self.hash_items(a, b, values)
        keep = generator.random(num_users) < self.support_probability_true
        others = generator.integers(0, self.num_buckets - 1, size=num_users)
        others = np.where(others >= buckets, others + 1, others)
        reported = np.where(keep, buckets, others)
        return np.stack([a, b, reported], axis=1).astype(np.int64)

    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        reports = np.asarray(reports, dtype=np.int64)
        if reports.ndim != 2 or reports.shape[1] != 3:
            raise ValueError("OLH reports must be (num_users, 3) arrays of (a, b, y)")
        a = reports[:, 0:1]
        b = reports[:, 1:2]
        reported = reports[:, 2:3]
        items = np.arange(self.domain_size, dtype=np.int64)[None, :]
        supports = self.hash_items(a, b, items) == reported
        return supports.sum(axis=0).astype(np.int64)
