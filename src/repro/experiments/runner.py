"""Generic sweep runner shared by all figure drivers.

One experiment point = the mean overall gain of one attack over
``config.trials`` independent threat-model draws; a *sweep* varies one
parameter (epsilon, beta or gamma) while the rest stay at Table III
defaults, producing one series per attack — exactly the curves the paper's
figures plot.

Execution goes through :mod:`repro.engine`: the sweep is flattened into one
:class:`~repro.engine.tasks.TrialTask` per (value × attack × trial), answered
from the on-disk result cache where possible and executed serially or on a
process pool for the rest.  Because every task derives its own seed, the
resulting curves are identical whatever the executor, worker count or cache
state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.base import Attack
from repro.core.clustering_attacks import ClusteringMGA, ClusteringRNA, ClusteringRVA
from repro.core.degree_attacks import DegreeMGA, DegreeRNA, DegreeRVA
from repro.engine.executors import (
    CacheLike,
    Executor,
    cache_for,
    execute_task,
    run_tasks,
)
from repro.engine.session import EngineSession, session_scope
from repro.engine.registry import ATTACKS, PROTOCOLS
from repro.engine.tasks import (
    TrialTask,
    derive_trial_seed,
    graph_fingerprint,
    labels_fingerprint,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.graph.adjacency import Graph
from repro.protocols.base import GraphLDPProtocol
from repro.protocols.lfgdpr import LFGDPRProtocol

#: Parameters a sweep may vary.
SWEEPABLE = ("epsilon", "beta", "gamma")

#: Attack constructors in the paper's presentation order.
DEGREE_ATTACKS: Dict[str, Callable[[], Attack]] = {
    "RVA": DegreeRVA,
    "RNA": DegreeRNA,
    "MGA": DegreeMGA,
}
CLUSTERING_ATTACKS: Dict[str, Callable[[], Attack]] = {
    "RVA": ClusteringRVA,
    "RNA": ClusteringRNA,
    "MGA": ClusteringMGA,
}


def stderr_of(samples: Sequence[float]) -> float:
    """Standard error of the mean of one point's per-trial gains."""
    if len(samples) < 2:
        return 0.0
    return float(np.std(samples, ddof=1) / math.sqrt(len(samples)))


@dataclass
class SweepResult:
    """Gain curves of several attacks across one swept parameter.

    ``series`` holds the per-point means (what the paper's figures plot);
    ``stderr`` the matching standard errors of the mean and ``samples`` the
    raw per-trial gains each point was aggregated from.  ``stderr`` and
    ``samples`` may be empty for hand-built results.
    """

    figure: str
    dataset: str
    metric: str
    parameter: str
    values: Sequence[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    stderr: Dict[str, List[float]] = field(default_factory=dict)
    samples: Dict[str, List[List[float]]] = field(default_factory=dict)

    def format(self) -> str:
        """Render the sweep as the table the paper's figure plots.

        Series with standard errors get a ``±`` column right of their mean.
        """
        headers: List[str] = [self.parameter]
        for name in self.series:
            headers.append(name)
            if self.stderr.get(name):
                headers.append("±")
        rows = []
        for index, value in enumerate(self.values):
            row: List[float] = [value]
            for name in self.series:
                row.append(self.series[name][index])
                if self.stderr.get(name):
                    row.append(self.stderr[name][index])
            rows.append(row)
        title = f"{self.figure} — {self.dataset} — {self.metric}"
        return format_table(headers, rows, title=title)

    def gains_of(self, attack_name: str) -> List[float]:
        """Series of one attack; raises KeyError with context if absent."""
        if attack_name not in self.series:
            known = ", ".join(self.series)
            raise KeyError(f"no series {attack_name!r}; have: {known}")
        return self.series[attack_name]

    def stderr_of(self, attack_name: str) -> List[float]:
        """Standard errors of one attack's series (empty if not recorded)."""
        return self.stderr.get(attack_name, [])

    def add_point(self, name: str, gains: Sequence[float]) -> None:
        """Append one point (per-trial gains) to series ``name``."""
        gains = [float(g) for g in gains]
        self.series.setdefault(name, []).append(float(np.mean(gains)))
        self.stderr.setdefault(name, []).append(stderr_of(gains))
        self.samples.setdefault(name, []).append(gains)


def build_sweep_tasks(
    graph: Graph,
    dataset: str,
    metric: str,
    parameter: str,
    values: Sequence[float],
    config: ExperimentConfig,
    attack_names: Mapping[str, str],
    protocol_name: str,
    labels_key: str,
    figure: str,
) -> List[TrialTask]:
    """Flatten a sweep into its (value × attack × trial) task list.

    ``attack_names`` maps series names to registry keys.  The per-task seed
    key encodes every display coordinate, so each task owns an independent
    stream no matter how the batch is partitioned.
    """
    graph_key = graph_fingerprint(graph)
    tasks: List[TrialTask] = []
    for value in values:
        point = {
            "epsilon": config.epsilon,
            "beta": config.beta,
            "gamma": config.gamma,
            parameter: value,
        }
        for series, attack_name in attack_names.items():
            for trial in range(config.trials):
                # float() first: the key must not depend on whether `values`
                # came in as Python floats or numpy scalars (whose repr also
                # changed across numpy versions).
                seed = derive_trial_seed(
                    config.seed,
                    f"{figure}|{dataset}|{metric}|{series}|{parameter}={float(value)!r}|trial={trial}",
                )
                tasks.append(
                    TrialTask(
                        graph_key=graph_key,
                        metric=metric,
                        attack=attack_name,
                        protocol=protocol_name,
                        epsilon=point["epsilon"],
                        beta=point["beta"],
                        gamma=point["gamma"],
                        seed=seed,
                        labels_key=labels_key,
                        figure=figure,
                        series=series,
                        parameter=parameter,
                        value=float(value),
                        trial=trial,
                    )
                )
    return tasks


def run_attack_sweep(
    graph: Graph,
    dataset: str,
    metric: str,
    parameter: str,
    values: Sequence[float],
    config: ExperimentConfig,
    attacks: Optional[Mapping[str, Callable[[], Attack]]] = None,
    protocol_factory: Callable[[float], GraphLDPProtocol] = LFGDPRProtocol,
    labels: Optional[np.ndarray] = None,
    figure: str = "",
    executor: Optional[Executor] = None,
    cache: Optional[CacheLike] = None,
    session: Optional[EngineSession] = None,
) -> SweepResult:
    """Run one figure's sweep through the engine and return the gain curves.

    Parameters
    ----------
    parameter / values:
        Which of ``epsilon``/``beta``/``gamma`` varies and over which grid.
    attacks:
        Name -> constructor mapping; defaults to the degree attacks for
        ``degree_centrality`` and the clustering attacks otherwise.
    protocol_factory:
        Called with the (possibly swept) epsilon; lets Exp 9 swap in LDPGen.
    labels:
        Community labels, required when ``metric == "modularity"``.
    executor / cache / session:
        Execution backends.  The default runs the batch through an
        :class:`~repro.engine.session.EngineSession` sized by
        ``config.jobs`` with ``config.cache`` semantics (ephemeral, or the
        given ``session`` to share a pool/graph store across sweeps);
        passing ``executor`` drives the batch directly instead.  Components
        not present in the engine registries fall back to in-process serial
        execution without caching (same seeds, same results).
    """
    if parameter not in SWEEPABLE:
        raise ValueError(f"parameter must be one of {SWEEPABLE}, got {parameter!r}")
    if attacks is None:
        attacks = DEGREE_ATTACKS if metric == "degree_centrality" else CLUSTERING_ATTACKS

    attack_names = {series: ATTACKS.resolve(factory) for series, factory in attacks.items()}
    protocol_name = PROTOCOLS.resolve(protocol_factory)
    registered = protocol_name is not None and all(
        name is not None for name in attack_names.values()
    )

    tasks = build_sweep_tasks(
        graph, dataset, metric, parameter, values, config,
        {series: name or f"<unregistered:{series}>" for series, name in attack_names.items()},
        protocol_name or "<unregistered>",
        labels_fingerprint(labels),
        figure=figure,
    )
    if registered:
        if executor is not None:
            cache = cache if cache is not None else cache_for(config)
            gains = run_tasks(tasks, graph, labels=labels, executor=executor, cache=cache)
        else:
            with session_scope(config, session, cache) as (live_session, batch_cache):
                live_session.add_graph(graph, labels)
                gains = live_session.run(tasks, cache=batch_cache)
    else:
        factories = dict(attacks)
        gains = [
            execute_task(
                task, graph, labels,
                attack_factory=factories[task.series],
                protocol_factory=protocol_factory,
            )
            for task in tasks
        ]

    result = SweepResult(
        figure=figure, dataset=dataset, metric=metric,
        parameter=parameter, values=list(values),
    )
    by_point: Dict[tuple, List[float]] = {}
    for task, gain in zip(tasks, gains):
        by_point.setdefault((task.value, task.series), []).append(gain)
    for value in values:
        for series in attacks:
            result.add_point(series, by_point[(float(value), series)])
    return result
