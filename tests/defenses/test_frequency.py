"""Tests for the frequency-oracle countermeasures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequency_attacks import FrequencyMGA, evaluate_frequency_attack
from repro.defenses.frequency import (
    OUEAnomalyDefense,
    defended_estimate,
    normalize_frequencies,
)
from repro.ldp.frequency_oracles import KRR, OUE


class TestNormalizeFrequencies:
    def test_already_normalized(self):
        vector = np.array([0.25, 0.25, 0.5])
        assert np.allclose(normalize_frequencies(vector), vector)

    def test_negative_clipped(self):
        result = normalize_frequencies(np.array([0.7, 0.5, -0.2]))
        assert np.all(result >= 0)
        assert result.sum() == pytest.approx(1.0)
        assert result[2] == 0.0

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            normalize_frequencies(np.zeros((2, 2)))

    def test_degenerate_falls_back_to_uniform(self):
        result = normalize_frequencies(np.array([-5.0, -5.0]))
        assert np.allclose(result, [0.5, 0.5])

    @given(
        vector=st.lists(
            st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_projection_properties(self, vector):
        result = normalize_frequencies(np.array(vector))
        assert np.all(result >= -1e-12)
        assert result.sum() == pytest.approx(1.0, abs=1e-9)

    def test_projection_is_closest_point(self):
        # For a 2-d case the projection can be verified by grid search.
        point = np.array([0.9, 0.4])
        projected = normalize_frequencies(point)
        grid = np.linspace(0, 1, 1001)
        candidates = np.stack([grid, 1 - grid], axis=1)
        distances = np.linalg.norm(candidates - point, axis=1)
        best = candidates[distances.argmin()]
        assert np.allclose(projected, best, atol=1e-3)


class TestOUEAnomalyDefense:
    def test_honest_reports_pass(self):
        oracle = OUE(domain_size=64, epsilon=1.0)
        rng = np.random.default_rng(0)
        reports = oracle.perturb(rng.integers(0, 64, size=2_000), rng=rng)
        defense = OUEAnomalyDefense(z_threshold=4.0)
        assert defense.keep_mask(oracle, reports).mean() > 0.99

    def test_unpadded_mga_reports_rejected(self):
        oracle = OUE(domain_size=64, epsilon=1.0)
        crafted = FrequencyMGA(pad_oue_reports=False).craft(
            oracle, 100, np.array([1, 2]), rng=0
        )
        defense = OUEAnomalyDefense(z_threshold=3.0)
        assert defense.keep_mask(oracle, crafted).mean() < 0.05

    def test_padded_mga_reports_evade(self):
        """Cao et al.'s padding exists precisely to beat this check."""
        oracle = OUE(domain_size=64, epsilon=1.0)
        crafted = FrequencyMGA(pad_oue_reports=True).craft(
            oracle, 100, np.array([1, 2]), rng=0
        )
        defense = OUEAnomalyDefense(z_threshold=3.0)
        assert defense.keep_mask(oracle, crafted).mean() > 0.9

    def test_wrong_oracle_type(self):
        defense = OUEAnomalyDefense()
        with pytest.raises(TypeError, match="OUE"):
            defense.keep_mask(KRR(domain_size=4, epsilon=1.0), np.zeros((2, 4)))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            OUEAnomalyDefense(z_threshold=0.0)


class TestDefendedEstimate:
    def test_normalization_bounds_gain(self):
        """Normalized estimates sum to 1, so injected target mass must be
        taken from elsewhere - the attack's footprint shrinks."""
        oracle = KRR(domain_size=32, epsilon=1.0)
        rng = np.random.default_rng(0)
        values = rng.integers(0, 32, size=10_000)
        targets = np.array([30, 31])
        outcome = evaluate_frequency_attack(
            oracle, values, FrequencyMGA(), targets, num_fake=500, rng=0
        )
        raw_gain = outcome.total_gain

        genuine_reports = oracle.perturb(values, rng=np.random.default_rng(1))
        crafted = FrequencyMGA().craft(oracle, 500, targets, rng=2)
        attacked = np.concatenate([genuine_reports, crafted])
        defended = defended_estimate(oracle, attacked, normalize=True)
        clean = defended_estimate(oracle, genuine_reports, normalize=True)
        defended_gain = float((defended[targets] - clean[targets]).sum())
        assert defended_gain <= raw_gain + 1e-9

    def test_oue_filter_reduces_unpadded_attack(self):
        oracle = OUE(domain_size=32, epsilon=1.0)
        rng = np.random.default_rng(0)
        values = rng.integers(0, 32, size=5_000)
        targets = np.array([30])
        genuine = oracle.perturb(values, rng=rng)
        crafted = FrequencyMGA(pad_oue_reports=False).craft(oracle, 400, targets, rng=1)
        attacked = np.concatenate([genuine, crafted])

        undefended = oracle.estimate_frequencies(attacked)[30]
        defense = OUEAnomalyDefense()
        defended = defended_estimate(
            oracle, attacked, normalize=False, oue_defense=defense
        )[30]
        clean = oracle.estimate_frequencies(genuine)[30]
        assert abs(defended - clean) < abs(undefended - clean)
