"""Shared test configuration.

The execution engine's result cache defaults to a persistent directory
(``REPRO_CACHE_DIR`` or ``.repro_cache/`` under the cwd).  Tests must never
read results a previous — possibly different — version of the code wrote,
nor litter the working tree, so the whole session is pointed at a throwaway
cache directory.  Tests that exercise caching explicitly pass their own
``ResultCache(tmp_path)`` and are unaffected.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.cache import CACHE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Route the default engine cache into a per-session temp directory."""
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous
