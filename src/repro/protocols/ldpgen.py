"""The LDPGen protocol (Qin et al., CCS 2017), used in Exp 9.

LDPGen generates a *synthetic* decentralized social graph under edge LDP:

1. users are placed into ``k0`` random initial groups;
2. each user reports a Laplace-perturbed vector counting its neighbours in
   every group (half the budget);
3. the server clusters users by their noisy vectors (k-means) into ``k1``
   refined groups;
4. users report noisy neighbour counts toward the refined groups (the other
   half of the budget);
5. the server estimates inter-/intra-group connection probabilities and
   samples a synthetic graph (Chung–Lu / BTER style), on which all metrics
   are computed directly.

Fake-user overrides supply *claimed neighbour sets*; the protocol derives
the fake user's group-count vectors from the claims verbatim (no noise),
matching the threat model where fake users send arbitrary crafted data.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.graph.adjacency import Graph
from repro.graph.metrics import local_clustering_coefficients, modularity_from_labels
from repro.protocols.base import (
    CollectedReports,
    GraphLDPProtocol,
    Overrides,
    PairedCollection,
    require_replayable_seed,
)
from repro.utils.rng import RngLike, child_rng
from repro.utils.sparse import decode_pairs, pairs_between, sample_pairs_excluding
from repro.utils.validation import check_positive


def _group_count_vectors(graph: Graph, labels: np.ndarray, num_groups: int) -> np.ndarray:
    """Per-user organic neighbour counts toward each group."""
    n = graph.num_nodes
    vectors = np.zeros((n, num_groups), dtype=np.float64)
    rows, cols = graph.edge_arrays()
    np.add.at(vectors, (rows, labels[cols]), 1.0)
    np.add.at(vectors, (cols, labels[rows]), 1.0)
    return vectors


def _apply_vector_overrides(
    noisy: np.ndarray,
    labels: np.ndarray,
    num_groups: int,
    overrides: Overrides | None,
) -> np.ndarray:
    """Inject crafted rows: replace-mode rows verbatim, augment-mode added.

    Replace-mode fake users submit the exact group counts of their claimed
    neighbour set (no noise — crafted data is sent verbatim); augment-mode
    users keep their honest noisy row and add the counts of the extra edges.
    """
    if not overrides:
        return noisy
    result = noisy.copy()
    for node, report in overrides.items():
        claimed = report.claimed_neighbors
        claim_counts = (
            np.bincount(labels[claimed], minlength=num_groups).astype(np.float64)
            if claimed.size
            else np.zeros(num_groups, dtype=np.float64)
        )
        if report.augment:
            result[node] = result[node] + claim_counts
        else:
            result[node] = claim_counts
    return result


def _sample_bipartite_edges(
    group_a: np.ndarray, group_b: np.ndarray, count: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Sample ``count`` distinct cross-group pairs uniformly."""
    total = group_a.size * group_b.size
    if count >= total:
        return [(int(u), int(v)) for u in group_a for v in group_b]
    picked: np.ndarray = np.empty(0, dtype=np.int64)
    while picked.size < count:
        draws = rng.integers(0, total, size=int((count - picked.size) * 1.2) + 8)
        picked = np.unique(np.concatenate([picked, draws]))
    if picked.size > count:
        picked = rng.choice(picked, size=count, replace=False)
    a_index = picked // group_b.size
    b_index = picked % group_b.size
    return list(zip(group_a[a_index].tolist(), group_b[b_index].tolist()))


class _LDPGenSharedState:
    """The honest (override-independent) randomness of one LDPGen round.

    Everything here is a pure function of ``(graph, seed)``: the initial
    grouping, the organic phase-1 vectors, both Laplace noise matrices and
    the k-means seed.  Phase-2 noise can be pre-drawn because its shape
    ``(n, clusters)`` does not depend on overrides; each stream is an
    independent named child of the seed, so drawing it here rather than
    mid-pipeline yields identical values.
    """

    __slots__ = (
        "graph", "seed", "initial_labels", "noisy1", "clusters",
        "kmeans_seed", "phase2_noise",
    )

    def __init__(self, protocol: "LDPGenProtocol", graph: Graph, rng: RngLike):
        n = graph.num_nodes
        noise_scale = 1.0 / protocol.phase_epsilon
        self.graph = graph
        self.seed = rng
        group_rng = child_rng(rng, "ldpgen-grouping")
        self.initial_labels = group_rng.integers(0, protocol.initial_groups, size=n)
        vectors1 = _group_count_vectors(graph, self.initial_labels, protocol.initial_groups)
        phase1_rng = child_rng(rng, "ldpgen-phase1")
        self.noisy1 = vectors1 + phase1_rng.laplace(0.0, noise_scale, size=vectors1.shape)
        self.clusters = min(protocol.refined_groups, max(1, n))
        self.kmeans_seed = int(child_rng(rng, "ldpgen-kmeans").integers(2**31))
        phase2_rng = child_rng(rng, "ldpgen-phase2")
        self.phase2_noise = phase2_rng.laplace(0.0, noise_scale, size=(n, self.clusters))


class _LDPGenPairedCollection(PairedCollection):
    """Paired LDPGen views sharing one :class:`_LDPGenSharedState`."""

    def __init__(self, protocol: "LDPGenProtocol", graph: Graph, rng: RngLike):
        self._protocol = protocol
        self._state = _LDPGenSharedState(protocol, graph, require_replayable_seed(rng))
        self._before = protocol._collect_from_state(self._state, None)

    @property
    def before(self) -> CollectedReports:
        return self._before

    def after(self, overrides: Overrides | None) -> CollectedReports:
        if not overrides:
            return self._before
        return self._protocol._collect_from_state(self._state, overrides)


class LDPGenProtocol(GraphLDPProtocol):
    """LDPGen with configurable group counts.

    Parameters
    ----------
    epsilon:
        Total privacy budget; split evenly across the two reporting phases.
    initial_groups:
        ``k0`` — number of random groups in phase 1 (the original paper
        uses 2).
    refined_groups:
        ``k1`` — number of k-means clusters for phase 2.  LDPGen derives an
        optimal value from the noisy degrees; a fixed, tunable count keeps
        the reproduction deterministic and exercises the same code path.
    """

    def __init__(self, epsilon: float, initial_groups: int = 2, refined_groups: int = 8):
        check_positive(epsilon, "epsilon")
        check_positive(initial_groups, "initial_groups")
        check_positive(refined_groups, "refined_groups")
        self.epsilon = float(epsilon)
        self.initial_groups = int(initial_groups)
        self.refined_groups = int(refined_groups)

    @property
    def phase_epsilon(self) -> float:
        """Budget per reporting phase (sequential composition over 2 phases)."""
        return self.epsilon / 2.0

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(
        self, graph: Graph, rng: RngLike, overrides: Overrides | None = None
    ) -> CollectedReports:
        """Run the two-phase pipeline and return the synthetic graph.

        ``perturbed_graph`` in the returned reports *is* the synthetic graph;
        ``reported_degrees`` are the users' total noisy neighbour counts from
        phase 2 (the degree information the server actually holds).
        """
        return self._collect_from_state(_LDPGenSharedState(self, graph, rng), overrides)

    def collect_paired(self, graph: Graph, rng: RngLike) -> PairedCollection:
        """One draw of the honest randomness shared across before/after views.

        LDPGen's honest randomness — initial grouping, both Laplace noise
        matrices, the k-means seed — is a pure function of the seed, so the
        paired run draws it once.  The downstream pipeline (k-means on the
        overridden phase-1 vectors, phase-2 counting, synthetic generation)
        still reruns per view, because overrides can re-cluster users and
        thereby change the synthetic graph globally: after-views are
        therefore *not* localisable and carry no incremental baseline.
        """
        return _LDPGenPairedCollection(self, graph, rng)

    def _collect_from_state(
        self, state: "_LDPGenSharedState", overrides: Overrides | None
    ) -> CollectedReports:
        """The override-dependent tail of the pipeline, given shared state."""
        clusters = state.clusters
        noisy1 = _apply_vector_overrides(
            state.noisy1, state.initial_labels, self.initial_groups, overrides
        )
        _, refined_labels = kmeans2(
            noisy1, clusters, minit="points", seed=state.kmeans_seed
        )
        refined_labels = refined_labels.astype(np.int64)

        vectors2 = _group_count_vectors(state.graph, refined_labels, clusters)
        noisy2 = vectors2 + state.phase2_noise
        noisy2 = _apply_vector_overrides(noisy2, refined_labels, clusters, overrides)

        synthetic = self._generate(
            noisy2, refined_labels, clusters, child_rng(state.seed, "ldpgen-generate")
        )
        overridden = (
            np.sort(np.fromiter(overrides.keys(), dtype=np.int64))
            if overrides
            else np.empty(0, dtype=np.int64)
        )
        return CollectedReports(
            perturbed_graph=synthetic,
            reported_degrees=np.maximum(noisy2.sum(axis=1), 0.0),
            adjacency_epsilon=self.phase_epsilon,
            degree_epsilon=self.phase_epsilon,
            overridden=overridden,
        )

    def _generate(
        self,
        noisy_vectors: np.ndarray,
        labels: np.ndarray,
        clusters: int,
        rng: np.random.Generator,
    ) -> Graph:
        """Sample the synthetic graph from estimated group connectivity.

        The per-group-pair capacities and edge probabilities are computed as
        whole ``clusters x clusters`` matrices with NumPy index arithmetic;
        only the actual edge sampling loops over group pairs (it must, to
        keep the RNG draw order — and therefore the sampled graph — exactly
        the same as a pairwise scalar implementation).
        """
        n = noisy_vectors.shape[0]
        members = [np.flatnonzero(labels == g) for g in range(clusters)]
        sizes = np.array([group.size for group in members], dtype=np.int64)

        # Directed claim mass from group g toward group h.
        claims = np.zeros((clusters, clusters), dtype=np.float64)
        for g in range(clusters):
            if members[g].size:
                claims[g] = noisy_vectors[members[g]].sum(axis=0)

        # Pair capacity per group pair: C(size, 2) on the diagonal (intra),
        # size_g * size_h off it (cross).
        capacity = pairs_between(sizes[:, None], sizes[None, :])
        np.fill_diagonal(capacity, sizes * (sizes - 1) // 2)
        # Estimated edge count per pair: every edge is claimed from both
        # endpoints, so cross mass is the two directed claims averaged and
        # intra mass is the group's self-claim halved.
        estimated = (claims + claims.T) / 2.0
        np.fill_diagonal(estimated, np.diag(claims) / 2.0)
        estimated = np.maximum(estimated, 0.0)
        probability = np.zeros_like(estimated)
        np.divide(estimated, capacity, out=probability, where=capacity > 0)
        probability = np.minimum(1.0, probability)

        edges: list[tuple[int, int]] = []
        for g in range(clusters):
            if capacity[g, g] > 0:
                count = int(rng.binomial(capacity[g, g], probability[g, g]))
                if count:
                    codes = sample_pairs_excluding(
                        members[g].size, count, np.empty(0, dtype=np.int64), rng
                    )
                    local_rows, local_cols = decode_pairs(codes, members[g].size)
                    edges.extend(
                        zip(
                            members[g][local_rows].tolist(),
                            members[g][local_cols].tolist(),
                        )
                    )
            for h in range(g + 1, clusters):
                if capacity[g, h] == 0:
                    continue
                count = int(rng.binomial(capacity[g, h], probability[g, h]))
                if count:
                    edges.extend(
                        _sample_bipartite_edges(members[g], members[h], count, rng)
                    )
        return Graph(n, edges)

    # ------------------------------------------------------------------
    # Estimation — metrics read directly off the synthetic graph
    # ------------------------------------------------------------------
    def estimate_degree_centrality(self, reports: CollectedReports) -> np.ndarray:
        """Degree centrality of each user in the synthetic graph."""
        n = reports.num_nodes
        if n <= 1:
            return np.zeros(n, dtype=np.float64)
        return reports.perturbed_graph.degrees().astype(np.float64) / (n - 1)

    def estimate_clustering_coefficient(self, reports: CollectedReports) -> np.ndarray:
        """Exact local clustering coefficients of the synthetic graph."""
        return local_clustering_coefficients(reports.perturbed_graph)

    def estimate_modularity(self, reports: CollectedReports, labels: np.ndarray) -> float:
        """Exact modularity of the synthetic graph under ``labels``."""
        return modularity_from_labels(reports.perturbed_graph, np.asarray(labels, dtype=np.int64))
