"""Shared benchmark configuration.

Every bench regenerates one table/figure of the paper on laptop-scale
surrogates and both prints the resulting series (run pytest with ``-s`` to
see them inline) and writes them to ``benchmarks/results/<name>.txt``.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiplier on the per-dataset bench scales
  (default 1.0; raise toward the dataset defaults for slower, larger runs).
* ``REPRO_BENCH_TRIALS`` — threat-model draws per data point (default 2).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig

#: Per-dataset scales that put every surrogate at roughly 700-900 nodes so a
#: full benchmark run finishes in minutes.  Multiplied by REPRO_BENCH_SCALE.
BENCH_SCALES = {
    "facebook": 0.20,
    "enron": 0.022,
    "astroph": 0.042,
    "gplus": 0.0078,
}

RESULTS_DIR = Path(__file__).parent / "results"


def bench_trials() -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", "2"))


def bench_config(dataset: str, **overrides) -> ExperimentConfig:
    """Benchmark-sized experiment config for one dataset."""
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    scale = min(1.0, BENCH_SCALES[dataset] * multiplier)
    params = dict(trials=bench_trials(), seed=0, scale=scale)
    params.update(overrides)
    return ExperimentConfig(**params)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def fresh_results_dir():
    """Start each benchmark session with empty result files."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for stale in RESULTS_DIR.glob("*.txt"):
        stale.unlink()
    yield
