"""Tests for the trial-stacked bit-plane tensor behind the batched kernels.

Every batched quantity must be an *exact integer* equal to what the
per-trial :class:`~repro.graph.bitmatrix.BitMatrix` computes plane by plane
(and what networkx computes from scratch) — the engine's batched execution
path substitutes these kernels for the scalar ones without a cache-version
bump, so any discrepancy would silently corrupt recorded results.
"""

import networkx as nx
import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import BitMatrix, accumulate_bits, bit_index_arrays
from repro.graph.bittensor import BitTensor
from repro.graph import native


def random_graphs(n, trials, density, seed):
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(trials):
        mask = np.triu(rng.random((n, n)) < density, 1)
        rows, cols = np.nonzero(mask)
        graphs.append(Graph(n, list(zip(rows.tolist(), cols.tolist()))))
    return graphs


def nx_triangles(graph):
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.num_nodes))
    nx_graph.add_edges_from(graph.edges())
    return np.array(
        [nx.triangles(nx_graph, node) for node in range(graph.num_nodes)],
        dtype=np.int64,
    )


@pytest.mark.parametrize("trials", [1, 2, 7])
@pytest.mark.parametrize("n", [0, 1, 2, 64, 65])
def test_matches_per_plane_bitmatrix_and_networkx(trials, n):
    for density in (0.0, 0.1, 0.5, 0.9):
        graphs = random_graphs(n, trials, density, seed=n * 31 + trials)
        tensor = BitTensor.from_graphs(graphs)
        assert tensor.num_trials == trials
        assert tensor.num_nodes == n
        degrees = tensor.degrees()
        triangles = tensor.triangles_per_node()
        assert degrees.shape == (trials, n)
        assert triangles.shape == (trials, n)
        for trial, graph in enumerate(graphs):
            plane = BitMatrix.from_graph(graph)
            assert np.array_equal(degrees[trial], plane.degrees())
            assert np.array_equal(triangles[trial], plane.triangles_per_node())
            if n:
                assert np.array_equal(triangles[trial], nx_triangles(graph))


def test_triangles_without_stored_edges_rederives_from_planes():
    graphs = random_graphs(65, 3, 0.4, seed=5)
    packed = BitTensor.from_graphs(graphs)
    bare = BitTensor(65, packed.planes.copy())
    assert np.array_equal(bare.triangles_per_node(), packed.triangles_per_node())


def test_trial_edges_stored_and_derived_agree():
    graphs = random_graphs(70, 2, 0.3, seed=9)
    packed = BitTensor.from_graphs(graphs)
    bare = BitTensor(70, packed.planes.copy())
    for trial, graph in enumerate(graphs):
        rows, cols = packed.trial_edges(trial)
        drows, dcols = bare.trial_edges(trial)
        grows, gcols = graph.edge_arrays()
        assert np.array_equal(np.sort(rows), np.sort(drows))
        assert np.array_equal(rows, grows) and np.array_equal(cols, gcols)
        assert np.array_equal(np.sort(cols), np.sort(dcols))


def test_edge_endpoints_roundtrip():
    (graph,) = random_graphs(130, 1, 0.25, seed=3)
    plane = BitMatrix.from_graph(graph)
    rows, cols = plane.edge_endpoints()
    expected_rows, expected_cols = graph.edge_arrays()
    order = np.lexsort((cols, rows))
    expected_order = np.lexsort((expected_cols, expected_rows))
    assert np.array_equal(rows[order], expected_rows[expected_order])
    assert np.array_equal(cols[order], expected_cols[expected_order])


def test_plane_views_are_zero_copy():
    graphs = random_graphs(64, 2, 0.3, seed=1)
    tensor = BitTensor.from_graphs(graphs)
    view = tensor.plane(1)
    assert isinstance(view, BitMatrix)
    assert view.rows.base is tensor.planes or np.shares_memory(
        view.rows, tensor.planes
    )
    assert np.array_equal(view.degrees(), tensor.degrees()[1])


def test_intra_community_edges_matches_per_plane():
    graphs = random_graphs(90, 3, 0.4, seed=11)
    tensor = BitTensor.from_graphs(graphs)
    labels = np.arange(90, dtype=np.int64) % 4
    batched = tensor.intra_community_edges(labels, 4)
    assert batched.shape == (3, 4)
    for trial, graph in enumerate(graphs):
        rows, cols = graph.edge_arrays()
        same = labels[rows] == labels[cols]
        expected = np.bincount(labels[rows[same]], minlength=4)
        assert np.array_equal(batched[trial], expected)


def test_with_edits_matches_per_plane_bitmatrix():
    graphs = random_graphs(80, 3, 0.3, seed=21)
    tensor = BitTensor.from_graphs(graphs)
    rng = np.random.default_rng(4)
    edits = []
    expected = []
    for trial, graph in enumerate(graphs):
        if trial == 1:
            edits.append(None)
            expected.append(BitMatrix.from_graph(graph))
            continue
        rows, cols = graph.edge_arrays()
        drop = rng.choice(rows.size, size=min(5, rows.size), replace=False)
        drop_rows, drop_cols = rows[drop], cols[drop]
        add_rows = np.array([0, 2, 4], dtype=np.int64)
        add_cols = np.array([79, 77, 75], dtype=np.int64)
        present = set(zip(rows.tolist(), cols.tolist()))
        keep = [
            (r, c)
            for r, c in zip(add_rows.tolist(), add_cols.tolist())
            if (min(r, c), max(r, c)) not in present
        ]
        add_rows = np.array([r for r, _ in keep], dtype=np.int64)
        add_cols = np.array([c for _, c in keep], dtype=np.int64)
        edits.append((add_rows, add_cols, drop_rows, drop_cols))
        expected.append(
            BitMatrix.from_graph(graph).with_edits(
                add_rows, add_cols, drop_rows, drop_cols
            )
        )
    edited = tensor.with_edits(edits)
    for trial in range(3):
        assert np.array_equal(edited.planes[trial], expected[trial].rows)
    # the original tensor is untouched
    for trial, graph in enumerate(graphs):
        assert np.array_equal(tensor.planes[trial], BitMatrix.from_graph(graph).rows)


def test_with_edits_validates_length():
    tensor = BitTensor.from_graphs(random_graphs(10, 2, 0.3, seed=2))
    with pytest.raises(ValueError, match="edit sets"):
        tensor.with_edits([None])


def test_from_graphs_validates_node_counts():
    with pytest.raises(ValueError, match="share one node count"):
        BitTensor.from_graphs([Graph(3), Graph(4)])
    with pytest.raises(ValueError, match="at least one graph"):
        BitTensor.from_graphs([])


def test_shape_and_edges_validated():
    with pytest.raises(ValueError, match="expected"):
        BitTensor(4, np.zeros((2, 3), dtype=np.uint64))
    with pytest.raises(ValueError, match="edge lists"):
        BitTensor(4, np.zeros((2, 4, 1), dtype=np.uint64), edges=[None])


def test_repr():
    tensor = BitTensor.from_graphs([Graph(4, [(0, 1)])])
    assert "num_trials=1" in repr(tensor)


class TestAccumulateBits:
    def test_matches_bitwise_or_reference(self):
        rng = np.random.default_rng(0)
        size = 50
        positions = rng.permutation(np.repeat(np.arange(size), 3))[:90]
        # make (position, bit) pairs unique
        seen = set()
        keep_positions, keep_bits = [], []
        for position in positions.tolist():
            for bit in rng.integers(0, 64, size=4).tolist():
                if (position, bit) not in seen:
                    seen.add((position, bit))
                    keep_positions.append(position)
                    keep_bits.append(bit)
        positions = np.array(keep_positions, dtype=np.int64)
        bits = np.array(keep_bits, dtype=np.int64)
        reference = np.zeros(size, dtype=np.uint64)
        np.bitwise_or.at(reference, positions, np.uint64(1) << bits.astype(np.uint64))
        assert np.array_equal(accumulate_bits(positions, bits, size), reference)

    def test_empty(self):
        out = accumulate_bits(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 4
        )
        assert np.array_equal(out, np.zeros(4, dtype=np.uint64))


class TestBitIndexCache:
    def test_cached_and_read_only(self):
        first = bit_index_arrays(100)
        second = bit_index_arrays(100)
        assert first[0] is second[0] and first[1] is second[1]
        assert not first[0].flags.writeable
        assert not first[1].flags.writeable
        word_index, bit_shift = first
        assert word_index.tolist() == [j >> 6 for j in range(100)]
        assert bit_shift.tolist() == [j & 63 for j in range(100)]


class TestNativeGating:
    def test_mode_validation(self, monkeypatch):
        monkeypatch.setenv(native.KERNELS_ENV, "nonsense")
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            native.kernels_mode()

    def test_numpy_mode_disables_kernel(self, monkeypatch):
        monkeypatch.setenv(native.KERNELS_ENV, "numpy")
        assert native.triangle_kernel() is None

    def test_numba_mode_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setenv(native.KERNELS_ENV, "numba")
        if native.numba_available():
            assert native.triangle_kernel() is not None
        else:
            with pytest.raises(RuntimeError, match="numba"):
                native.use_numba()

    def test_auto_mode_never_raises(self, monkeypatch):
        monkeypatch.setenv(native.KERNELS_ENV, "auto")
        kernel = native.triangle_kernel()
        assert kernel is None or callable(kernel)
