"""Tests for the LDPGen protocol."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.metrics import average_degree
from repro.protocols.base import FakeReport
from repro.protocols.ldpgen import LDPGenProtocol, _sample_bipartite_edges


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(250, 5, 0.6, rng=0)


class TestSampleBipartiteEdges:
    def test_count_and_distinctness(self):
        rng = np.random.default_rng(0)
        group_a = np.array([0, 1, 2])
        group_b = np.array([10, 11, 12, 13])
        edges = _sample_bipartite_edges(group_a, group_b, 5, rng)
        assert len(edges) == 5
        assert len(set(edges)) == 5
        for u, v in edges:
            assert u in group_a and v in group_b

    def test_saturation_returns_all(self):
        rng = np.random.default_rng(1)
        edges = _sample_bipartite_edges(np.array([0, 1]), np.array([2, 3]), 100, rng)
        assert sorted(edges) == [(0, 2), (0, 3), (1, 2), (1, 3)]


class TestCollection:
    def test_synthetic_graph_size(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        assert reports.perturbed_graph.num_nodes == graph.num_nodes

    def test_deterministic(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        a = protocol.collect(graph, rng=5)
        b = protocol.collect(graph, rng=5)
        assert a.perturbed_graph == b.perturbed_graph
        assert np.array_equal(a.reported_degrees, b.reported_degrees)

    def test_synthetic_density_tracks_original(self, graph):
        protocol = LDPGenProtocol(epsilon=8.0)
        densities = [
            average_degree(protocol.collect(graph, rng=seed).perturbed_graph)
            for seed in range(5)
        ]
        assert np.mean(densities) == pytest.approx(average_degree(graph), rel=0.35)

    def test_phase_epsilon_split(self):
        protocol = LDPGenProtocol(epsilon=4.0)
        assert protocol.phase_epsilon == pytest.approx(2.0)

    def test_overrides_recorded_and_used(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        overrides = {
            3: FakeReport(claimed_neighbors=np.arange(10, 40), reported_degree=30.0)
        }
        reports = protocol.collect(graph, rng=0, overrides=overrides)
        assert reports.overridden.tolist() == [3]
        clean = protocol.collect(graph, rng=0)
        # A fake user claiming 30 edges must change the synthetic graph.
        assert reports.perturbed_graph != clean.perturbed_graph

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LDPGenProtocol(epsilon=0.0)
        with pytest.raises(ValueError):
            LDPGenProtocol(epsilon=1.0, initial_groups=0)


class TestEstimation:
    def test_degree_centrality_shape_and_range(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        centrality = protocol.estimate_degree_centrality(reports)
        assert centrality.shape == (graph.num_nodes,)
        assert np.all(centrality >= 0) and np.all(centrality <= 1)

    def test_clustering_in_unit_interval(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        estimates = protocol.estimate_clustering_coefficient(reports)
        assert np.all((estimates >= 0) & (estimates <= 1))

    def test_modularity_finite(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        labels = (np.arange(graph.num_nodes) // 50).astype(np.int64)
        value = protocol.estimate_modularity(reports, labels)
        assert -1.0 <= value <= 1.0
