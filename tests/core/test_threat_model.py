"""Tests for the threat model and attacker knowledge."""

import numpy as np
import pytest

from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.graph.adjacency import Graph
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.metrics import average_degree
from repro.ldp.perturbation import expected_perturbed_degree
from repro.protocols.ldpgen import LDPGenProtocol
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(400, 5, 0.5, rng=0)


class TestThreatModel:
    def test_sample_sizes(self, graph):
        threat = ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)
        assert threat.num_fake == round(0.05 * 400)
        assert threat.num_targets == round(0.05 * 400)
        assert threat.num_nodes == 400

    def test_disjoint(self, graph):
        threat = ThreatModel.sample(graph, beta=0.1, gamma=0.1, rng=1)
        assert np.intersect1d(threat.fake_users, threat.targets).size == 0

    def test_minimum_one_each(self, graph):
        threat = ThreatModel.sample(graph, beta=0.001, gamma=0.001, rng=0)
        assert threat.num_fake == 1
        assert threat.num_targets == 1

    def test_deterministic(self, graph):
        a = ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=7)
        b = ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=7)
        assert np.array_equal(a.fake_users, b.fake_users)
        assert np.array_equal(a.targets, b.targets)

    def test_fractions(self, graph):
        threat = ThreatModel.sample(graph, beta=0.05, gamma=0.1, rng=0)
        assert threat.beta == pytest.approx(0.05, abs=0.01)
        assert threat.gamma == pytest.approx(0.1, abs=0.01)

    def test_explicit_construction_sorted(self):
        threat = ThreatModel(fake_users=[5, 2], targets=[9, 1], num_nodes=10)
        assert threat.fake_users.tolist() == [2, 5]
        assert threat.targets.tolist() == [1, 9]

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="disjoint"):
            ThreatModel(fake_users=[1, 2], targets=[2, 3], num_nodes=10)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="fake user"):
            ThreatModel(fake_users=[], targets=[1], num_nodes=10)
        with pytest.raises(ValueError, match="target"):
            ThreatModel(fake_users=[1], targets=[], num_nodes=10)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            ThreatModel(fake_users=[10], targets=[1], num_nodes=10)

    def test_rejects_bad_fractions(self, graph):
        with pytest.raises(ValueError):
            ThreatModel.sample(graph, beta=0.0, gamma=0.05)
        with pytest.raises(ValueError):
            ThreatModel.sample(graph, beta=0.05, gamma=1.0)

    def test_rejects_overfull(self):
        tiny = Graph(4, [(0, 1)])
        with pytest.raises(ValueError, match="no room"):
            ThreatModel.sample(tiny, beta=0.7, gamma=0.7, rng=0)


class TestAttackerKnowledge:
    def test_from_lfgdpr(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        knowledge = AttackerKnowledge.from_protocol(protocol, graph)
        assert knowledge.adjacency_epsilon == pytest.approx(2.0)
        assert knowledge.degree_epsilon == pytest.approx(2.0)
        assert knowledge.num_nodes == graph.num_nodes
        assert knowledge.average_degree == pytest.approx(average_degree(graph))

    def test_from_ldpgen(self, graph):
        protocol = LDPGenProtocol(epsilon=4.0)
        knowledge = AttackerKnowledge.from_protocol(protocol, graph)
        assert knowledge.adjacency_epsilon == pytest.approx(2.0)

    def test_unknown_protocol_rejected(self, graph):
        with pytest.raises(TypeError, match="attacker knowledge"):
            AttackerKnowledge.from_protocol(object(), graph)

    def test_perturbed_average_degree(self, graph):
        knowledge = AttackerKnowledge(
            num_nodes=graph.num_nodes,
            adjacency_epsilon=2.0,
            degree_epsilon=2.0,
            average_degree=average_degree(graph),
        )
        expected = expected_perturbed_degree(
            average_degree(graph), graph.num_nodes, 2.0
        )
        assert knowledge.perturbed_average_degree == pytest.approx(expected)

    def test_connection_budget_floor_and_minimum(self, graph):
        knowledge = AttackerKnowledge(
            num_nodes=graph.num_nodes,
            adjacency_epsilon=2.0,
            degree_epsilon=2.0,
            average_degree=average_degree(graph),
        )
        assert knowledge.connection_budget == int(knowledge.perturbed_average_degree)
        tiny = AttackerKnowledge(
            num_nodes=10, adjacency_epsilon=50.0, degree_epsilon=1.0, average_degree=0.1
        )
        assert tiny.connection_budget == 1

    def test_budget_decreases_with_epsilon(self, graph):
        budgets = [
            AttackerKnowledge.from_protocol(LFGDPRProtocol(epsilon=eps), graph).connection_budget
            for eps in (1, 2, 4, 8)
        ]
        assert budgets == sorted(budgets, reverse=True)

    def test_degree_domain(self):
        knowledge = AttackerKnowledge(
            num_nodes=50, adjacency_epsilon=1.0, degree_epsilon=1.0, average_degree=5.0
        )
        assert knowledge.degree_domain == 50
