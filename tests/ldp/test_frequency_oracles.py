"""Tests for the kRR / OUE / OLH frequency oracles."""

import math

import numpy as np
import pytest

from repro.ldp.frequency_oracles import KRR, OLH, OUE


def make_values(rng, domain_size, num_users, skew_item=0, skew_fraction=0.3):
    """Synthetic user values with one heavy item."""
    values = rng.integers(0, domain_size, size=num_users)
    heavy = rng.random(num_users) < skew_fraction
    values[heavy] = skew_item
    return values


@pytest.fixture(params=[KRR, OUE, OLH], ids=["krr", "oue", "olh"])
def oracle(request):
    return request.param(domain_size=20, epsilon=2.0)


class TestCommonInterface:
    def test_estimates_sum_near_one(self, oracle):
        rng = np.random.default_rng(0)
        values = make_values(rng, 20, 20_000)
        reports = oracle.perturb(values, rng=rng)
        estimates = oracle.estimate_frequencies(reports)
        assert estimates.sum() == pytest.approx(1.0, abs=0.1)

    def test_heavy_item_recovered(self, oracle):
        rng = np.random.default_rng(1)
        values = make_values(rng, 20, 20_000, skew_item=7, skew_fraction=0.4)
        true_freq = np.bincount(values, minlength=20) / values.size
        reports = oracle.perturb(values, rng=rng)
        estimates = oracle.estimate_frequencies(reports)
        assert np.argmax(estimates) == 7
        assert estimates[7] == pytest.approx(true_freq[7], abs=0.05)

    def test_unbiasedness(self, oracle):
        rng = np.random.default_rng(2)
        values = make_values(rng, 20, 5_000, skew_item=3)
        true_freq = np.bincount(values, minlength=20) / values.size
        estimates = np.mean(
            [
                oracle.estimate_frequencies(oracle.perturb(values, rng=rng))
                for _ in range(20)
            ],
            axis=0,
        )
        assert np.allclose(estimates, true_freq, atol=0.02)

    def test_p_greater_than_q(self, oracle):
        assert oracle.support_probability_true > oracle.support_probability_false

    def test_rejects_out_of_domain(self, oracle):
        with pytest.raises(ValueError, match="domain"):
            oracle.perturb(np.array([20]), rng=0)

    def test_rejects_empty_estimate(self, oracle):
        reports = oracle.perturb(np.array([0, 1]), rng=0)
        with pytest.raises(ValueError, match="zero reports"):
            oracle.estimate_frequencies(reports[:0])

    def test_deterministic(self, oracle):
        values = np.arange(20)
        a = oracle.perturb(values, rng=9)
        b = oracle.perturb(values, rng=9)
        assert np.array_equal(a, b)


class TestKRR:
    def test_probabilities(self):
        oracle = KRR(domain_size=10, epsilon=1.0)
        exp = math.exp(1.0)
        assert oracle.support_probability_true == pytest.approx(exp / (exp + 9))
        assert oracle.support_probability_false == pytest.approx(1 / (exp + 9))

    def test_keep_rate(self):
        oracle = KRR(domain_size=5, epsilon=2.0)
        rng = np.random.default_rng(0)
        values = np.full(50_000, 2)
        reports = oracle.perturb(values, rng=rng)
        assert (reports == 2).mean() == pytest.approx(
            oracle.support_probability_true, rel=0.02
        )

    def test_other_values_uniform(self):
        oracle = KRR(domain_size=4, epsilon=1.0)
        rng = np.random.default_rng(1)
        reports = oracle.perturb(np.full(60_000, 0), rng=rng)
        other_counts = np.bincount(reports, minlength=4)[1:]
        assert np.all(np.abs(other_counts - other_counts.mean()) < 0.1 * other_counts.mean())

    def test_support_counts(self):
        oracle = KRR(domain_size=4, epsilon=1.0)
        counts = oracle.support_counts(np.array([0, 0, 3, 2]))
        assert counts.tolist() == [2, 0, 1, 1]

    def test_domain_too_small(self):
        with pytest.raises(ValueError, match="at least 2"):
            KRR(domain_size=1, epsilon=1.0)


class TestOUE:
    def test_report_shape(self):
        oracle = OUE(domain_size=8, epsilon=1.0)
        reports = oracle.perturb(np.arange(8), rng=0)
        assert reports.shape == (8, 8)

    def test_bit_probabilities(self):
        oracle = OUE(domain_size=2, epsilon=2.0)
        rng = np.random.default_rng(0)
        reports = oracle.perturb(np.zeros(50_000, dtype=np.int64), rng=rng)
        assert reports[:, 0].mean() == pytest.approx(0.5, rel=0.03)
        assert reports[:, 1].mean() == pytest.approx(
            oracle.support_probability_false, rel=0.05
        )

    def test_support_counts_shape_checked(self):
        oracle = OUE(domain_size=4, epsilon=1.0)
        with pytest.raises(ValueError, match="matrices"):
            oracle.support_counts(np.zeros((3, 5)))


class TestOLH:
    def test_bucket_count(self):
        oracle = OLH(domain_size=100, epsilon=math.log(3))
        assert oracle.num_buckets == 4  # round(3) + 1

    def test_report_shape(self):
        oracle = OLH(domain_size=10, epsilon=1.0)
        reports = oracle.perturb(np.arange(10), rng=0)
        assert reports.shape == (10, 3)

    def test_reported_bucket_in_range(self):
        oracle = OLH(domain_size=10, epsilon=1.0)
        reports = oracle.perturb(np.arange(10), rng=0)
        assert np.all(reports[:, 2] >= 0)
        assert np.all(reports[:, 2] < oracle.num_buckets)

    def test_hash_deterministic(self):
        oracle = OLH(domain_size=10, epsilon=1.0)
        a = np.array([12345])
        b = np.array([678])
        items = np.arange(10)
        assert np.array_equal(oracle.hash_items(a, b, items), oracle.hash_items(a, b, items))

    def test_support_counts_shape_checked(self):
        oracle = OLH(domain_size=4, epsilon=1.0)
        with pytest.raises(ValueError, match="arrays"):
            oracle.support_counts(np.zeros((3, 2)))

    def test_false_support_rate_is_one_over_g(self):
        oracle = OLH(domain_size=50, epsilon=1.0)
        rng = np.random.default_rng(3)
        # Users all hold item 0; count how often they support unheld item 1.
        reports = oracle.perturb(np.zeros(30_000, dtype=np.int64), rng=rng)
        supports = oracle.hash_items(reports[:, 0], reports[:, 1], np.int64(1)) == reports[:, 2]
        assert supports.mean() == pytest.approx(1.0 / oracle.num_buckets, rel=0.05)
