"""End-to-end data integrity for the storage plane.

Every durable artifact the engine depends on — result shards, lease files,
goldens, legacy cache entries — used to be trusted byte for byte: a flipped
bit in a gain digit parsed fine and was silently *believed*, a torn or
unparseable line was silently *dropped* as a cache miss.  This module makes
corruption detectable, reportable and repairable:

* **Checksums** — every shard line gains an optional CRC32 field
  (:data:`CHECKSUM_FIELD`) stamped at append time over the entry's canonical
  JSON form and verified at parse time.  Lines written before this field
  existed stay readable (the field is optional), so no
  :data:`~repro.engine.cache.CACHE_VERSION` bump is needed — checksummed and
  legacy-unchecksummed lines coexist in one shard.
* **Quarantine** — a record failing verification is copied into
  ``<cache_root>/quarantine/`` with a structured reason
  (:data:`REASON_BAD_CHECKSUM`, :data:`REASON_TORN_LINE`,
  :data:`REASON_UNPARSEABLE`, :data:`REASON_NON_FINITE`) instead of
  vanishing; ``repro cache repair`` then removes it from the shard.
* **Salvage** — a torn append fragment that a later writer's complete line
  landed behind (O_APPEND keeps lines whole only when the *writer* finishes)
  merges both into one unparseable line; :func:`salvage_line` recovers the
  intact trailing record (checksum-verified) and quarantines exactly the
  torn fragment.
* **Numeric guards** — :func:`ensure_finite_gain` raises a structured
  :class:`NonFiniteGainError` naming the task key and seed at the
  estimator→store boundary, so a NaN/inf can never poison shards or
  goldens.
* **Offline maintenance** — :func:`verify_store` (full scan, per-shard
  report), :func:`repair_store` (write-temp+rename compaction preserving
  last-writer-wins winners bit-identically), :func:`gc_store` (expired
  leases, orphaned legacy files, stale temp files).  These back the
  ``repro cache verify|repair|gc|stats`` CLI family and assume a quiesced
  store — run them between sweeps, not under one.

Counters flow through the telemetry tracer: ``integrity.corrupt`` (lines
failing verification), ``integrity.quarantined`` (quarantine copies
written), ``integrity.repaired`` (corrupt/superseded lines compacted away),
``integrity.salvaged`` (records recovered out of merged torn lines).
"""

from __future__ import annotations

import errno
import json
import math
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.engine.cache import default_cache_dir
from repro.engine.tasks import TrialTask
from repro.telemetry.core import current_tracer

#: Optional per-line checksum field: CRC32 (hex8) over the entry's canonical
#: JSON form with this field removed.  Lines without it are legacy entries.
CHECKSUM_FIELD = "crc"

#: Subdirectory of the cache root holding quarantined records.
QUARANTINE_DIR = "quarantine"

#: Structured quarantine reasons.
REASON_BAD_CHECKSUM = "bad-checksum"
REASON_TORN_LINE = "torn-line"
REASON_UNPARSEABLE = "unparseable"
REASON_NON_FINITE = "non-finite-gain"

#: The canonical first key of every entry (``sort_keys`` puts it first);
#: torn-fragment salvage scans for it to find an intact trailing record.
_ENTRY_PREFIX = '{"cache_version"'

#: ``errno`` values treated as disk faults the store degrades through
#: (in-memory overlay) instead of crashing the sweep.
DISK_FAULT_ERRNOS = frozenset({errno.ENOSPC, errno.EIO, errno.EDQUOT})


def is_disk_fault(exc: OSError) -> bool:
    """Is this the kind of I/O failure graceful degradation covers?"""
    return exc.errno in DISK_FAULT_ERRNOS


def write_all(descriptor: int, data: bytes) -> None:
    """Write every byte of ``data`` to ``descriptor``, looping on short writes."""
    view = memoryview(data)
    while view:
        written = os.write(descriptor, view)
        view = view[written:]


# ---------------------------------------------------------------------------
# Checksums
# ---------------------------------------------------------------------------
def canonical_json(entry: dict) -> str:
    """The one serialization checksums are computed over (and shards store)."""
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def entry_checksum(entry: dict) -> str:
    """CRC32 (hex8) of the entry's canonical form without the crc field."""
    body = {key: value for key, value in entry.items() if key != CHECKSUM_FIELD}
    return format(zlib.crc32(canonical_json(body).encode("utf-8")) & 0xFFFFFFFF, "08x")


def stamp_checksum(entry: dict) -> dict:
    """A copy of ``entry`` carrying its own checksum field."""
    return {**entry, CHECKSUM_FIELD: entry_checksum(entry)}


def inspect_line(raw: str) -> Tuple[Optional[dict], Optional[str]]:
    """Parse and verify one shard line: ``(entry, None)`` or ``(None, reason)``.

    Verification layers, in order: JSON parse (a failure classifies as
    :data:`REASON_TORN_LINE` when the text is a truncated prefix, else
    :data:`REASON_UNPARSEABLE`), structural shape (a dict with a string
    ``hash``), checksum match when the line carries one, and gain finiteness
    (``json.loads`` happily parses ``NaN``/``Infinity`` literals).
    """
    try:
        entry = json.loads(raw)
    except json.JSONDecodeError:
        stripped = raw.rstrip()
        reason = REASON_UNPARSEABLE if stripped.endswith("}") else REASON_TORN_LINE
        return None, reason
    if not isinstance(entry, dict) or not isinstance(entry.get("hash"), str):
        return None, REASON_UNPARSEABLE
    stored = entry.get(CHECKSUM_FIELD)
    if stored is not None and stored != entry_checksum(entry):
        return None, REASON_BAD_CHECKSUM
    gain = entry.get("gain")
    if not isinstance(gain, (int, float)) or isinstance(gain, bool) or not math.isfinite(gain):
        return None, REASON_NON_FINITE
    return entry, None


def salvage_line(raw: str) -> Tuple[Optional[dict], Optional[str]]:
    """Recover an intact record from a merged torn line.

    A writer dying (or hitting ``EIO``) mid-append leaves a line fragment
    with no newline; the next O_APPEND writer's complete line lands directly
    behind it and both read back as one unparseable line.  The fragment is
    garbage, but the trailing record is byte-intact — find the last
    occurrences of the canonical entry prefix and return the first suffix
    that passes full verification, together with the torn leading fragment.

    Returns ``(entry, fragment)``; ``(None, None)`` when nothing inside the
    line verifies.
    """
    position = raw.rfind(_ENTRY_PREFIX)
    while position > 0:
        entry, reason = inspect_line(raw[position:])
        if entry is not None and reason is None:
            return entry, raw[:position]
        position = raw.rfind(_ENTRY_PREFIX, 0, position)
    return None, None


# ---------------------------------------------------------------------------
# Numeric guards
# ---------------------------------------------------------------------------
class NonFiniteGainError(ValueError):
    """A computed gain was NaN/inf at the estimator→store boundary.

    Raised *before* the value can reach a shard, a golden fixture or an
    aggregate; carries the full task coordinates so the offending trial can
    be replayed in isolation.
    """

    def __init__(self, task: TrialTask, gain: float):
        self.task = task
        self.gain = gain
        super().__init__(
            f"non-finite gain {gain!r} for task {task.content_hash()} "
            f"(figure={task.figure!r}, series={task.series!r}, "
            f"metric={task.metric!r}, attack={task.attack!r}, "
            f"value={task.value!r}, trial={task.trial}, seed={task.seed}); "
            "refusing to store it — replay this task in isolation to debug "
            "the estimator"
        )


def ensure_finite_gain(task: TrialTask, gain: float) -> float:
    """``float(gain)`` if finite; :class:`NonFiniteGainError` otherwise."""
    value = float(gain)
    if not math.isfinite(value):
        current_tracer().counter("integrity.non_finite")
        raise NonFiniteGainError(task, value)
    return value


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------
class Quarantine:
    """Append-only record of corrupt lines under ``<root>/quarantine/``.

    One JSONL file per damaged source (``shard-ab.jsonl`` quarantines into
    ``quarantine/shard-ab.jsonl``); each record carries the source name,
    1-based line number, structured reason and the raw damaged text, so
    nothing ever silently vanishes.  Writes are best-effort — quarantining
    happens on read paths too, and a read-only or full cache root must
    degrade to counting, never to failing the read.  Per-instance dedup
    keeps shard reloads from re-recording the same damage.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root) / QUARANTINE_DIR
        self.added = 0
        self.failed = 0
        self._seen: Set[Tuple[str, int]] = set()

    def path_for(self, source: str) -> Path:
        """Where one source's quarantined records accumulate."""
        return self.root / (source.replace("/", "__") + ".jsonl")

    def add(self, source: str, line_number: int, raw: str, reason: str) -> bool:
        """Record one damaged line; returns True when a record was written."""
        key = (source, zlib.crc32(raw.encode("utf-8", "replace")))
        if key in self._seen:
            return False
        self._seen.add(key)
        record = {
            "source": source,
            "line": int(line_number),
            "reason": reason,
            "raw": raw,
        }
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            descriptor = os.open(
                self.path_for(source), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                write_all(descriptor, data)
            finally:
                os.close(descriptor)
        except OSError:
            self.failed += 1
            return False
        self.added += 1
        current_tracer().counter("integrity.quarantined")
        return True

    def entries(self) -> List[dict]:
        """Every quarantined record on disk (torn quarantine lines skipped)."""
        records: List[dict] = []
        if not self.root.is_dir():
            return records
        for path in sorted(self.root.glob("*.jsonl")):
            for line in path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return records

    def __len__(self) -> int:
        return len(self.entries())


# ---------------------------------------------------------------------------
# Full-store scans: verify / repair / gc / stats
# ---------------------------------------------------------------------------
@dataclass
class ShardReport:
    """One shard file's scan outcome."""

    name: str
    lines: int = 0
    valid: int = 0
    distinct: int = 0
    superseded: int = 0
    checksummed: int = 0
    unchecksummed: int = 0
    salvaged: int = 0
    #: reason -> count of lines failing verification.
    corrupt: Dict[str, int] = field(default_factory=dict)
    #: (1-based line number, reason) of every corrupt line.
    corrupt_lines: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def corrupt_total(self) -> int:
        return sum(self.corrupt.values())


@dataclass
class StoreReport:
    """A full-store integrity scan (``repro cache verify``)."""

    root: Path
    shards: List[ShardReport] = field(default_factory=list)
    legacy_files: int = 0
    legacy_corrupt: int = 0
    quarantined: int = 0

    @property
    def corrupt_total(self) -> int:
        return sum(shard.corrupt_total for shard in self.shards) + self.legacy_corrupt

    @property
    def distinct_total(self) -> int:
        return sum(shard.distinct for shard in self.shards)

    def format(self) -> str:
        lines = [f"cache root: {self.root}"]
        damaged = [shard for shard in self.shards if shard.corrupt_total]
        for shard in damaged:
            reasons = ", ".join(
                f"{reason}={count}" for reason, count in sorted(shard.corrupt.items())
            )
            where = ", ".join(
                f"line {number} ({reason})" for number, reason in shard.corrupt_lines
            )
            lines.append(f"  {shard.name}: CORRUPT {reasons} [{where}]")
        lines.append(
            f"shards: {len(self.shards)} files, "
            f"{sum(s.lines for s in self.shards)} lines, "
            f"{self.distinct_total} distinct results "
            f"({sum(s.checksummed for s in self.shards)} checksummed, "
            f"{sum(s.unchecksummed for s in self.shards)} legacy-unchecksummed, "
            f"{sum(s.superseded for s in self.shards)} superseded, "
            f"{sum(s.salvaged for s in self.shards)} salvaged)"
        )
        lines.append(
            f"legacy per-task files: {self.legacy_files} "
            f"({self.legacy_corrupt} corrupt)"
        )
        lines.append(f"quarantine: {self.quarantined} records")
        lines.append(
            f"verdict: {self.corrupt_total} corrupt record(s)"
            + ("" if self.corrupt_total else " — store is clean")
        )
        return "\n".join(lines)


def _shard_lines(path: Path) -> List[str]:
    """A shard's raw lines (text, no terminators); empty tail dropped."""
    content = path.read_text(encoding="utf-8")
    lines = content.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


def _scan_shard(path: Path) -> Tuple[ShardReport, Dict[str, int], List[Tuple[int, str, Optional[str]]]]:
    """Scan one shard file.

    Returns the report, the winners map (``hash`` -> 1-based line number of
    its last valid occurrence) and the keepable lines as
    ``(line_number, raw_text, salvage_fragment)`` — ``salvage_fragment`` is
    the torn prefix to quarantine when the line's record had to be salvaged
    out of a merged torn line.
    """
    report = ShardReport(name=path.name)
    winners: Dict[str, int] = {}
    keepable: List[Tuple[int, str, Optional[str]]] = []
    for number, raw in enumerate(_shard_lines(path), start=1):
        if not raw.strip():
            continue
        report.lines += 1
        entry, reason = inspect_line(raw)
        fragment: Optional[str] = None
        if entry is None:
            salvaged, fragment = salvage_line(raw)
            if salvaged is None:
                report.corrupt[reason] = report.corrupt.get(reason, 0) + 1
                report.corrupt_lines.append((number, reason))
                continue
            entry = salvaged
            report.salvaged += 1
            report.corrupt[REASON_TORN_LINE] = report.corrupt.get(REASON_TORN_LINE, 0) + 1
            report.corrupt_lines.append((number, REASON_TORN_LINE))
        report.valid += 1
        if CHECKSUM_FIELD in entry:
            report.checksummed += 1
        else:
            report.unchecksummed += 1
        if entry["hash"] in winners:
            report.superseded += 1
        winners[entry["hash"]] = number
        keepable.append((number, raw, fragment))
    report.distinct = len(winners)
    return report, winners, keepable


def _legacy_paths(root: Path) -> List[Path]:
    return sorted(root.glob("[0-9a-f][0-9a-f]/*.json"))


def verify_store(root: Union[str, Path, None] = None) -> StoreReport:
    """Full-store integrity scan: every shard line, every legacy file.

    Read-only — reports damage (``integrity.corrupt`` counters fire) but
    quarantines nothing; :func:`repair_store` is the mutating counterpart.
    Run it quiesced: an append in flight reads as a torn trailing line.
    """
    root = Path(root) if root is not None else default_cache_dir()
    tracer = current_tracer()
    report = StoreReport(root=root)
    for path in sorted(root.glob("shard-*.jsonl")):
        shard, _, _ = _scan_shard(path)
        report.shards.append(shard)
        if shard.corrupt_total:
            tracer.counter("integrity.corrupt", shard.corrupt_total)
    for path in _legacy_paths(root):
        report.legacy_files += 1
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            ok = isinstance(entry, dict) and math.isfinite(float(entry.get("gain", 0.0)))
        except (OSError, ValueError, TypeError):
            ok = False
        if not ok:
            report.legacy_corrupt += 1
            tracer.counter("integrity.corrupt")
    report.quarantined = len(Quarantine(root))
    return report


@dataclass
class RepairReport:
    """Outcome of a ``repro cache repair`` compaction pass."""

    root: Path
    shards_rewritten: int = 0
    quarantined: int = 0
    superseded_dropped: int = 0
    salvaged: int = 0
    entries_kept: int = 0

    def format(self) -> str:
        return (
            f"repair of {self.root}: rewrote {self.shards_rewritten} shard(s); "
            f"kept {self.entries_kept} winning entries, quarantined "
            f"{self.quarantined} corrupt line(s) (of which {self.salvaged} had "
            f"an intact record salvaged), dropped {self.superseded_dropped} "
            "superseded duplicate(s)"
        )


def repair_store(root: Union[str, Path, None] = None) -> RepairReport:
    """Compact every shard: drop corrupt and superseded lines, keep winners.

    Each damaged or duplicate-carrying shard is rewritten via write-temp +
    ``rename``; the surviving last-writer-wins lines are preserved **bit
    identically** (the original raw text is copied, never re-serialized, so
    legacy-unchecksummed winners stay unchecksummed and replay byte-equal).
    Corrupt lines move to the quarantine with their structured reason; a
    record salvaged out of a merged torn line is kept (re-serialized from
    its verified bytes) while its torn fragment is quarantined.  Clean
    shards are left untouched.  Run quiesced — a concurrent append between
    scan and rename would be lost.
    """
    root = Path(root) if root is not None else default_cache_dir()
    tracer = current_tracer()
    quarantine = Quarantine(root)
    report = RepairReport(root=root)
    for path in sorted(root.glob("shard-*.jsonl")):
        shard, winners, keepable = _scan_shard(path)
        report.superseded_dropped += shard.superseded
        report.salvaged += shard.salvaged
        raw_lines = _shard_lines(path)
        salvaged_numbers = {number for number, _, fragment in keepable if fragment}
        for number, reason in shard.corrupt_lines:
            if number in salvaged_numbers:
                continue  # salvaged lines are quarantined via their fragment
            if quarantine.add(path.name, number, raw_lines[number - 1], reason):
                report.quarantined += 1
        survivors: List[str] = []
        for number, raw, fragment in keepable:
            entry, _ = inspect_line(raw)
            if entry is None:
                entry, fragment = salvage_line(raw)
            if winners.get(entry["hash"]) != number:
                continue  # superseded by a later line
            if fragment is not None:
                if quarantine.add(path.name, number, fragment, REASON_TORN_LINE):
                    report.quarantined += 1
                survivors.append(canonical_json(entry))
            else:
                survivors.append(raw)
        report.entries_kept += len(survivors)
        if len(survivors) == shard.lines and not shard.corrupt_total:
            continue  # nothing to drop: leave the file byte-untouched
        dropped = shard.lines - len(survivors)
        temporary = path.with_name(f".{path.name}.repair.tmp")
        data = "".join(line + "\n" for line in survivors).encode("utf-8")
        descriptor = os.open(
            temporary, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
        )
        try:
            write_all(descriptor, data)
            os.fsync(descriptor)
        except BaseException:
            os.close(descriptor)
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
        os.close(descriptor)
        os.replace(temporary, path)
        report.shards_rewritten += 1
        tracer.counter("integrity.repaired", dropped)
    return report


@dataclass
class GcReport:
    """Outcome of a ``repro cache gc`` pass."""

    root: Path
    leases_pruned: int = 0
    temp_files_pruned: int = 0
    legacy_pruned: int = 0
    legacy_dirs_pruned: int = 0

    def format(self) -> str:
        return (
            f"gc of {self.root}: pruned {self.leases_pruned} expired lease(s), "
            f"{self.temp_files_pruned} stale temp file(s), "
            f"{self.legacy_pruned} migrated legacy file(s) "
            f"({self.legacy_dirs_pruned} emptied fan-out dir(s))"
        )


def gc_store(
    root: Union[str, Path, None] = None, lease_ttl: float = 30.0
) -> GcReport:
    """Prune expired leases, stale temp files and migrated legacy entries.

    A lease (or lease temp file) whose mtime is older than ``lease_ttl``
    has not been heartbeated for at least that long — heartbeats rewrite
    the file — so it is dead weight from a crashed worker.  A legacy
    per-task file whose hash already answers from its shard was migrated
    forward and will never be read again.  Live data is never touched.
    """
    import time

    root = Path(root) if root is not None else default_cache_dir()
    report = GcReport(root=root)
    now = time.time()
    leases = root / "leases"
    if leases.is_dir():
        for path in sorted(leases.iterdir()):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age < lease_ttl:
                continue
            is_temp = path.name.startswith(".") and path.name.endswith(".tmp")
            try:
                path.unlink()
            except OSError:
                continue
            if is_temp:
                report.temp_files_pruned += 1
            else:
                report.leases_pruned += 1
    migrated: Dict[str, Set[str]] = {}
    for shard_path in root.glob("shard-*.jsonl"):
        prefix = shard_path.stem[len("shard-"):]
        _, winners, _ = _scan_shard(shard_path)
        migrated[prefix] = set(winners)
    for path in _legacy_paths(root):
        if path.stem in migrated.get(path.parent.name, ()):
            try:
                path.unlink()
            except OSError:
                continue
            report.legacy_pruned += 1
    for directory in sorted(root.glob("[0-9a-f][0-9a-f]")):
        try:
            directory.rmdir()  # only succeeds when empty
            report.legacy_dirs_pruned += 1
        except OSError:
            pass
    return report
