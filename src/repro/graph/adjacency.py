"""Sparse undirected simple graphs with adjacency-bit-vector views.

The LDP protocols in this library operate on the *adjacency bit vector* of
each user (the row of the adjacency matrix belonging to that user) and on the
user's degree.  :class:`Graph` stores the edge set sparsely — as a sorted
array of unordered-pair codes — so graphs with tens of thousands of nodes fit
comfortably in memory, while still offering O(deg) neighbour queries through a
lazily built, cached CSR index and on-demand dense bit-vector rows for small
graphs.  Graphs consumed only for degrees, edge arrays or whole-graph metrics
(the common fate of randomized-response-perturbed graphs) never pay the CSR
sort; dense perturbed graphs route their triangle counting through the
bit-packed backend in :mod:`repro.graph.bitmatrix`.

Graphs are value-style objects: mutating operations return new graphs.  This
keeps before/after attack comparisons safe by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.sparse import decode_pairs, encode_pairs, pair_count
from repro.utils.validation import check_non_negative

#: Codes decoded per chunk when counting degrees (4M codes ~ 96 MB of
#: endpoint temporaries — bounded regardless of graph size).
_DEGREE_CHUNK_CODES = 1 << 22


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable reference to a graph exported into shared memory.

    Only the segment *name* and the array geometry travel to workers; the
    edge codes themselves stay in the POSIX shared-memory segment, which
    every process maps zero-copy.  Lifecycle contract: the exporting process
    creates the segment (:meth:`Graph.to_shared`), workers attach
    (:meth:`Graph.attach_shared`), and the exporter — never an attacher —
    eventually unlinks it (:class:`repro.engine.graph_store.GraphStore`
    does this in ``close``).
    """

    shm_name: str
    num_nodes: int
    num_edges: int


def attach_shared_memory(name: str):
    """Attach an existing shared-memory segment without adopting ownership.

    On CPython 3.13+ ``track=False`` keeps the attach out of the resource
    tracker entirely.  Earlier versions register unconditionally; that is
    harmless here because pool workers are forked *after* the exporting
    process's first registration, so they share its tracker and the
    duplicate registration dedupes — the segment is still unlinked exactly
    once, by the exporter (:class:`repro.engine.graph_store.GraphStore`
    calls ``resource_tracker.ensure_running()`` up front to pin that fork
    ordering).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


class Graph:
    """An immutable, undirected simple graph on nodes ``0 .. num_nodes - 1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Isolated nodes are allowed.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates and orientation are
        normalised away; self-loops raise.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 0)])
    >>> g.num_edges
    3
    >>> sorted(g.neighbors(0))
    [1, 2]
    >>> g.has_edge(0, 3)
    False
    """

    __slots__ = ("_num_nodes", "_codes", "_indptr", "_indices", "_degrees")

    def __init__(self, num_nodes: int, edges: Iterable[Tuple[int, int]] = ()):
        check_non_negative(num_nodes, "num_nodes")
        self._num_nodes = int(num_nodes)
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            codes = np.empty(0, dtype=np.int64)
        else:
            if edge_array.ndim != 2 or edge_array.shape[1] != 2:
                raise ValueError("edges must be an iterable of (u, v) pairs")
            codes = np.unique(encode_pairs(edge_array[:, 0], edge_array[:, 1], self._num_nodes))
        self._codes = codes
        self._indptr = self._indices = self._degrees = None

    @classmethod
    def from_codes(
        cls, num_nodes: int, codes: np.ndarray, *, assume_sorted_unique: bool = False
    ) -> "Graph":
        """Build a graph directly from unordered-pair codes.

        With ``assume_sorted_unique`` the caller guarantees ``codes`` is
        already sorted and duplicate-free (e.g. the output of ``np.union1d``,
        ``np.setdiff1d`` or :func:`repro.utils.sparse.merge_sorted_disjoint`),
        skipping the O(E log E) ``np.unique`` pass — the dominant construction
        cost for the near-dense graphs low-epsilon randomized response emits.
        An owning array is adopted without copying and frozen
        (``writeable=False``), so a caller mutating its buffer afterwards
        gets a loud error instead of silently corrupting a value-style graph;
        a view is copied (freezing a view would not stop writes through its
        base).  Range validation is always performed (O(1) on sorted codes).
        """
        graph = cls.__new__(cls)
        graph._num_nodes = int(num_nodes)
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size:
            if not assume_sorted_unique:
                codes = np.unique(codes)
            else:
                if not codes.flags.owndata:
                    codes = codes.copy()
                codes.flags.writeable = False
            if codes[0] < 0 or codes[-1] >= pair_count(num_nodes):
                raise ValueError("edge code out of range for num_nodes")
        graph._codes = codes
        graph._indptr = graph._indices = graph._degrees = None
        return graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Convert a :class:`networkx.Graph`; nodes are relabelled 0..n-1."""
        nodes = list(nx_graph.nodes())
        index = {node: position for position, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
        return cls(len(nodes), edges)

    def to_networkx(self):
        """Export to :class:`networkx.Graph` (imported lazily)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._num_nodes))
        rows, cols = self.edge_arrays()
        nx_graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return nx_graph

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._codes.size)

    @property
    def edge_codes(self) -> np.ndarray:
        """Sorted unique unordered-pair codes of the edges (read-only view)."""
        view = self._codes.view()
        view.flags.writeable = False
        return view

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Edges as two aligned arrays ``(rows, cols)`` with ``rows < cols``."""
        return decode_pairs(self._codes, self._num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as python int pairs, ``u < v``."""
        rows, cols = self.edge_arrays()
        return zip(rows.tolist(), cols.tolist())

    def degrees(self) -> np.ndarray:
        """Degree of every node (read-only array of length ``num_nodes``).

        The decode runs in bounded chunks: at million-node scale a perturbed
        graph carries 10^8+ codes and a single-pass decode would allocate
        two full-size endpoint temporaries; chunking caps the transients at
        a constant while accumulating the exact same integer bincounts.
        """
        if self._degrees is None:
            counts = np.zeros(self._num_nodes, dtype=np.int64)
            for start in range(0, self._codes.size, _DEGREE_CHUNK_CODES):
                rows, cols = decode_pairs(
                    self._codes[start : start + _DEGREE_CHUNK_CODES], self._num_nodes
                )
                counts += np.bincount(rows, minlength=self._num_nodes)
                counts += np.bincount(cols, minlength=self._num_nodes)
            self._degrees = counts
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    def degree(self, node: int) -> int:
        """Degree of a single node."""
        self._check_node(node)
        return int(self.degrees()[node])

    def _seed_degrees(self, degrees: np.ndarray) -> None:
        """Install a precomputed degree array, skipping the O(E) recount.

        Trusted-caller API for incremental pipelines that already know this
        graph's exact degrees (e.g. honest degrees plus the net changes of
        an attack override).  The caller vouches the values equal what
        :meth:`degrees` would compute — they are adopted verbatim.
        """
        degrees = np.asarray(degrees, dtype=np.int64)
        if degrees.shape != (self._num_nodes,):
            raise ValueError(
                f"seeded degrees have shape {degrees.shape}, expected ({self._num_nodes},)"
            )
        self._degrees = degrees

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbour ids of ``node``."""
        self._check_node(node)
        self._ensure_csr()
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        self._check_node(u)
        self._check_node(v)
        u, v = int(u), int(v)
        if u == v:
            return False
        lo, hi = (u, v) if u < v else (v, u)
        # Scalar form of repro.utils.sparse.encode_pairs — plain python ints,
        # no length-1 array allocations on this per-pair hot path.
        code = lo * self._num_nodes - lo * (lo + 1) // 2 + (hi - lo - 1)
        position = int(np.searchsorted(self._codes, code))
        return position < self._codes.size and int(self._codes[position]) == code

    def adjacency_bit_vector(self, node: int) -> np.ndarray:
        """Dense 0/1 adjacency row of ``node`` (the user's local view).

        This is exactly what a user submits to an LDP protocol before
        perturbation.  O(num_nodes) memory per call; fine for the per-user
        report granularity the protocols need.
        """
        self._check_node(node)
        row = np.zeros(self._num_nodes, dtype=np.uint8)
        row[self.neighbors(node)] = 1
        return row

    # ------------------------------------------------------------------
    # Shared-memory export / attach
    # ------------------------------------------------------------------
    def to_shared(self) -> Tuple[SharedGraphHandle, "object"]:
        """Export this graph's edge codes into a POSIX shared-memory segment.

        Returns ``(handle, segment)``: the handle is a tiny picklable value
        that travels to worker processes; the segment is the live
        :class:`multiprocessing.shared_memory.SharedMemory` the *caller now
        owns* — it must keep it alive while any worker may attach and call
        ``unlink()`` exactly once when the graph is retired (create →
        attach → unlink).  Workers reconstruct the graph zero-copy with
        :meth:`attach_shared` instead of unpickling an edge-array copy.
        """
        from multiprocessing import shared_memory

        nbytes = max(1, self._codes.nbytes)  # zero-size segments are invalid
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        if self._codes.size:
            target = np.ndarray(
                self._codes.shape, dtype=np.int64, buffer=segment.buf
            )
            target[:] = self._codes
        handle = SharedGraphHandle(
            shm_name=segment.name,
            num_nodes=self._num_nodes,
            num_edges=int(self._codes.size),
        )
        return handle, segment

    @classmethod
    def attach_shared(cls, handle: SharedGraphHandle) -> Tuple["Graph", "object"]:
        """Map a graph exported by :meth:`to_shared`, without copying.

        Returns ``(graph, segment)``.  The graph's edge codes are a
        read-only view straight into the shared segment; the caller must
        keep ``segment`` referenced for as long as the graph is used (the
        worker-side attach cache in :mod:`repro.engine.executors` does) and
        must close — never unlink — it when done.
        """
        segment = attach_shared_memory(handle.shm_name)
        if handle.num_edges:
            codes = np.frombuffer(
                segment.buf, dtype=np.int64, count=handle.num_edges
            )
            codes.flags.writeable = False
        else:
            codes = np.empty(0, dtype=np.int64)  # no pointer into the segment
        graph = cls.__new__(cls)
        graph._num_nodes = int(handle.num_nodes)
        graph._codes = codes
        graph._indptr = graph._indices = graph._degrees = None
        return graph, segment

    def csr(self) -> sp.csr_matrix:
        """Symmetric adjacency matrix in CSR form (0/1, int8)."""
        rows, cols = self.edge_arrays()
        data = np.ones(2 * rows.size, dtype=np.int8)
        all_rows = np.concatenate([rows, cols])
        all_cols = np.concatenate([cols, rows])
        return sp.csr_matrix(
            (data, (all_rows, all_cols)), shape=(self._num_nodes, self._num_nodes)
        )

    # ------------------------------------------------------------------
    # Value-style edits
    # ------------------------------------------------------------------
    def with_edges(self, edges: Iterable[Tuple[int, int]]) -> "Graph":
        """A new graph with ``edges`` added (existing edges are kept)."""
        new_edges = np.asarray(list(edges), dtype=np.int64)
        if new_edges.size == 0:
            return self
        codes = encode_pairs(new_edges[:, 0], new_edges[:, 1], self._num_nodes)
        merged = np.union1d(self._codes, codes)
        return Graph.from_codes(self._num_nodes, merged, assume_sorted_unique=True)

    def without_edges(self, edges: Iterable[Tuple[int, int]]) -> "Graph":
        """A new graph with ``edges`` removed (missing edges are ignored)."""
        drop = np.asarray(list(edges), dtype=np.int64)
        if drop.size == 0:
            return self
        codes = encode_pairs(drop[:, 0], drop[:, 1], self._num_nodes)
        kept = np.setdiff1d(self._codes, codes)
        return Graph.from_codes(self._num_nodes, kept, assume_sorted_unique=True)

    def with_nodes(self, extra_nodes: int) -> "Graph":
        """A new graph with ``extra_nodes`` appended as isolated nodes.

        Edge codes depend on ``num_nodes``, so they are re-encoded.
        """
        check_non_negative(extra_nodes, "extra_nodes")
        if extra_nodes == 0:
            return self
        rows, cols = self.edge_arrays()
        new_n = self._num_nodes + int(extra_nodes)
        # Re-encoding with a larger n preserves the (row, col) lex order, so
        # the new codes are still sorted and unique.
        codes = encode_pairs(rows, cols, new_n) if rows.size else np.empty(0, dtype=np.int64)
        return Graph.from_codes(new_n, codes, assume_sorted_unique=True)

    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph on ``nodes`` (relabelled to 0..len(nodes)-1)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size != np.unique(nodes).size:
            raise ValueError("subgraph nodes must be unique")
        mapping = -np.ones(self._num_nodes, dtype=np.int64)
        mapping[nodes] = np.arange(nodes.size)
        rows, cols = self.edge_arrays()
        keep = (mapping[rows] >= 0) & (mapping[cols] >= 0)
        edges = np.stack([mapping[rows[keep]], mapping[cols[keep]]], axis=1)
        return Graph(nodes.size, edges)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_csr(self) -> None:
        """Build the CSR index on first use.

        The index costs a sort over 2E entries, which graphs consumed only
        through ``degrees()``/``edge_arrays()``/metrics (e.g. the near-dense
        perturbed graphs of low-epsilon randomized response) never need — so
        it is built lazily and cached.  ``codes`` is sorted, hence the decoded
        (row, col) pairs are lex-sorted; listing the (col, row) half first
        makes one *stable* single-key sort on the row leave every bucket's
        neighbours ascending (smaller-id neighbours come from the col half).
        """
        if self._indices is not None:
            return
        rows, cols = decode_pairs(self._codes, self._num_nodes)
        all_rows = np.concatenate([cols, rows])
        all_cols = np.concatenate([rows, cols])
        order = np.argsort(all_rows, kind="stable")
        if self._degrees is None:
            self._degrees = (
                np.bincount(rows, minlength=self._num_nodes)
                + np.bincount(cols, minlength=self._num_nodes)
            ).astype(np.int64)
        indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=indptr[1:])
        self._indptr = indptr
        self._indices = all_cols[order]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise IndexError(f"node {node} out of range [0, {self._num_nodes})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._num_nodes == other._num_nodes and np.array_equal(
            self._codes, other._codes
        )

    def __hash__(self) -> int:
        return hash((self._num_nodes, self._codes.tobytes()))

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self.num_edges})"
