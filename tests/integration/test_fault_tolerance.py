"""End-to-end fault tolerance: kill real workers, resume, verify zero drift.

The contract under test is the PR's headline: a distributed sweep
interrupted by SIGKILL and finished later — by surviving workers or by
``scenario run --resume`` — produces results **bit-identical** to an
uninterrupted serial run.  Nothing here mocks process death: workers are
real subprocesses and the signal is a real ``SIGKILL``.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.result_store import ShardedResultStore
from repro.experiments import cli
from repro.experiments.config import ExperimentConfig
from repro.scenarios.registry import get_scenario
from repro.scenarios.run import run_scenario

#: The golden configuration: small enough for CI, same seeds as the goldens.
SCENARIO = "fig6"
KNOBS = ["--scale", "0.02", "--trials", "2", "--seed", "0"]
CONFIG = ExperimentConfig(trials=2, scale=0.02, seed=0, cache=True)


def _worker_command(extra=()):
    return [
        sys.executable, "-m", "repro", "worker", SCENARIO, *KNOBS,
        "--lease-ttl", "2", "--poll-interval", "0.05", *extra,
    ]


def _worker_env(cache_dir):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[2] / "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def _wait_for_shards(cache_dir, minimum=1, timeout=180):
    """Block until the worker has durably appended ``minimum`` shard files."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        shards = list(Path(cache_dir).glob("shard-*.jsonl"))
        if len(shards) >= minimum:
            return shards
        time.sleep(0.05)
    raise AssertionError(f"no {minimum} shard files appeared within {timeout}s")


@pytest.fixture()
def reference():
    """The uninterrupted serial truth, computed with caching off."""
    spec = get_scenario(SCENARIO)
    result = run_scenario(spec, CONFIG.with_overrides(cache=False))
    return spec, result


class TestKillAndResume:
    def test_sigkilled_sweep_resumes_bit_identically(
        self, tmp_path, monkeypatch, reference, capsys
    ):
        """SIGKILL a worker mid-sweep; --resume must finish with zero drift."""
        spec, truth = reference
        cache_dir = tmp_path / "cache"

        worker = subprocess.Popen(
            _worker_command(), env=_worker_env(cache_dir),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for_shards(cache_dir, minimum=1)
        finally:
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=60)
        assert worker.returncode == -signal.SIGKILL

        survived = len(ShardedResultStore(cache_dir))
        assert survived >= 1, "nothing durable survived the kill"

        # Resume through the CLI, pointed at the interrupted sweep's store.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        exit_code = cli.run(["scenario", "run", SCENARIO, *KNOBS, "--resume"])
        out = capsys.readouterr().out
        assert exit_code == 0
        reused = int(out.rsplit("resume: reused ", 1)[1].split(" ")[0])
        assert reused >= survived >= 1, "resume recomputed what the kill spared"

        # Zero drift: the resumed store answers the whole batch with the
        # serial truth's exact values.
        resumed = run_scenario(spec, CONFIG, cache=ShardedResultStore(cache_dir))
        for key, panel in truth.panels.items():
            assert resumed.panels[key].series == panel.series
            assert resumed.panels[key].stderr == panel.stderr

    def test_surviving_worker_reclaims_a_killed_workers_ranges(
        self, tmp_path, reference
    ):
        """Two workers, one murdered: the survivor finishes everything."""
        spec, truth = reference
        cache_dir = tmp_path / "cache"
        env = _worker_env(cache_dir)

        victim = subprocess.Popen(
            _worker_command(["--worker-id", "victim"]), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for_shards(cache_dir, minimum=1)
        finally:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=60)

        survivor = subprocess.run(
            _worker_command(["--worker-id", "survivor"]), env=env,
            capture_output=True, text=True, timeout=600,
        )
        assert survivor.returncode == 0, survivor.stderr

        resumed = run_scenario(spec, CONFIG, cache=ShardedResultStore(cache_dir))
        for key, panel in truth.panels.items():
            assert resumed.panels[key].series == panel.series
            assert resumed.panels[key].stderr == panel.stderr


class TestCLIGuards:
    def test_resume_rejects_no_cache(self, capsys):
        exit_code = cli.run(
            ["scenario", "run", SCENARIO, *KNOBS, "--resume", "--no-cache"]
        )
        assert exit_code == 2
        assert "--no-cache" in capsys.readouterr().out

    def test_worker_rejects_no_cache(self, capsys):
        exit_code = cli.run(["worker", SCENARIO, *KNOBS, "--no-cache"])
        assert exit_code == 2
        assert "--no-cache" in capsys.readouterr().out
