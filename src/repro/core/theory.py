"""Closed-form MGA gains: Theorems 1 and 2.

These are the paper's analytic predictions for the Maximal Gain Attack,
validated empirically in ``benchmarks/bench_theory_validation.py``.
"""

from __future__ import annotations

import math

from repro.ldp.mechanisms import rr_keep_probability
from repro.utils.validation import check_non_negative, check_positive


def theorem1_degree_gain(
    num_fake: int,
    num_targets: int,
    num_nodes: int,
    perturbed_average_degree: float,
) -> float:
    """Theorem 1: overall MGA gain on degree centrality.

    ``Gain = m r / (N-1) * ( min(r, floor(d~)) / r  -  d~ / (N-1) )``

    The first bracket term is the per-target crafted connectivity each fake
    node contributes (capped by the connection budget ``floor(d~)``); the
    second is the organic connectivity a fake node would have contributed to
    targets anyway in the honest world — the *before* state of the paired
    evaluation.
    """
    check_positive(num_fake, "num_fake")
    check_positive(num_targets, "num_targets")
    check_positive(num_nodes - 1, "num_nodes - 1")
    check_non_negative(perturbed_average_degree, "perturbed_average_degree")
    budget = min(num_targets, math.floor(perturbed_average_degree))
    return (
        num_fake
        * num_targets
        / (num_nodes - 1)
        * (budget / num_targets - perturbed_average_degree / (num_nodes - 1))
    )


def theorem2_clustering_gain(
    num_fake: int,
    num_targets: int,
    num_nodes: int,
    perturbed_average_degree: float,
    adjacency_epsilon: float,
) -> float:
    """Theorem 2: overall MGA gain on the clustering coefficient.

    ``Gain = r * 2/(p^2 (2p-1)) * 1/(d~ (d~-1))
           * m/2 * ( p'(1-p')^2 + p'^2 (1-p') + 3 (1-p')^3 )``

    with ``p' = d~/(N-1)`` the probability that a given fake–target or
    fake–fake connection already exists organically.  ``m/2`` counts the
    fake pairs; the bracket weights the triangle completions of Fig. 5's
    three cases by how many crafted edges each needs.  (The paper's typeset
    formula is ambiguous about the bracket grouping; ``m/2`` multiplying all
    three case terms is the reading consistent with "each pair of fake nodes
    closes triangles at every target".)
    """
    check_positive(num_fake, "num_fake")
    check_positive(num_targets, "num_targets")
    check_positive(perturbed_average_degree - 1.0, "perturbed_average_degree - 1")
    keep = rr_keep_probability(adjacency_epsilon)
    if keep == 0.5:
        raise ValueError("adjacency_epsilon=0 makes the estimator degenerate")
    connection_probability = perturbed_average_degree / (num_nodes - 1)
    if not 0.0 <= connection_probability <= 1.0:
        raise ValueError(
            "perturbed_average_degree implies a connection probability outside [0, 1]"
        )
    p_prime = connection_probability
    bracket = (
        p_prime * (1 - p_prime) ** 2
        + p_prime**2 * (1 - p_prime)
        + 3.0 * (1 - p_prime) ** 3
    )
    return (
        num_targets
        * 2.0
        / (keep**2 * (2.0 * keep - 1.0))
        / (perturbed_average_degree * (perturbed_average_degree - 1.0))
        * (num_fake / 2.0)
        * bracket
    )
