"""Scenario-driven sweep benchmark (extension workloads).

Not a paper figure: this bench runs registered cross-product scenarios —
workloads the paper never measured — end to end through the declarative
scenario subsystem (spec -> compiled TrialTask batch -> engine), timing the
full pipeline and sanity-checking the aggregated curves.  It doubles as the
CI smoke test proving that a scenario outside the paper's fixed grid is one
registry lookup away.
"""

import numpy as np
import pytest
from conftest import bench_config, emit, record_timing

from repro.scenarios import get_scenario, run_scenario


@pytest.mark.parametrize(
    "name",
    ["xprod/protocol-duel-mga", "xprod/defense-matrix-mga"],
)
def test_scenario_sweep(benchmark, name):
    spec = get_scenario(name)
    config = bench_config(spec.dataset)

    result = benchmark.pedantic(
        run_scenario, args=(spec, config), rounds=1, iterations=1
    )

    emit(f"scenario_{name.replace('/', '__')}", result.format())
    sweep = result.sweep()
    assert list(sweep.values) == list(spec.values)
    for series, curve in sweep.series.items():
        assert len(curve) == len(spec.values)
        assert all(np.isfinite(g) for g in curve), series


def test_paired_vs_full_ab():
    """Paired-collection A/B on the fig09 workload: reuse on vs off.

    Runs the fig9 scenario twice at equal settings — once through the
    shared-collection + incremental-estimator pipeline (the default), once
    with ``REPRO_PAIRED_COLLECTION=0`` forcing the legacy two-collection
    path — and asserts the curves are bit-identical and the incremental
    triangle path was actually selected (never silently falling back) on
    every after-run.  Both runs are timed identically and the speedup is
    reported; wall clock is only *asserted* with a generous margin, because
    small CI workloads on shared runners are noisy.  Forces ``jobs=1``: the
    delta-stats counters are process-local and would stay zero if trials
    ran in pool workers.
    """
    import os
    import time

    from repro.graph.metrics import delta_stats, reset_delta_stats

    spec = get_scenario("fig9")
    config = bench_config(spec.dataset, jobs=1)

    reset_delta_stats()
    start = time.perf_counter()
    paired = run_scenario(spec, config)
    paired_seconds = time.perf_counter() - start
    stats = delta_stats()

    os.environ["REPRO_PAIRED_COLLECTION"] = "0"
    try:
        start = time.perf_counter()
        full = run_scenario(spec, config)
        full_seconds = time.perf_counter() - start
    finally:
        del os.environ["REPRO_PAIRED_COLLECTION"]

    record_timing("bench_scenarios/paired", paired_seconds)
    record_timing("bench_scenarios/full", full_seconds)
    emit(
        "paired_vs_full_ab",
        f"fig09 workload ({spec.dataset}): paired {paired_seconds:.2f}s, "
        f"full {full_seconds:.2f}s, speedup {full_seconds / paired_seconds:.2f}x\n"
        f"delta stats: {stats}",
    )
    assert paired.sweep().series == full.sweep().series, "paired run changed results"
    assert stats["incremental"] > 0, "incremental estimator was never selected"
    assert stats["fallback"] == 0, "incremental estimator silently fell back"
    assert paired_seconds < full_seconds * 1.5, (
        f"paired path much slower than full: {paired_seconds:.2f}s vs {full_seconds:.2f}s"
    )


def test_scenario_compile_overhead(benchmark):
    """Compiling a spec to its task batch is negligible next to running it."""
    from repro.scenarios.compiler import compile_scenario
    from repro.scenarios.run import load_scenario_graph

    spec = get_scenario("fig12a")
    config = bench_config(spec.dataset)
    graph = load_scenario_graph(spec, config)

    tasks = benchmark(compile_scenario, spec, graph, config)
    assert len(tasks) == (2 + len(spec.values)) * config.trials
