"""Tests for the frozen scenario data model."""

import pytest

from repro.scenarios.spec import (
    SWEEP_DEFENSE_ARG,
    SWEEP_FLAT,
    PanelSpec,
    ScenarioSpec,
    SeriesSpec,
)


def _panel(*series):
    return PanelSpec(figure="T", series=series)


def _series(name="MGA", **kwargs):
    return SeriesSpec(name=name, attack="degree/mga", **kwargs)


class TestSeriesSpec:
    def test_defaults(self):
        series = _series()
        assert series.protocol == "lfgdpr"
        assert series.defense == ""
        assert series.sweep == "point"

    def test_rejects_unknown_sweep_role(self):
        with pytest.raises(ValueError, match="sweep must be"):
            _series(sweep="wiggle")

    def test_defense_arg_sweep_needs_arg_name(self):
        with pytest.raises(ValueError, match="sweep_arg"):
            _series(defense="detect1", sweep=SWEEP_DEFENSE_ARG)

    def test_defense_arg_sweep_needs_defense(self):
        with pytest.raises(ValueError, match="without a defense"):
            _series(sweep=SWEEP_DEFENSE_ARG, sweep_arg="threshold")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _series().attack = "degree/rva"


class TestPanelSpec:
    def test_duplicate_series_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate series"):
            _panel(_series("MGA"), _series("MGA"))

    def test_empty_panel_rejected(self):
        with pytest.raises(ValueError, match="no series"):
            PanelSpec(figure="T", series=())

    def test_key_defaults_to_figure(self):
        assert _panel(_series()).key == "T"
        assert PanelSpec(figure="T", name="left", series=(_series(),)).key == "left"


class TestScenarioSpec:
    def _spec(self, **kwargs):
        defaults = dict(
            name="t",
            description="test scenario",
            values=(1.0, 2.0),
            panels=(_panel(_series()),),
        )
        defaults.update(kwargs)
        return ScenarioSpec(**defaults)

    def test_valid_spec_builds(self):
        spec = self._spec()
        assert spec.parameter == "epsilon"
        assert len(spec.all_series()) == 1

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            self._spec(metric="pagerank")

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="empty value grid"):
            self._spec(values=())

    def test_rejects_missing_panels(self):
        with pytest.raises(ValueError, match="no panels"):
            self._spec(panels=())

    def test_rejects_duplicate_panel_figures(self):
        with pytest.raises(ValueError, match="panel figure label"):
            self._spec(panels=(_panel(_series()), _panel(_series())))

    def test_sweep_style_requires_point_parameter(self):
        with pytest.raises(ValueError, match="point parameter"):
            self._spec(parameter="threshold")

    def test_defense_style_allows_defense_arg_parameter(self):
        spec = self._spec(
            parameter="threshold",
            seed_style="defense",
            panels=(
                _panel(
                    _series(
                        "Detect1", defense="detect1",
                        sweep=SWEEP_DEFENSE_ARG, sweep_arg="threshold",
                    )
                ),
            ),
        )
        assert spec.seed_style == "defense"

    def test_rejects_unknown_seed_style(self):
        with pytest.raises(ValueError, match="seed_style"):
            self._spec(seed_style="legacy")

    def test_stats_kind_skips_sweep_checks(self):
        spec = ScenarioSpec(
            name="stats", description="d", kind="stats", datasets=("facebook",)
        )
        assert spec.kind == "stats"

    def test_stats_kind_rejects_panels(self):
        with pytest.raises(ValueError, match="stats scenarios"):
            ScenarioSpec(
                name="stats", description="d", kind="stats",
                panels=(_panel(_series()),),
            )

    def test_on_dataset(self):
        spec = self._spec().on_dataset("enron")
        assert spec.dataset == "enron"
        with pytest.raises(KeyError, match="unknown dataset"):
            spec.on_dataset("twitter")

    def test_validate_registries_catches_typo(self):
        spec = self._spec(panels=(_panel(SeriesSpec(name="X", attack="degree/mgaa")),))
        with pytest.raises(KeyError, match="degree/mgaa"):
            spec.validate_registries()

    def test_flat_series_allowed_with_any_parameter(self):
        spec = self._spec(
            parameter="threshold",
            seed_style="defense",
            panels=(_panel(_series("NoDefense", sweep=SWEEP_FLAT)),),
        )
        assert spec.panels[0].series[0].sweep == SWEEP_FLAT
