"""LDP substrate: mechanisms, sparse RR simulation, frequency oracles, budget."""

from repro.ldp.budget import BudgetAllocation, split_budget
from repro.ldp.frequency_oracles import KRR, OLH, OUE, FrequencyOracle
from repro.ldp.mechanisms import (
    calibrate_bit_counts,
    laplace_noise,
    perturb_bits,
    perturb_degree,
    rr_keep_probability,
)
from repro.ldp.perturbation import (
    expected_perturbed_average_degree,
    expected_perturbed_degree,
    perturb_graph,
)

__all__ = [
    "BudgetAllocation",
    "split_budget",
    "KRR",
    "OLH",
    "OUE",
    "FrequencyOracle",
    "calibrate_bit_counts",
    "laplace_noise",
    "perturb_bits",
    "perturb_degree",
    "rr_keep_probability",
    "expected_perturbed_average_degree",
    "expected_perturbed_degree",
    "perturb_graph",
]
