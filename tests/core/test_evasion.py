"""Tests for the Detect2-evading MGA variant (extension)."""

import numpy as np
import pytest

from repro.core.degree_attacks import DegreeMGA
from repro.core.gain import evaluate_attack
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.defenses.base import detection_quality
from repro.defenses.degree_consistency import DegreeConsistencyDefense
from repro.defenses.hybrid import HybridDefense
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(400, 5, 0.5, rng=0)


@pytest.fixture(scope="module")
def threat(graph):
    return ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)


@pytest.fixture(scope="module")
def protocol():
    return LFGDPRProtocol(epsilon=4.0)


def attacked_reports(graph, threat, protocol, attack, seed=0):
    knowledge = AttackerKnowledge.from_protocol(protocol, graph)
    overrides = attack.craft(graph, threat, knowledge, rng=seed)
    return protocol.collect(graph, seed, overrides=overrides)


class TestEvadingReports:
    def test_reported_degree_matches_calibration(self, graph, threat, protocol):
        knowledge = AttackerKnowledge.from_protocol(protocol, graph)
        overrides = DegreeMGA(evade_consistency=True).craft(
            graph, threat, knowledge, rng=0
        )
        from repro.ldp.mechanisms import rr_keep_probability

        keep = rr_keep_probability(knowledge.adjacency_epsilon)
        for report in overrides.values():
            expected = max(
                0.0,
                (report.claimed_neighbors.size - (knowledge.num_nodes - 1) * (1 - keep))
                / (2 * keep - 1),
            )
            assert report.reported_degree == pytest.approx(expected)

    def test_gain_unchanged_by_evasion(self, graph, threat, protocol):
        """Evasion costs nothing: the gain flows through the bit channel."""
        plain = evaluate_attack(graph, protocol, DegreeMGA(), threat, rng=0).total_gain
        evading = evaluate_attack(
            graph, protocol, DegreeMGA(evade_consistency=True), threat, rng=0
        ).total_gain
        assert evading == pytest.approx(plain)


class TestDetectorResponse:
    def test_detect2_blinded(self, graph, threat, protocol):
        """The consistency check sees nothing once both channels agree."""
        plain_reports = attacked_reports(graph, threat, protocol, DegreeMGA(), seed=0)
        evading_reports = attacked_reports(
            graph, threat, protocol, DegreeMGA(evade_consistency=True), seed=0
        )
        defense = DegreeConsistencyDefense()
        plain_recall = detection_quality(
            defense.detect(plain_reports), threat.fake_users
        ).recall
        evading_recall = detection_quality(
            defense.detect(evading_reports), threat.fake_users
        ).recall
        assert plain_recall > 0.9
        assert evading_recall < 0.1

    def test_hybrid_still_catches_evaders(self, graph, threat, protocol):
        """Coordination remains visible: the hybrid's other signals fire."""
        evading_reports = attacked_reports(
            graph, threat, protocol, DegreeMGA(evade_consistency=True), seed=0
        )
        hybrid = HybridDefense(itemset_threshold=50, min_votes=2)
        recall = detection_quality(
            hybrid.detect(evading_reports), threat.fake_users
        ).recall
        assert recall > 0.5
