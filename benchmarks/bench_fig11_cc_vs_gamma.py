"""Fig. 11 — impact of gamma on attacks to clustering coefficient (Exp 6).

Expected shapes (paper): positive correlation with gamma for all attacks;
MGA consistently on top, RVA second.
"""

import numpy as np
import pytest
from conftest import bench_config, emit

from repro.experiments.figures import fig11


@pytest.mark.parametrize("dataset", ["facebook", "enron", "astroph", "gplus"])
def test_fig11_cc_vs_gamma(benchmark, dataset):
    config = bench_config(dataset)

    result = benchmark.pedantic(fig11, args=(dataset, config), rounds=1, iterations=1)

    emit("fig11_cc_vs_gamma", result.format())
    mga = np.array(result.gains_of("MGA"))
    rva = np.array(result.gains_of("RVA"))
    assert np.all(mga >= rva)
    assert mga[-1] > mga[0], "more targets -> larger overall gain"
