"""Tests for the execution backends and the cache-aware task driver.

The two load-bearing guarantees of the engine are pinned here:

* serial and process-pool execution produce **bit-identical** sweeps;
* a warm cache answers a repeated sweep with **zero** trial computations.
"""

import pytest

from repro.engine.cache import NullCache, ResultCache
from repro.engine.executors import (
    ParallelExecutor,
    SerialExecutor,
    execute_task,
    run_tasks,
)
from repro.engine.tasks import TrialTask, derive_trial_seed, graph_fingerprint
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_attack_sweep
from repro.graph.generators import powerlaw_cluster_graph

CONFIG = ExperimentConfig(trials=2, seed=3, cache=False)


class CountingExecutor(SerialExecutor):
    """Serial executor that records how many tasks actually computed."""

    def __init__(self):
        self.executed = 0

    def execute(self, tasks, graph, labels=None):
        self.executed += len(tasks)
        return super().execute(tasks, graph, labels)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(120, 3, 0.4, rng=0)


def small_sweep(graph, executor, cache):
    return run_attack_sweep(
        graph, "toy", "degree_centrality", "epsilon", [2.0, 4.0], CONFIG,
        figure="EngineT", executor=executor, cache=cache,
    )


class TestSerialParallelEquivalence:
    def test_bit_identical_sweeps(self, graph):
        serial = small_sweep(graph, SerialExecutor(), NullCache())
        parallel = small_sweep(graph, ParallelExecutor(jobs=4), NullCache())
        assert serial.series == parallel.series
        assert serial.stderr == parallel.stderr
        assert serial.samples == parallel.samples

    def test_jobs_one_falls_back_to_serial(self, graph):
        assert small_sweep(graph, ParallelExecutor(jobs=1), NullCache()).series == \
            small_sweep(graph, SerialExecutor(), NullCache()).series

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(jobs=0)


class TestCaching:
    def test_warm_cache_skips_all_computation(self, graph, tmp_path):
        cache = ResultCache(tmp_path)
        cold_executor = CountingExecutor()
        cold = small_sweep(graph, cold_executor, cache)
        assert cold_executor.executed == 2 * 3 * CONFIG.trials  # values x attacks x trials

        warm_executor = CountingExecutor()
        warm = small_sweep(graph, warm_executor, ResultCache(tmp_path))
        assert warm_executor.executed == 0
        assert warm.series == cold.series
        assert warm.stderr == cold.stderr

    def test_partial_cache_computes_only_missing(self, graph, tmp_path):
        cache = ResultCache(tmp_path)
        graph_key = graph_fingerprint(graph)
        tasks = [
            TrialTask(
                graph_key=graph_key, metric="degree_centrality",
                attack="degree/rva", protocol="lfgdpr",
                epsilon=4.0, beta=0.05, gamma=0.05,
                seed=derive_trial_seed(0, f"partial|{trial}"), trial=trial,
            )
            for trial in range(3)
        ]
        first = run_tasks(tasks[:1], graph, executor=SerialExecutor(), cache=cache)
        executor = CountingExecutor()
        all_gains = run_tasks(tasks, graph, executor=executor, cache=cache)
        assert executor.executed == 2
        assert all_gains[0] == first[0]

    def test_different_labels_never_share_entries(self, graph, tmp_path):
        """Modularity gains under labelling A must not be reused for B."""
        import numpy as np

        cache = ResultCache(tmp_path)
        labels_a = (np.arange(graph.num_nodes) // 30).astype(np.int64)
        labels_b = (np.arange(graph.num_nodes) % 4).astype(np.int64)
        sweep = lambda labels: run_attack_sweep(  # noqa: E731
            graph, "toy", "modularity", "epsilon", [4.0], CONFIG,
            labels=labels, figure="EngineL",
            executor=SerialExecutor(), cache=cache,
        )
        a = sweep(labels_a)
        hits_before = cache.hits
        b = sweep(labels_b)
        assert cache.hits == hits_before  # nothing reused across labelings
        assert a.series != b.series

    def test_different_graphs_never_share_entries(self, tmp_path):
        graph_a = powerlaw_cluster_graph(60, 3, 0.4, rng=0)
        graph_b = powerlaw_cluster_graph(60, 3, 0.4, rng=1)
        cache = ResultCache(tmp_path)
        sweep = lambda g: run_attack_sweep(  # noqa: E731
            g, "toy", "degree_centrality", "epsilon", [4.0], CONFIG,
            figure="EngineG", executor=SerialExecutor(), cache=cache,
        )
        a = sweep(graph_a)
        b = sweep(graph_b)
        assert a.series != b.series  # same seeds, different graph -> fresh compute


class TestExecuteTask:
    def test_defended_task_runs(self, graph):
        task = TrialTask(
            graph_key="x", metric="degree_centrality", attack="degree/mga",
            protocol="lfgdpr", epsilon=4.0, beta=0.05, gamma=0.05, seed=11,
            defense="detect1", defense_args=(("threshold", 50),),
        )
        undefended = execute_task(
            TrialTask(
                graph_key="x", metric="degree_centrality", attack="degree/mga",
                protocol="lfgdpr", epsilon=4.0, beta=0.05, gamma=0.05, seed=11,
            ),
            graph,
        )
        defended = execute_task(task, graph)
        assert defended >= 0.0 and undefended >= 0.0

    def test_unregistered_factories_supported(self, graph):
        from repro.core.degree_attacks import DegreeRVA
        from repro.protocols.lfgdpr import LFGDPRProtocol

        task = TrialTask(
            graph_key="x", metric="degree_centrality", attack="<custom>",
            protocol="<custom>", epsilon=4.0, beta=0.05, gamma=0.05, seed=11,
        )
        via_factories = execute_task(
            task, graph, attack_factory=DegreeRVA, protocol_factory=LFGDPRProtocol
        )
        via_registry = execute_task(
            TrialTask(
                graph_key="x", metric="degree_centrality", attack="degree/rva",
                protocol="lfgdpr", epsilon=4.0, beta=0.05, gamma=0.05, seed=11,
            ),
            graph,
        )
        assert via_factories == via_registry


class TestOutOfBandLabelsParity:
    def test_parallel_applies_labels_to_every_task(self, graph):
        """Out-of-band labels reach all tasks, whatever labels_key they carry.

        SerialExecutor hands the given labels to every task; the shared-memory
        fan-out must do the same even for tasks whose labels_key is empty, or
        serial and parallel modularity gains would diverge.
        """
        import numpy as np

        labels = (np.arange(graph.num_nodes) // 25).astype(np.int64)
        tasks = [
            TrialTask(
                graph_key=graph_fingerprint(graph), metric="modularity",
                attack="clustering/mga", protocol="lfgdpr",
                epsilon=4.0, beta=0.05, gamma=0.05,
                seed=derive_trial_seed(0, f"labels-parity|{trial}"),
                labels_key="", trial=trial,
            )
            for trial in range(3)
        ]
        serial = SerialExecutor().execute(tasks, graph, labels)
        parallel = ParallelExecutor(jobs=3).execute(tasks, graph, labels)
        assert parallel == serial


class TestCrashRetry:
    """Worker death and stalls: retried transparently, bit-identically.

    Injection rides the fork start method: ``crashkit``'s wrappers are
    monkeypatched over ``_run_shared_chunk`` *before* the pool forks, so
    workers inherit them; a marker file arms exactly one SIGKILL (or hang)
    across all workers and rounds.
    """

    def _arm(self, monkeypatch, tmp_path, wrapper):
        from tests.engine import crashkit

        marker = tmp_path / "tripped"
        monkeypatch.setenv(crashkit.MARKER_ENV, str(marker))
        monkeypatch.setattr(
            "repro.engine.executors._run_shared_chunk", wrapper
        )
        return marker

    def test_sigkilled_worker_is_retried_bit_identically(
        self, graph, monkeypatch, tmp_path
    ):
        from concurrent.futures.process import BrokenProcessPool  # noqa: F401

        from tests.engine import crashkit
        from repro.telemetry.core import Tracer, use_tracer

        marker = self._arm(monkeypatch, tmp_path, crashkit.sigkill_once_chunk)
        with use_tracer(Tracer()) as tracer:
            survived = small_sweep(
                graph, ParallelExecutor(jobs=2, max_retries=2), NullCache()
            )
        assert marker.exists(), "the injected SIGKILL never fired"
        assert tracer.counters["executor.retry"] >= 1
        assert tracer.counters["executor.pool_recreate"] >= 1

        monkeypatch.setattr(
            "repro.engine.executors._run_shared_chunk",
            crashkit.REAL_RUN_SHARED_CHUNK,
        )
        serial = small_sweep(graph, SerialExecutor(), NullCache())
        assert survived.series == serial.series
        assert survived.stderr == serial.stderr

    def test_max_retries_zero_fails_fast(self, graph, monkeypatch, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        from tests.engine import crashkit

        self._arm(monkeypatch, tmp_path, crashkit.sigkill_once_chunk)
        with pytest.raises(BrokenProcessPool):
            small_sweep(
                graph, ParallelExecutor(jobs=2, max_retries=0), NullCache()
            )

    def test_hung_chunk_times_out_and_retries(self, graph, monkeypatch, tmp_path):
        from tests.engine import crashkit
        from repro.telemetry.core import Tracer, use_tracer

        self._arm(monkeypatch, tmp_path, crashkit.hang_once_chunk)
        with use_tracer(Tracer()) as tracer:
            survived = small_sweep(
                graph,
                ParallelExecutor(jobs=2, max_retries=2, task_timeout=2.0),
                NullCache(),
            )
        assert tracer.counters["executor.chunk_timeout"] >= 1
        assert tracer.counters["executor.retry"] >= 1

        monkeypatch.setattr(
            "repro.engine.executors._run_shared_chunk",
            crashkit.REAL_RUN_SHARED_CHUNK,
        )
        serial = small_sweep(graph, SerialExecutor(), NullCache())
        assert survived.series == serial.series

    def test_rejects_bad_retry_parameters(self):
        with pytest.raises(ValueError, match="max_retries"):
            ParallelExecutor(jobs=2, max_retries=-1)
        with pytest.raises(ValueError, match="task_timeout"):
            ParallelExecutor(jobs=2, task_timeout=0)
