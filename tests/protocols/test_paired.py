"""Tests for the paired-run collection path and its bit-identity contract.

``collect_paired`` must be indistinguishable — graph, degree reports and
every downstream estimate — from two independent ``collect`` calls replaying
the same seed.  These tests pin that contract for both protocols, for the
whole evaluation pipeline (undefended and defended), and for the override
plumbing the shared path relies on.
"""

import numpy as np
import pytest

from repro.core.degree_attacks import DegreeMGA
from repro.core.gain import evaluate_attack
from repro.core.threat_model import ThreatModel
from repro.defenses.evaluation import evaluate_defended_attack
from repro.defenses.naive import NaiveTopDegreeDefense
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.base import (
    FakeReport,
    TwoRunPairedCollection,
    apply_degree_overrides,
    apply_overrides,
    apply_overrides_tracked,
)
from repro.protocols.ldpgen import LDPGenProtocol
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(90, 3, 0.4, rng=0)


def replace_overrides(num_nodes):
    return {
        2: FakeReport(claimed_neighbors=[5, 9, 11], reported_degree=3.0),
        7: FakeReport(claimed_neighbors=[2, 30], reported_degree=2.0),
    }


def augment_overrides():
    return {
        4: FakeReport(claimed_neighbors=[8], reported_degree=0.0, augment=True, degree_delta=1.0),
        13: FakeReport(claimed_neighbors=[4, 20], reported_degree=0.0, augment=True, degree_delta=2.0),
    }


def assert_reports_identical(first, second):
    assert first.perturbed_graph.num_nodes == second.perturbed_graph.num_nodes
    assert np.array_equal(first.perturbed_graph.edge_codes, second.perturbed_graph.edge_codes)
    assert np.array_equal(first.reported_degrees, second.reported_degrees)
    assert np.array_equal(first.overridden, second.overridden)
    assert first.adjacency_epsilon == second.adjacency_epsilon
    assert first.degree_epsilon == second.degree_epsilon


class TestSharedCollectionBitIdentity:
    @pytest.mark.parametrize("protocol_factory", [
        lambda: LFGDPRProtocol(epsilon=4.0),
        lambda: LDPGenProtocol(epsilon=4.0, refined_groups=4),
    ])
    @pytest.mark.parametrize("make_overrides", [replace_overrides, lambda *_: augment_overrides()])
    def test_views_match_seed_replayed_collects(self, graph, protocol_factory, make_overrides):
        protocol = protocol_factory()
        overrides = make_overrides(graph.num_nodes)
        seed = 1234
        run = protocol.collect_paired(graph, seed)
        assert_reports_identical(run.before, protocol.collect(graph, seed))
        assert_reports_identical(
            run.after(overrides), protocol.collect(graph, seed, overrides=overrides)
        )

    def test_after_without_overrides_is_the_before_view(self, graph):
        run = LFGDPRProtocol(epsilon=4.0).collect_paired(graph, 7)
        assert run.after(None) is run.before
        assert run.after({}) is run.before

    def test_seeded_after_degrees_match_recount(self, graph):
        """The degree array seeded from honest + net changes is exact."""
        run = LFGDPRProtocol(epsilon=2.0).collect_paired(graph, 3)
        after = run.after(replace_overrides(graph.num_nodes))
        seeded = after.perturbed_graph.degrees()
        rows, cols = after.perturbed_graph.edge_arrays()
        recount = (
            np.bincount(rows, minlength=graph.num_nodes)
            + np.bincount(cols, minlength=graph.num_nodes)
        )
        assert np.array_equal(seeded, recount)

    def test_generator_rejected(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        with pytest.raises(TypeError, match="replayable seed"):
            protocol.collect_paired(graph, np.random.default_rng(0))
        with pytest.raises(TypeError, match="replayable seed"):
            LDPGenProtocol(epsilon=4.0).collect_paired(graph, np.random.default_rng(0))
        with pytest.raises(TypeError, match="replayable seed"):
            TwoRunPairedCollection(protocol, graph, np.random.default_rng(0))


class TestEvaluationPipelineEquivalence:
    """The rewired evaluation matches the legacy two-collection path."""

    @pytest.mark.parametrize("metric", ["degree_centrality", "clustering_coefficient", "modularity"])
    def test_evaluate_attack_matches_legacy(self, graph, metric, monkeypatch):
        labels = np.arange(graph.num_nodes) % 4
        threat = ThreatModel.sample(graph, 0.05, 0.05, rng=1)
        protocol = LFGDPRProtocol(epsilon=4.0)

        outcome = evaluate_attack(
            graph, protocol, DegreeMGA(), threat, metric=metric, rng=11, labels=labels
        )
        monkeypatch.setenv("REPRO_PAIRED_COLLECTION", "0")
        legacy = evaluate_attack(
            graph, protocol, DegreeMGA(), threat, metric=metric, rng=11, labels=labels
        )
        assert np.array_equal(outcome.before, legacy.before)
        assert np.array_equal(outcome.after, legacy.after)
        assert outcome.total_gain == legacy.total_gain

    def test_evaluate_attack_matches_legacy_across_thresholds(self, graph, monkeypatch):
        """Fallback and incremental estimation yield the same bits."""
        threat = ThreatModel.sample(graph, 0.1, 0.05, rng=2)
        protocol = LFGDPRProtocol(epsilon=2.0)
        gains = []
        for threshold in ("0.0", "1.0"):
            monkeypatch.setenv("REPRO_DELTA_THRESHOLD", threshold)
            outcome = evaluate_attack(
                graph, protocol, DegreeMGA(), threat,
                metric="clustering_coefficient", rng=5,
            )
            gains.append(outcome.after.tolist())
        assert gains[0] == gains[1]

    def test_defended_evaluation_matches_legacy(self, graph, monkeypatch):
        threat = ThreatModel.sample(graph, 0.05, 0.05, rng=3)
        protocol = LFGDPRProtocol(epsilon=4.0)
        defense = NaiveTopDegreeDefense()
        outcome = evaluate_defended_attack(
            graph, protocol, DegreeMGA(), defense, threat,
            metric="clustering_coefficient", rng=21,
        )
        monkeypatch.setenv("REPRO_PAIRED_COLLECTION", "0")
        legacy = evaluate_defended_attack(
            graph, protocol, DegreeMGA(), defense, threat,
            metric="clustering_coefficient", rng=21,
        )
        assert np.array_equal(outcome.before, legacy.before)
        assert np.array_equal(outcome.after_defended, legacy.after_defended)
        assert np.array_equal(outcome.flagged, legacy.flagged)

    def test_ldpgen_evaluation_matches_legacy(self, graph, monkeypatch):
        threat = ThreatModel.sample(graph, 0.05, 0.05, rng=4)
        protocol = LDPGenProtocol(epsilon=4.0, refined_groups=4)
        outcome = evaluate_attack(
            graph, protocol, DegreeMGA(), threat, metric="degree_centrality", rng=9
        )
        monkeypatch.setenv("REPRO_PAIRED_COLLECTION", "0")
        legacy = evaluate_attack(
            graph, protocol, DegreeMGA(), threat, metric="degree_centrality", rng=9
        )
        assert np.array_equal(outcome.before, legacy.before)
        assert np.array_equal(outcome.after, legacy.after)


class TestAugmentCollisionRegression:
    """Augment-mode extra edges colliding with surviving RR pairs (the
    scenario RNA creates when its crafted edge survived perturbation)."""

    def test_colliding_claim_deduped_and_degree_shift_exact(self):
        from repro.graph.adjacency import Graph

        perturbed = Graph(6, [(0, 1), (0, 2), (3, 4)])
        overrides = {
            0: FakeReport(
                claimed_neighbors=[1, 5],  # (0, 1) already survived RR
                reported_degree=0.0,
                augment=True,
                degree_delta=2.0,
            )
        }
        graph, overridden = apply_overrides(perturbed, overrides)
        assert overridden.tolist() == [0]
        # The collision is deduplicated: (0, 1) appears once, (0, 5) is new,
        # untouched pairs survive.
        assert sorted(graph.edges()) == [(0, 1), (0, 2), (0, 5), (3, 4)]
        assert graph.num_edges == 4

        noisy = np.array([3.1, 1.0, 1.0, 1.2, 1.2, 0.0])
        reported = apply_degree_overrides(noisy, overrides)
        # Exactly degree_delta on the augmenting user, nobody else moves.
        assert reported[0] == noisy[0] + 2.0
        assert np.array_equal(reported[1:], noisy[1:])

    def test_tracked_changes_exclude_collisions(self):
        from repro.graph.adjacency import Graph

        perturbed = Graph(6, [(0, 1), (0, 2), (3, 4)])
        overrides = {
            0: FakeReport(
                claimed_neighbors=[1, 5], reported_degree=0.0, augment=True, degree_delta=2.0
            )
        }
        graph, overridden, added, removed = apply_overrides_tracked(perturbed, overrides)
        # Only the genuinely new pair is a net addition; nothing was removed
        # (augment keeps the user's RR pairs).
        rows, cols = Graph.from_codes(6, added).edge_arrays()
        assert list(zip(rows.tolist(), cols.tolist())) == [(0, 5)]
        assert removed.size == 0

    def test_replace_readding_dropped_pair_nets_out(self):
        from repro.graph.adjacency import Graph

        perturbed = Graph(5, [(0, 1), (0, 2)])
        overrides = {0: FakeReport(claimed_neighbors=[1, 3], reported_degree=2.0)}
        graph, _, added, removed = apply_overrides_tracked(perturbed, overrides)
        assert sorted(graph.edges()) == [(0, 1), (0, 3)]
        # (0, 1) was dropped and re-claimed: no net change either way.
        add_pairs = list(zip(*Graph.from_codes(5, added).edge_arrays()))
        drop_pairs = list(zip(*Graph.from_codes(5, removed).edge_arrays()))
        assert add_pairs == [(0, 3)]
        assert drop_pairs == [(0, 2)]


class TestVectorizedOverridePlumbing:
    def test_degree_overrides_mixed_modes(self):
        noisy = np.array([1.0, 2.0, 3.0, 4.0])
        overrides = {
            0: FakeReport(claimed_neighbors=[1], reported_degree=9.0),
            2: FakeReport(claimed_neighbors=[3], reported_degree=0.0, augment=True, degree_delta=-1.5),
        }
        result = apply_degree_overrides(noisy, overrides)
        assert result.tolist() == [9.0, 2.0, 1.5, 4.0]
        assert noisy.tolist() == [1.0, 2.0, 3.0, 4.0]  # input untouched

    def test_self_loop_rejected_with_offender_named(self):
        from repro.graph.adjacency import Graph

        perturbed = Graph(4, [(0, 1)])
        overrides = {2: FakeReport(claimed_neighbors=[2], reported_degree=1.0)}
        with pytest.raises(ValueError, match="fake user 2 claims a self-loop"):
            apply_overrides(perturbed, overrides)

    def test_out_of_range_neighbor_rejected_with_offender_named(self):
        from repro.graph.adjacency import Graph

        perturbed = Graph(4, [(0, 1)])
        overrides = {1: FakeReport(claimed_neighbors=[99], reported_degree=1.0)}
        with pytest.raises(ValueError, match="fake user 1 claims out-of-range neighbor 99"):
            apply_overrides(perturbed, overrides)

    def test_out_of_range_fake_id_rejected(self):
        from repro.graph.adjacency import Graph

        perturbed = Graph(4, [(0, 1)])
        overrides = {9: FakeReport(claimed_neighbors=[0], reported_degree=1.0)}
        with pytest.raises(ValueError, match="out of range"):
            apply_overrides(perturbed, overrides)
