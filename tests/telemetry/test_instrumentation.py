"""Engine/scenario instrumentation: spans and counters from real runs.

These tests pin the two telemetry invariants the ISSUE demands:

* **zero interference** — tracing on or off, serial or parallel, results
  stay bit-identical (spans never touch RNG state);
* **faithful accounting** — the counters the CI and the manifest read
  (``cache.hit``, ``batch.tasks``, worker-side ``task.execute`` spans)
  reflect what actually happened.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.engine.cache import NullCache, ResultCache
from repro.engine.executors import ParallelExecutor, SerialExecutor, run_tasks
from repro.engine.result_store import ShardedResultStore
from repro.engine.session import EngineSession
from repro.engine.tasks import TrialTask
from repro.experiments.config import ExperimentConfig
from repro.scenarios.registry import get_scenario
from repro.scenarios.run import load_scenario_graph, run_scenario
from repro.scenarios.compiler import compile_scenario
from repro.telemetry.core import NULL_TRACER, Tracer, current_tracer, use_tracer
from repro.telemetry.progress import ProgressPrinter

CONFIG = ExperimentConfig(trials=2, scale=0.02, seed=0, cache=False)


def _sha256_of(gains):
    payload = json.dumps([float(g) for g in gains]).encode("ascii")
    return hashlib.sha256(payload).hexdigest()


@pytest.fixture(scope="module")
def batch():
    """A real compiled scenario batch (fig6 at the golden scale)."""
    spec = get_scenario("fig6")
    graph = load_scenario_graph(spec, CONFIG)
    return graph, compile_scenario(spec, graph, CONFIG)


class TestTracingDoesNotChangeResults:
    def test_serial_traced_equals_untraced(self, batch):
        graph, tasks = batch
        untraced = run_tasks(tasks, graph, executor=SerialExecutor(), cache=NullCache())
        with use_tracer(Tracer()):
            traced = run_tasks(tasks, graph, executor=SerialExecutor(), cache=NullCache())
        assert _sha256_of(traced) == _sha256_of(untraced)

    def test_parallel_traced_equals_serial_traced(self, batch):
        """sha256(Serial) == sha256(Parallel jobs=4) with tracing active."""
        graph, tasks = batch
        with use_tracer(Tracer()):
            serial = run_tasks(tasks, graph, executor=SerialExecutor(), cache=NullCache())
        with use_tracer(Tracer()) as tracer:
            parallel = run_tasks(
                tasks, graph, executor=ParallelExecutor(jobs=4), cache=NullCache()
            )
            # Worker spans actually travelled back and were re-parented.
            fan = [s for s in tracer.spans if s.name == "executor.fan_out"]
            chunks = [s for s in tracer.spans if s.name == "executor.chunk"]
            executed = [s for s in tracer.spans if s.name == "task.execute"]
            assert len(fan) == 1
            assert chunks, "no worker chunk spans were adopted"
            assert all(c.parent_id == fan[0].span_id for c in chunks)
            chunk_ids = {c.span_id for c in chunks}
            assert len(executed) == len(tasks)
            assert all(s.parent_id in chunk_ids for s in executed)
            assert tracer.counters["executor.fan_out"] == 1
        assert _sha256_of(parallel) == _sha256_of(serial)


class TestDriverCounters:
    def test_cache_hit_miss_and_batch_tasks(self, batch, tmp_path):
        graph, tasks = batch
        cache = ResultCache(tmp_path)
        with use_tracer(Tracer()) as cold:
            run_tasks(tasks, graph, executor=SerialExecutor(), cache=cache)
        assert cold.counters["cache.miss"] == len(tasks)
        assert cold.counters["cache.hit"] == 0
        assert cold.counters["batch.tasks"] == len(tasks)

        with use_tracer(Tracer()) as warm:
            run_tasks(tasks, graph, executor=SerialExecutor(), cache=cache)
        assert warm.counters["cache.hit"] == len(tasks)
        assert warm.counters["cache.miss"] == 0
        # Warm replay computes nothing, so no task spans exist.
        assert not any(s.name == "task.execute" for s in warm.spans)

    def test_serial_fallback_counter(self, batch):
        graph, tasks = batch
        with use_tracer(Tracer()) as tracer:
            run_tasks(tasks[:1], graph, executor=ParallelExecutor(jobs=4), cache=NullCache())
        assert tracer.counters["executor.serial_fallback"] == 1


class TestNoOpPath:
    def test_untraced_run_records_nothing(self, batch):
        """The default tracer stays the stateless singleton: no spans, no
        counters, no allocations attributable to telemetry."""
        graph, tasks = batch
        assert current_tracer() is NULL_TRACER
        run_tasks(tasks[:4], graph, executor=SerialExecutor(), cache=NullCache())
        assert current_tracer() is NULL_TRACER
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.counters == {}


class TestSessionTelemetry:
    def test_session_lifecycle_counters_and_close_stats(self, batch, tmp_path):
        graph, tasks = batch
        tracer = Tracer()
        session = EngineSession(
            jobs=1, cache=ShardedResultStore(tmp_path), telemetry=tracer
        )
        session.add_graph(graph)
        session.run(tasks[:8])
        session.run(tasks[:8])  # warm: answered by the store
        session.close()
        assert current_tracer() is NULL_TRACER, "close must restore the tracer"
        assert tracer.counters["session.create"] == 1
        assert tracer.counters["result_store.miss"] == 8
        assert tracer.counters["result_store.hit"] == 8
        runs = [s for s in tracer.spans if s.name == "session.run"]
        assert len(runs) == 2
        close = [s for s in tracer.spans if s.name == "session.close"]
        assert len(close) == 1
        assert close[0].attributes["hits"] == 8
        assert close[0].attributes["misses"] == 8
        assert close[0].attributes["appends"] == 8

    def test_pool_create_then_reuse(self, batch):
        graph, tasks = batch
        tracer = Tracer()
        with EngineSession(jobs=2, telemetry=tracer) as session:
            session.add_graph(graph)
            session.run(tasks[:12])
            session.run(tasks[:12])
        assert tracer.counters["pool.create"] == 1
        assert tracer.counters["pool.reuse"] == 1
        assert tracer.counters["shm.graph_export"] == 1
        assert tracer.counters["shm.export_bytes"] > 0
        assert any(s.name == "pool.create" for s in tracer.spans)


class TestResultStoreCounters:
    def _task(self):
        return TrialTask(
            graph_key="g", metric="degree_centrality", attack="toy",
            protocol="lf-gdpr", epsilon=4.0, beta=0.05, gamma=0.05,
            seed=1234, figure="T", series="s", value=1.0, trial=0,
        )

    def test_stats_and_counters_track_hits_misses_appends(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        task = self._task()
        with use_tracer(Tracer()) as tracer:
            assert store.get(task) is None
            store.put(task, 0.5)
            assert store.get(task) == 0.5
        assert store.stats() == {
            "hits": 1, "misses": 1, "appends": 1, "migrated": 0,
            "shards_loaded": 0,  # the miss found no shard file to parse
            "reloads": 0,  # nobody else appended behind our back
            "corrupt": 0, "quarantined": 0, "legacy_corrupt": 0,
            "non_durable": 0,  # every append above reached the disk
        }
        assert tracer.counters["result_store.miss"] == 1
        assert tracer.counters["result_store.hit"] == 1
        assert tracer.counters["result_store.append.calls"] == 1
        assert tracer.counters["result_store.append.ns"] >= 0
        # A fresh store sees the appended shard on disk and parses it.
        fresh = ShardedResultStore(tmp_path)
        assert fresh.get(task) == 0.5
        assert fresh.stats()["shards_loaded"] == 1

    def test_legacy_migration_counts(self, tmp_path):
        task = self._task()
        ResultCache(tmp_path).put(task, 0.25)
        store = ShardedResultStore(tmp_path)
        with use_tracer(Tracer()) as tracer:
            assert store.get(task) == 0.25
        assert store.stats()["migrated"] == 1
        assert tracer.counters["result_store.migrated"] == 1


class TestDeltaCounters:
    def _run_incremental(self):
        from repro.graph.generators import erdos_renyi_graph
        from repro.graph.metrics import triangles_per_node, triangles_per_node_incremental

        rng = np.random.default_rng(7)
        graph = erdos_renyi_graph(30, 0.3, rng=2)
        touched = np.array([1, 5, 9])
        triangles_per_node_incremental(
            graph, graph, touched, triangles_per_node(graph)
        )

    def test_incremental_side_fires_counter(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_THRESHOLD", "1.0")
        with use_tracer(Tracer()) as tracer:
            self._run_incremental()
        assert tracer.counters.get("delta.incremental", 0) == 1
        assert "delta.fallback" not in tracer.counters

    def test_fallback_side_fires_counter(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_THRESHOLD", "0.0")
        with use_tracer(Tracer()) as tracer:
            self._run_incremental()
        assert tracer.counters.get("delta.fallback", 0) == 1
        assert "delta.incremental" not in tracer.counters


class TestScenarioTelemetry:
    def test_scenario_spans_and_point_callbacks(self):
        spec = get_scenario("fig6")
        points = []

        class PointRecorder:
            def on_batch_start(self, total):
                pass

            def on_task_done(self, task, gain):
                pass

            def on_point_done(self, figure, series, value, mean, stderr, trials):
                points.append((figure, series, value, mean, stderr, trials))

            def on_batch_done(self, stats):
                pass

        tracer = Tracer()
        tracer.add_callback(PointRecorder())
        with use_tracer(tracer):
            result = run_scenario(spec, CONFIG, cache=NullCache())
        sweep = result.sweep()
        run_spans = [s for s in tracer.spans if s.name == "scenario.run"]
        assert len(run_spans) == 1
        assert run_spans[0].attributes["scenario"] == "fig6"
        assert run_spans[0].attributes["tasks"] == tracer.counters["batch.tasks"]
        panel_spans = [s for s in tracer.spans if s.name == "scenario.panel"]
        assert len(panel_spans) == len(spec.panels)
        point_spans = [s for s in tracer.spans if s.name == "scenario.point"]
        expected_points = sum(
            len(panel.series) * len(spec.values) for panel in spec.panels
        )
        assert len(point_spans) == len(points) == expected_points
        # Point spans carry the aggregated numbers the sweep reports.
        for span in point_spans:
            series = span.attributes["series"]
            assert span.attributes["mean"] in sweep.series[series]
            assert span.attributes["stderr"] in sweep.stderr[series]
            assert span.attributes["trials"] == CONFIG.trials


class TestProgressPrinter:
    def test_progress_lines_and_summary(self, batch):
        import io

        graph, tasks = batch
        stream = io.StringIO()
        tracer = Tracer()
        tracer.add_callback(ProgressPrinter(stream=stream))
        with use_tracer(tracer):
            run_tasks(tasks[:6], graph, executor=SerialExecutor(), cache=NullCache())
        text = stream.getvalue()
        assert "[6/6]" in text
        assert "batch done: 6 tasks (0 from cache)" in text
