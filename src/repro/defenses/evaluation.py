"""Evaluating attacks under countermeasures (Exp 7 and Exp 8).

The defended gain compares the *defended attacked* estimates against the
*clean undefended* estimates:

``Gain_def = sum_t | f~_t( defense(attacked reports) ) - f~_t(clean reports) |``

so a defense scores well only if it both neutralises the fakes and avoids
collateral damage to genuine data — flagging half the graph "stops" the
attack but wrecks the estimates, and the metric charges for that (the
mechanism behind the U-shape of Fig. 12(a) and Naive2's negative results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.base import Attack
from repro.core.gain import METRICS, paired_collection_enabled
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.defenses.base import Defense, DetectionQuality, detection_quality
from repro.graph.adjacency import Graph
from repro.protocols.base import FakeReport, GraphLDPProtocol
from repro.utils.rng import RngLike, child_rng


@dataclass
class DefendedOutcome:
    """Result of one attack-vs-defense evaluation."""

    attack_name: str
    defense_name: str
    metric: str
    targets: np.ndarray
    before: np.ndarray
    after_defended: np.ndarray
    flagged: np.ndarray
    quality: DetectionQuality

    @property
    def per_target_gain(self) -> np.ndarray:
        """Residual gain per target after the defense."""
        return np.abs(self.after_defended - self.before)

    @property
    def total_gain(self) -> float:
        """Residual overall gain after the defense."""
        return float(self.per_target_gain.sum())


def evaluate_defended_attack(
    graph: Graph,
    protocol: GraphLDPProtocol,
    attack: Attack,
    defense: Defense,
    threat: ThreatModel,
    metric: str = "degree_centrality",
    rng: RngLike = 0,
    labels: Optional[np.ndarray] = None,
) -> DefendedOutcome:
    """Run attack + defense with common random numbers and measure the gain.

    Mirrors :func:`repro.core.gain.evaluate_attack` exactly (same child-rng
    keys, so the undefended and defended gains of the same seed are directly
    comparable), inserting ``defense.apply`` between collection and
    estimation of the attacked run.
    """
    if metric not in METRICS:
        raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
    if metric == "modularity" and labels is None:
        raise ValueError("modularity evaluation requires community labels")

    knowledge = AttackerKnowledge.from_protocol(protocol, graph)
    overrides: Dict[int, FakeReport] = attack.craft(
        graph, threat, knowledge, rng=child_rng(rng, "attack-craft")
    )
    protocol_seed = int(child_rng(rng, "protocol-run").integers(2**63 - 1))
    if paired_collection_enabled():
        # The honest collection is shared with the attacked after-run the
        # defense post-processes — one perturbation per evaluation, exactly
        # as in the undefended pipeline.  Repairs rebuild reports without
        # the paired baseline, so defended estimation recomputes fully.
        run = protocol.collect_paired(graph, protocol_seed)
        before_reports = run.before
        after_reports = run.after(overrides)
    else:
        before_reports = protocol.collect(graph, protocol_seed)
        after_reports = protocol.collect(graph, protocol_seed, overrides=overrides)
    defended_reports, flagged = defense.apply(after_reports)

    if metric == "degree_centrality":
        before = protocol.estimate_degree_centrality(before_reports)[threat.targets]
        after = protocol.estimate_degree_centrality(defended_reports)[threat.targets]
    elif metric == "clustering_coefficient":
        before = protocol.estimate_clustering_coefficient(before_reports)[threat.targets]
        after = protocol.estimate_clustering_coefficient(defended_reports)[threat.targets]
    else:
        before = np.array([protocol.estimate_modularity(before_reports, labels)])
        after = np.array([protocol.estimate_modularity(defended_reports, labels)])

    return DefendedOutcome(
        attack_name=attack.name,
        defense_name=defense.name,
        metric=metric,
        targets=threat.targets,
        before=np.asarray(before, dtype=np.float64),
        after_defended=np.asarray(after, dtype=np.float64),
        flagged=flagged,
        quality=detection_quality(flagged, threat.fake_users),
    )
