"""Surrogates for the paper's evaluation datasets (Table II).

The paper evaluates on four SNAP graphs.  This environment is offline, so we
generate deterministic synthetic surrogates matched to each dataset's node
count and average degree (the quantities the attacks and estimators are
sensitive to — see DESIGN.md §2 for the substitution rationale):

========  =========  ============  ===========
Dataset   Nodes      Edges         Avg. degree
========  =========  ============  ===========
facebook  4,039      88,234        43.7
enron     36,692     183,831       10.0
astroph   18,772     198,110       21.1
gplus     107,614    12,238,285    227.4
========  =========  ============  ===========

``load_dataset(name)`` returns the surrogate at its *default scale*: Facebook
is full size, the larger graphs are scaled down (same average degree, fewer
nodes) so that the whole experiment suite runs in minutes on a laptop.  Pass
``scale=1.0`` for the paper-sized versions.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.generators import surrogate_social_graph
from repro.graph.io import read_edge_list
from repro.utils.rng import RngLike, child_rng
from repro.utils.validation import check_in_range

#: Per-process surrogate memo size.  Multi-panel/multi-scenario batches ask
#: for the same ``(name, scale, seed)`` surrogate once per panel; generation
#: is deterministic and graphs are immutable, so one bounded memo per
#: process answers the repeats.  Bounded: at full scale a surrogate can be
#: tens of MB, so the memo must never grow with the scenario count.
_MEMO_SIZE = 8


@dataclass(frozen=True)
class DatasetSpec:
    """Statistics of one paper dataset and surrogate-generation knobs."""

    name: str
    paper_nodes: int
    paper_edges: int
    default_scale: float
    triangle_probability: float
    description: str

    @property
    def paper_average_degree(self) -> float:
        """Average degree of the original SNAP graph."""
        return 2.0 * self.paper_edges / self.paper_nodes

    def nodes_at_scale(self, scale: float) -> int:
        """Surrogate node count at a given scale factor."""
        check_in_range(scale, 0.0, 1.0, "scale")
        return max(64, round(self.paper_nodes * scale))


#: Registry of the four Table II datasets.
DATASETS: Dict[str, DatasetSpec] = {
    "facebook": DatasetSpec(
        name="facebook",
        paper_nodes=4_039,
        paper_edges=88_234,
        default_scale=1.0,
        triangle_probability=0.7,
        description="Ego-network survey of Facebook app users (dense, clustered).",
    ),
    "enron": DatasetSpec(
        name="enron",
        paper_nodes=36_692,
        paper_edges=183_831,
        default_scale=0.12,
        triangle_probability=0.3,
        description="Enron email communication network (sparse).",
    ),
    "astroph": DatasetSpec(
        name="astroph",
        paper_nodes=18_772,
        paper_edges=198_110,
        default_scale=0.2,
        triangle_probability=0.6,
        description="arXiv Astro Physics co-authorship network.",
    ),
    "gplus": DatasetSpec(
        name="gplus",
        paper_nodes=107_614,
        paper_edges=12_238_285,
        default_scale=0.02,
        triangle_probability=0.4,
        description="Google+ social-circle share network (very dense).",
    ),
}


@dataclass(frozen=True)
class RealDatasetSpec:
    """One genuine SNAP dataset: where it lives and how to parse it.

    ``paper_nodes``/``paper_edges`` are the reference counts of the SNAP
    release (the Table II row), so stats tables render real and surrogate
    datasets through one code path.  ``sha256`` optionally pins the digest
    of the *decompressed* edge-list bytes; when ``None`` the digest is
    recorded on first fetch and every later load verifies against it
    (trust-on-first-use, the right default for an offline-developed tool).
    """

    name: str
    url: str
    paper_nodes: int
    paper_edges: int
    description: str
    sha256: Union[str, None] = None
    allow_self_loops: bool = True
    allow_duplicates: bool = True


#: Genuine SNAP releases of the four Table II datasets.  These are fetched
#: once into the content-addressed cache (``repro dataset fetch``), never at
#: import or experiment time.
REAL_DATASETS: Dict[str, RealDatasetSpec] = {
    "snap-facebook": RealDatasetSpec(
        name="snap-facebook",
        url="https://snap.stanford.edu/data/facebook_combined.txt.gz",
        paper_nodes=4_039,
        paper_edges=88_234,
        description="The genuine SNAP ego-Facebook combined edge list.",
    ),
    "snap-enron": RealDatasetSpec(
        name="snap-enron",
        url="https://snap.stanford.edu/data/email-Enron.txt.gz",
        paper_nodes=36_692,
        paper_edges=183_831,
        description="The genuine SNAP email-Enron communication network.",
    ),
    "snap-astroph": RealDatasetSpec(
        name="snap-astroph",
        url="https://snap.stanford.edu/data/ca-AstroPh.txt.gz",
        paper_nodes=18_772,
        paper_edges=198_110,
        description="The genuine SNAP ca-AstroPh co-authorship network.",
    ),
    "snap-gplus": RealDatasetSpec(
        name="snap-gplus",
        url="https://snap.stanford.edu/data/gplus_combined.txt.gz",
        paper_nodes=107_614,
        paper_edges=12_238_285,
        description="The genuine SNAP Google+ share network (very dense).",
    ),
}


def known_dataset_names() -> List[str]:
    """Every loadable dataset name: surrogates first, then real releases."""
    return sorted(DATASETS) + sorted(REAL_DATASETS)


def load_dataset(name: str, scale: float | None = None, rng: RngLike = 0) -> Graph:
    """Load a Table II dataset: surrogate by default, genuine when cached.

    Parameters
    ----------
    name:
        A surrogate — ``facebook``, ``enron``, ``astroph``, ``gplus`` — or a
        fetched real release — ``snap-facebook``, ``snap-enron``,
        ``snap-astroph``, ``snap-gplus``.  Real names load from the
        checksum-verified dataset cache (``fetch_dataset`` /
        ``repro dataset fetch``); ``rng`` is ignored for them — the data is
        the data.
    scale:
        Node-count scale factor in (0, 1].  Defaults to the dataset's
        laptop-friendly ``default_scale``.  The average degree is held at the
        paper value regardless of scale (capped below N).
    rng:
        Seed for deterministic generation; the default (0) makes repeated
        loads identical, which the benchmark harness relies on.

    Loads are memoized per process on the full ``(name, scale, seed)``
    tuple (bounded LRU), so every panel of a multi-panel scenario — and
    every scenario of a batched run — shares one generation of the same
    surrogate.  Passing a live :class:`numpy.random.Generator` bypasses the
    memo: a stateful stream makes repeated loads intentionally different.

    >>> g = load_dataset("facebook")
    >>> g.num_nodes
    4039
    """
    if name.lower() in REAL_DATASETS:
        return load_real_dataset(name, scale=scale)
    spec = _lookup(name)
    if scale is None:
        scale = spec.default_scale
    if isinstance(rng, (int, np.integer)):
        return _load_dataset_memo(spec.name, float(scale), int(rng))
    return _generate(spec, float(scale), rng)


@lru_cache(maxsize=_MEMO_SIZE)
def _load_dataset_memo(name: str, scale: float, seed: int) -> Graph:
    """Deterministic-seed loads, memoized (graphs are immutable values)."""
    return _generate(DATASETS[name], scale, seed)


def _generate(spec: DatasetSpec, scale: float, rng: RngLike) -> Graph:
    num_nodes = spec.nodes_at_scale(scale)
    target_degree = min(spec.paper_average_degree, num_nodes / 4.0)
    return surrogate_social_graph(
        num_nodes,
        target_degree,
        triangle_probability=spec.triangle_probability,
        rng=child_rng(rng, f"dataset-{spec.name}-{num_nodes}"),
    )


def dataset_statistics(name: str, scale: float | None = None, rng: RngLike = 0) -> Tuple[int, int]:
    """(nodes, edges) of the loaded dataset — the Table II row we actually use."""
    graph = load_dataset(name, scale=scale, rng=rng)
    return graph.num_nodes, graph.num_edges


def _lookup(name: str) -> DatasetSpec:
    key = name.lower()
    if key not in DATASETS:
        known = ", ".join(known_dataset_names())
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return DATASETS[key]


def lookup_spec(name: str) -> Union[DatasetSpec, RealDatasetSpec]:
    """The spec (surrogate or real) behind a dataset name, for stats tables."""
    key = name.lower()
    if key in REAL_DATASETS:
        return REAL_DATASETS[key]
    return _lookup(name)


# ----------------------------------------------------------------------
# Real-dataset cache: fetch once, content-addressed, checksum-verified
# ----------------------------------------------------------------------
#
# Layout, next to the result store (both resolve through REPRO_CACHE_DIR):
#
#   <cache>/datasets/<name>/<digest16>/graph.npz   parsed graph (pair codes)
#   <cache>/datasets/<name>/<digest16>/meta.json   digests + provenance
#   <cache>/datasets/<name>/CURRENT                digest16 of the live entry
#
# ``digest16`` is the first 16 hex chars of the sha256 of the decompressed
# edge-list bytes, so a re-fetch that changes content lands in a *new*
# directory and flips the CURRENT pointer — nothing is overwritten in place
# and loads memoized on the old path can never be served as the new data.

_CURRENT_POINTER = "CURRENT"
_FETCH_CHUNK_BYTES = 1 << 20


def dataset_cache_dir(name: str) -> Path:
    """Cache directory of one real dataset."""
    from repro.engine.cache import default_cache_dir

    return default_cache_dir() / "datasets" / name


def _lookup_real(name: str) -> RealDatasetSpec:
    key = name.lower()
    if key not in REAL_DATASETS:
        known = ", ".join(sorted(REAL_DATASETS))
        raise KeyError(f"unknown real dataset {name!r}; known real datasets: {known}")
    return REAL_DATASETS[key]


def cached_dataset_path(name: str) -> Union[Path, None]:
    """The live cache entry's ``graph.npz``, or None when never fetched."""
    spec = _lookup_real(name)
    root = dataset_cache_dir(spec.name)
    pointer = root / _CURRENT_POINTER
    try:
        digest16 = pointer.read_text(encoding="utf-8").strip()
    except OSError:
        return None
    path = root / digest16 / "graph.npz"
    return path if path.is_file() else None


def fetch_dataset(
    name: str, source: Union[str, os.PathLike, None] = None, force: bool = False
) -> Path:
    """Fetch, verify and cache one real dataset; returns its ``graph.npz``.

    Idempotent: a dataset already in the cache returns immediately unless
    ``force`` re-fetches.  ``source`` overrides the spec's URL with a local
    file or mirror URL — the supported path in offline environments.  The
    raw download streams to disk in chunks (gzip is detected by magic and
    decompressed on the fly), is hashed, checked against the spec's pinned
    ``sha256`` if any, and parsed with the strict-but-lenient-where-SNAP-
    needs-it :func:`repro.graph.io.read_edge_list` (node ids remapped to
    dense ``0..n-1`` codes, both edge directions collapsed).  The parsed
    graph lands in a content-addressed directory via atomic renames, so
    concurrent fetchers and crashes can never publish a torn entry.
    """
    spec = _lookup_real(name)
    root = dataset_cache_dir(spec.name)
    if not force:
        cached = cached_dataset_path(spec.name)
        if cached is not None:
            return cached

    root.mkdir(parents=True, exist_ok=True)
    staging = tempfile.mkdtemp(dir=root, prefix=".fetch-")
    try:
        text_path = Path(staging) / "edges.txt"
        digest = _materialize_edge_list(spec, source, text_path)
        if spec.sha256 is not None and digest != spec.sha256:
            raise RuntimeError(
                f"dataset {spec.name!r}: checksum mismatch — expected "
                f"{spec.sha256}, fetched {digest}; refusing to cache"
            )
        graph = read_edge_list(
            text_path,
            allow_self_loops=spec.allow_self_loops,
            allow_duplicates=spec.allow_duplicates,
        )

        entry = Path(staging) / "entry"
        entry.mkdir()
        npz_path = entry / "graph.npz"
        np.savez(
            npz_path,
            num_nodes=np.int64(graph.num_nodes),
            codes=graph.edge_codes.astype(np.int64),
        )
        meta = {
            "name": spec.name,
            "source": str(source) if source is not None else spec.url,
            "sha256": digest,
            "npz_sha256": _file_sha256(npz_path),
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
        }
        (entry / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

        final = root / digest[:16]
        if final.exists():
            shutil.rmtree(final)
        os.replace(entry, final)
        pointer_tmp = Path(staging) / _CURRENT_POINTER
        pointer_tmp.write_text(digest[:16] + "\n", encoding="utf-8")
        os.replace(pointer_tmp, root / _CURRENT_POINTER)
        return final / "graph.npz"
    finally:
        shutil.rmtree(staging, ignore_errors=True)


def _materialize_edge_list(
    spec: RealDatasetSpec, source: Union[str, os.PathLike, None], dest: Path
) -> str:
    """Stream the raw dataset to ``dest`` (decompressed) and return its sha256."""
    if source is not None and Path(source).exists():
        reader = open(source, "rb")
    else:
        url = str(source) if source is not None else spec.url
        try:
            import urllib.request

            reader = urllib.request.urlopen(url)
        except Exception as error:
            raise RuntimeError(
                f"dataset {spec.name!r}: cannot download {url} ({error}); "
                "in offline environments pass a local copy via "
                f"fetch_dataset({spec.name!r}, source=<path>) or "
                f"'repro dataset fetch {spec.name} --source <path>'"
            ) from error
    hasher = hashlib.sha256()
    with reader:
        head = reader.read(2)
        if head == b"\x1f\x8b":
            # Re-open the stream through gzip: feed it a concatenating
            # wrapper so the two sniffed bytes are not lost.
            stream = gzip.GzipFile(fileobj=_Rechained(head, reader))
        else:
            stream = _Rechained(head, reader)
        with open(dest, "wb") as out:
            while True:
                block = stream.read(_FETCH_CHUNK_BYTES)
                if not block:
                    break
                hasher.update(block)
                out.write(block)
    return hasher.hexdigest()


class _Rechained:
    """A minimal binary stream replaying sniffed head bytes before the tail."""

    def __init__(self, head: bytes, tail):
        self._head = head
        self._tail = tail

    def read(self, size: int = -1) -> bytes:
        if self._head:
            if size is None or size < 0 or size >= len(self._head):
                head, self._head = self._head, b""
                rest = self._tail.read(-1 if size is None or size < 0 else size - len(head))
                return head + rest
            head, self._head = self._head[:size], self._head[size:]
            return head
        return self._tail.read(size)


def load_real_dataset(name: str, scale: float | None = None) -> Graph:
    """Load a fetched real dataset from the cache, checksum-verified.

    ``scale`` optionally keeps only the induced subgraph on the first
    ``max(64, round(n * scale))`` remapped nodes — a deterministic shrink
    for quick runs (``None``, the default, loads the full graph).  Loads
    are memoized per process on the *cache entry path*, which embeds the
    content digest: a re-fetch that changes the data flips the pointer to a
    new path and can never be answered by a stale memo entry.
    """
    spec = _lookup_real(name)
    path = cached_dataset_path(spec.name)
    if path is None:
        raise RuntimeError(
            f"real dataset {spec.name!r} is not in the cache; fetch it once "
            f"with 'python -m repro dataset fetch {spec.name}' (offline: add "
            "--source <local file>)"
        )
    if scale is not None:
        check_in_range(scale, 0.0, 1.0, "scale")
    return _load_real_memo(spec.name, scale, str(path))


@lru_cache(maxsize=_MEMO_SIZE)
def _load_real_memo(name: str, scale: float | None, npz_path: str) -> Graph:
    """Verified loads, memoized on (name, scale, content-addressed path)."""
    path = Path(npz_path)
    meta_path = path.parent / "meta.json"
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise RuntimeError(
            f"real dataset {name!r}: cache entry {path.parent} is damaged "
            f"({error}); re-fetch with 'repro dataset fetch {name} --force'"
        ) from error
    digest = _file_sha256(path)
    if digest != meta.get("npz_sha256"):
        raise RuntimeError(
            f"real dataset {name!r}: {path} fails its checksum (expected "
            f"{meta.get('npz_sha256')}, found {digest}); the cache entry is "
            f"corrupt — re-fetch with 'repro dataset fetch {name} --force'"
        )
    with np.load(path) as archive:
        num_nodes = int(archive["num_nodes"])
        codes = archive["codes"].astype(np.int64)
    graph = Graph.from_codes(num_nodes, codes, assume_sorted_unique=True)
    if scale is None:
        return graph
    kept = max(64, round(num_nodes * scale))
    if kept >= num_nodes:
        return graph
    return graph.subgraph(np.arange(kept, dtype=np.int64))


def _file_sha256(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(_FETCH_CHUNK_BYTES), b""):
            hasher.update(block)
    return hasher.hexdigest()
