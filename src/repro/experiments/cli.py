"""Command-line interface: regenerate any paper artifact from the shell.

Examples
--------
List everything that can be run::

    python -m repro list

Regenerate Fig. 6 for the Facebook surrogate at a laptop-friendly scale::

    python -m repro fig6 --dataset facebook --scale 0.2 --trials 2

Print Table II::

    python -m repro table2
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import figures
from repro.experiments.config import DATASET_NAMES, ExperimentConfig
from repro.experiments.reporting import format_table

#: Figure drivers that take (dataset, config).
_PER_DATASET: Dict[str, Callable] = {
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
}

#: Figure drivers that take (config, dataset) and default to facebook.
_DEFENSE_FIGURES: Dict[str, Callable] = {
    "fig12a": figures.fig12a,
    "fig12b": figures.fig12b,
    "fig13a": figures.fig13a,
    "fig13b": figures.fig13b,
}

#: Two-panel protocol comparisons.
_PROTOCOL_FIGURES: Dict[str, Callable] = {
    "fig14": figures.fig14,
    "fig15": figures.fig15,
}

ARTIFACTS = ["table2", *_PER_DATASET, *_DEFENSE_FIGURES, *_PROTOCOL_FIGURES]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'Data Poisoning Attacks to "
        "LDP Protocols for Graphs' (ICDE 2025).",
    )
    parser.add_argument(
        "artifact",
        choices=["list", *ARTIFACTS],
        help="which artifact to regenerate (or 'list' to enumerate them)",
    )
    parser.add_argument(
        "--dataset",
        default="facebook",
        choices=DATASET_NAMES,
        help="dataset surrogate (per-dataset figures only)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1]; default: the dataset's laptop scale",
    )
    parser.add_argument("--trials", type=int, default=2, help="trials per data point")
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument("--epsilon", type=float, default=4.0, help="default privacy budget")
    parser.add_argument("--beta", type=float, default=0.05, help="fake-user fraction")
    parser.add_argument("--gamma", type=float, default=0.05, help="target fraction")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for trial execution (results are identical "
        "for any value; >1 uses a process pool)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every trial instead of reusing the on-disk result "
        "cache (see REPRO_CACHE_DIR)",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.artifact == "list":
        lines: List[str] = ["available artifacts:"]
        lines.append("  table2       dataset statistics")
        for name in _PER_DATASET:
            lines.append(f"  {name:<12} per-dataset attack sweep (use --dataset)")
        for name in _DEFENSE_FIGURES:
            lines.append(f"  {name:<12} countermeasure sweep (facebook)")
        for name in _PROTOCOL_FIGURES:
            lines.append(f"  {name:<12} LF-GDPR vs LDPGen comparison")
        print("\n".join(lines), file=out)
        return 0

    config = ExperimentConfig(
        beta=args.beta, gamma=args.gamma, epsilon=args.epsilon,
        trials=args.trials, seed=args.seed, scale=args.scale,
        jobs=args.jobs, cache=not args.no_cache,
    )

    if args.artifact == "table2":
        rows = figures.table2_rows(config)
        print(
            format_table(
                ["dataset", "paper nodes", "paper edges", "surrogate nodes", "surrogate edges"],
                rows,
                title="Table II",
            ),
            file=out,
        )
        return 0

    if args.artifact in _PER_DATASET:
        result = _PER_DATASET[args.artifact](args.dataset, config)
        print(result.format(), file=out)
        return 0

    if args.artifact in _DEFENSE_FIGURES:
        result = _DEFENSE_FIGURES[args.artifact](config, dataset=args.dataset)
        print(result.format(), file=out)
        return 0

    results = _PROTOCOL_FIGURES[args.artifact](config, dataset=args.dataset)
    for sweep in results.values():
        print(sweep.format(), file=out)
        print(file=out)
    return 0
