"""Tests for cross-trial batched dispatch of same-point task groups.

The batched kernel path is pure reordering: for any task list it must
produce gains bit-identical to the scalar per-trial loop, emit the same
``task.execute`` span accounting, and share cache entries with the scalar
path in both directions.  These tests pin that contract plus the routing
rules (who batches, who falls back) and the ``REPRO_BATCH_TRIALS`` knob.
"""

import numpy as np
import pytest

from repro.engine.cache import NullCache, ResultCache
from repro.engine.executors import SerialExecutor, execute_task, run_tasks
from repro.engine.kernels import (
    BATCH_TRIALS_ENV,
    batch_trials_enabled,
    execute_tasks_grouped,
    group_by_point,
    point_key,
)
from repro.engine.tasks import TrialTask, derive_trial_seed, graph_fingerprint
from repro.graph.generators import powerlaw_cluster_graph
from repro.protocols.lfgdpr import LFGDPRProtocol
from repro.telemetry.core import Tracer, use_tracer


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(120, 3, 0.4, rng=0)


@pytest.fixture(scope="module")
def labels(graph):
    return (np.arange(graph.num_nodes) // 30).astype(np.int64)


def make_tasks(graph, metric, attack, trials, *, epsilon=2.0, tag="kern", **extra):
    return [
        TrialTask(
            graph_key=graph_fingerprint(graph), metric=metric, attack=attack,
            protocol="lfgdpr", epsilon=epsilon, beta=0.05, gamma=0.05,
            seed=derive_trial_seed(0, f"{tag}|{metric}|{attack}|{epsilon}|{trial}"),
            trial=trial, **extra,
        )
        for trial in range(trials)
    ]


class TestPointGrouping:
    def test_trials_of_one_point_share_a_key(self, graph):
        tasks = make_tasks(graph, "degree_centrality", "degree/rva", 3)
        keys = {point_key(task) for task in tasks}
        assert len(keys) == 1
        assert group_by_point(tasks) == [[0, 1, 2]]

    def test_identity_fields_split_groups(self, graph):
        base = make_tasks(graph, "degree_centrality", "degree/rva", 2)
        other_eps = make_tasks(
            graph, "degree_centrality", "degree/rva", 2, epsilon=4.0
        )
        other_metric = make_tasks(graph, "clustering_coefficient", "clustering/mga", 2)
        defended = [
            TrialTask(
                graph_key=base[0].graph_key, metric="degree_centrality",
                attack="degree/rva", protocol="lfgdpr", epsilon=2.0,
                beta=0.05, gamma=0.05, seed=base[t].seed, trial=t,
                defense="detect1", defense_args=(("threshold", 50),),
            )
            for t in range(2)
        ]
        tasks = base + other_eps + other_metric + defended
        groups = group_by_point(tasks)
        assert groups == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_interleaved_trials_regroup_in_input_order(self, graph):
        a = make_tasks(graph, "degree_centrality", "degree/rva", 2)
        b = make_tasks(graph, "degree_centrality", "degree/mga", 2)
        interleaved = [a[0], b[0], a[1], b[1]]
        assert group_by_point(interleaved) == [[0, 2], [1, 3]]


class TestBatchTrialsKnob:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(BATCH_TRIALS_ENV, raising=False)
        assert batch_trials_enabled()

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv(BATCH_TRIALS_ENV, "0")
        assert not batch_trials_enabled()

    def test_one_enables(self, monkeypatch):
        monkeypatch.setenv(BATCH_TRIALS_ENV, "1")
        assert batch_trials_enabled()


METRIC_ATTACKS = [
    ("degree_centrality", "degree/rva"),
    ("degree_centrality", "degree/mga"),
    ("clustering_coefficient", "clustering/mga"),
    ("modularity", "clustering/mga"),
]


class TestBatchedScalarEquality:
    @pytest.mark.parametrize("metric,attack", METRIC_ATTACKS)
    def test_gains_bit_identical(self, graph, labels, metric, attack, monkeypatch):
        tasks = make_tasks(graph, metric, attack, 4)
        task_labels = labels if metric == "modularity" else None
        monkeypatch.setenv(BATCH_TRIALS_ENV, "1")
        batched = execute_tasks_grouped(tasks, graph, task_labels)
        monkeypatch.setenv(BATCH_TRIALS_ENV, "0")
        scalar = execute_tasks_grouped(tasks, graph, task_labels)
        direct = [execute_task(task, graph, task_labels) for task in tasks]
        assert batched == scalar == direct

    def test_mixed_points_keep_input_order(self, graph, monkeypatch):
        a = make_tasks(graph, "degree_centrality", "degree/rva", 3)
        b = make_tasks(graph, "degree_centrality", "degree/mga", 3, epsilon=4.0)
        interleaved = [a[0], b[0], a[1], b[1], a[2], b[2]]
        monkeypatch.setenv(BATCH_TRIALS_ENV, "1")
        batched = execute_tasks_grouped(interleaved, graph)
        expected = [execute_task(task, graph) for task in interleaved]
        assert batched == expected


class TestRoutingAndCounters:
    def test_batched_group_counts_tasks_and_spans(self, graph, monkeypatch):
        monkeypatch.setenv(BATCH_TRIALS_ENV, "1")
        tasks = make_tasks(graph, "degree_centrality", "degree/rva", 3)
        with use_tracer(Tracer()) as tracer:
            execute_tasks_grouped(tasks, graph)
        assert tracer.counters.get("kernel.batched") == 3
        assert "kernel.scalar" not in tracer.counters
        executed = [s for s in tracer.spans if s.name == "task.execute"]
        assert len(executed) == len(tasks)
        assert sorted(s.attributes["trial"] for s in executed) == [0, 1, 2]

    def test_disabled_env_routes_scalar(self, graph, monkeypatch):
        monkeypatch.setenv(BATCH_TRIALS_ENV, "0")
        tasks = make_tasks(graph, "degree_centrality", "degree/rva", 3)
        with use_tracer(Tracer()) as tracer:
            execute_tasks_grouped(tasks, graph)
        assert tracer.counters.get("kernel.scalar") == 3
        assert "kernel.batched" not in tracer.counters
        assert len([s for s in tracer.spans if s.name == "task.execute"]) == 3

    def test_singletons_route_scalar(self, graph, monkeypatch):
        monkeypatch.setenv(BATCH_TRIALS_ENV, "1")
        tasks = make_tasks(graph, "degree_centrality", "degree/rva", 1)
        with use_tracer(Tracer()) as tracer:
            execute_tasks_grouped(tasks, graph)
        assert tracer.counters.get("kernel.scalar") == 1

    def test_defended_tasks_route_scalar(self, graph, monkeypatch):
        monkeypatch.setenv(BATCH_TRIALS_ENV, "1")
        tasks = [
            TrialTask(
                graph_key=graph_fingerprint(graph), metric="degree_centrality",
                attack="degree/rva", protocol="lfgdpr", epsilon=2.0,
                beta=0.05, gamma=0.05,
                seed=derive_trial_seed(0, f"defended|{trial}"), trial=trial,
                defense="detect1", defense_args=(("threshold", 50),),
            )
            for trial in range(2)
        ]
        with use_tracer(Tracer()) as tracer:
            gains = execute_tasks_grouped(tasks, graph)
        assert tracer.counters.get("kernel.scalar") == 2
        assert gains == [execute_task(task, graph) for task in tasks]


class TestCacheInterchangeability:
    def test_batched_cold_fills_cache_scalar_warm_reads_it(
        self, graph, tmp_path, monkeypatch
    ):
        tasks = make_tasks(graph, "clustering_coefficient", "clustering/mga", 3)
        monkeypatch.setenv(BATCH_TRIALS_ENV, "1")
        cold = run_tasks(
            tasks, graph, executor=SerialExecutor(), cache=ResultCache(tmp_path)
        )
        monkeypatch.setenv(BATCH_TRIALS_ENV, "0")
        warm_cache = ResultCache(tmp_path)
        warm = run_tasks(tasks, graph, executor=SerialExecutor(), cache=warm_cache)
        assert warm == cold
        assert warm_cache.hits == len(tasks)
        fresh = run_tasks(tasks, graph, executor=SerialExecutor(), cache=NullCache())
        assert fresh == cold


class TestCollectPairedBatch:
    @pytest.mark.parametrize("metric", [
        "degree_centrality", "clustering_coefficient", "modularity",
    ])
    def test_runs_bit_identical_to_collect_paired(self, graph, labels, metric):
        protocol = LFGDPRProtocol(epsilon=2.0)
        seeds = [3, 11, 27]
        batch_labels = labels if metric == "modularity" else None
        runs = protocol.collect_paired_batch(
            graph, seeds, metric=metric, labels=batch_labels
        )
        assert len(runs) == len(seeds)
        for seed, run in zip(seeds, runs):
            single = protocol.collect_paired(graph, seed)
            assert np.array_equal(
                run.before.perturbed_graph.edge_codes,
                single.before.perturbed_graph.edge_codes,
            )
            assert np.array_equal(
                run.before.reported_degrees, single.before.reported_degrees
            )

    def test_empty_seed_list(self, graph):
        assert LFGDPRProtocol(epsilon=2.0).collect_paired_batch(graph, []) == []
