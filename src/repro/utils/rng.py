"""Seeded random-number-generation helpers.

Every stochastic component in this library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  Centralising the coercion here
keeps experiments reproducible: the experiment runner seeds one root generator
and derives independent child streams for the protocol noise, the attack
randomness, and each trial.

The *common random numbers* evaluation used to measure attack gain (see
``repro.core.gain``) relies on being able to derive the *same* child stream
twice, which :func:`child_rng` supports through a stable string key.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Union

import numpy as np

#: Anything accepted by :func:`ensure_rng`.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh non-deterministic generator; an ``int`` or a
    :class:`~numpy.random.SeedSequence` seeds a new generator; an existing
    generator is returned unchanged.

    >>> gen = ensure_rng(7)
    >>> gen2 = ensure_rng(7)
    >>> gen.integers(100) == gen2.integers(100)
    True
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(rng).__name__}"
    )


def _key_to_int(key: str) -> int:
    """Hash a string key into a stable 64-bit integer."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def child_rng(seed: RngLike, key: str) -> np.random.Generator:
    """Derive a named, reproducible child generator from ``seed``.

    The same ``(seed, key)`` pair always yields an identical stream, while
    different keys yield (statistically) independent streams.  This is the
    mechanism behind paired before/after protocol runs: both runs ask for the
    child keyed ``"protocol-noise"`` and therefore see identical perturbation
    randomness for genuine users.

    ``seed`` must be an ``int`` or ``SeedSequence`` for determinism; passing a
    ``Generator`` derives the child from a draw of that generator (still
    usable, but not replayable).
    """
    key_int = _key_to_int(key)
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(np.random.SeedSequence(entropy=[int(seed), key_int]))
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy if seed.entropy is not None else 0
        if isinstance(entropy, (int, np.integer)):
            entropy = [int(entropy)]
        return np.random.default_rng(np.random.SeedSequence(entropy=[*entropy, key_int]))
    generator = ensure_rng(seed)
    drawn = int(generator.integers(0, 2**63 - 1))
    return np.random.default_rng(np.random.SeedSequence(entropy=[drawn, key_int]))


def spawn_rngs(rng: RngLike, count: int) -> Iterator[np.random.Generator]:
    """Yield ``count`` independent generators derived from ``rng``.

    Useful for per-trial streams in the experiment runner.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(rng)
    seeds = root.integers(0, 2**63 - 1, size=count)
    for seed in seeds:
        yield np.random.default_rng(int(seed))
