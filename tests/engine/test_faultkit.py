"""Disk-fault injection across the storage plane (via tests.engine.faultkit).

Pinned here:

* injected faults are scoped — only descriptors under the armed root fail;
* a two-process append race with a torn write mid-line loses nothing it
  shouldn't: the reader recovers every intact record (including the one a
  healthy writer appended *behind* the torn fragment) and quarantines
  exactly the fragment;
* ``ENOSPC`` mid-sweep degrades the store to the in-memory overlay: the
  sweep finishes, the session knows exactly which results are non-durable,
  and a resume against the same root recomputes only those;
* lease heartbeats ride out transient write/read failures without
  self-evicting, and a claim hitting a disk fault fails soft;
* a failed shared-memory export leaves the graph store closable with no
  leaked segments.

Set ``REPRO_CHAOS=1`` to widen the torn-write position matrix (the CI
chaos job does).
"""

import errno
import io
import json
import multiprocessing
import os
import time
import warnings

import pytest

from repro.engine.cache import CACHE_VERSION, NullCache
from repro.engine.distributed import DistributedExecutor, LeaseDirectory
from repro.engine.executors import SerialExecutor, run_tasks
from repro.engine.graph_store import GraphStore
from repro.engine.integrity import (
    REASON_TORN_LINE,
    Quarantine,
    canonical_json,
    stamp_checksum,
)
from repro.engine.result_store import ShardedResultStore
from repro.engine.tasks import (
    TrialTask,
    derive_trial_seed,
    graph_fingerprint,
    identity_payload,
)
from repro.graph.adjacency import Graph
from repro.graph.generators import powerlaw_cluster_graph
from tests.engine import faultkit

#: REPRO_CHAOS=1 (the CI chaos matrix) sweeps many torn positions.
TORN_POSITIONS = (
    (3, 10, 25, 60, 120) if os.environ.get("REPRO_CHAOS") == "1" else (25,)
)


class CountingExecutor(SerialExecutor):
    def __init__(self):
        self.executed = 0

    def execute(self, tasks, graph, labels=None):
        self.executed += len(tasks)
        return super().execute(tasks, graph, labels)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(100, 3, 0.4, rng=0)


def make_task(graph_key, index, tag="fault"):
    return TrialTask(
        graph_key=graph_key, metric="degree_centrality",
        attack="degree/rva", protocol="lfgdpr",
        epsilon=4.0, beta=0.05, gamma=0.05,
        seed=derive_trial_seed(0, f"{tag}|{index}"), trial=index,
    )


def make_tasks(graph, count, tag="fault"):
    graph_key = graph_fingerprint(graph)
    return [make_task(graph_key, index, tag) for index in range(count)]


def same_shard_tasks(graph, tag="torn"):
    """Two tasks whose content hashes land in the same shard file."""
    graph_key = graph_fingerprint(graph)
    by_prefix = {}
    for index in range(4096):
        task = make_task(graph_key, index, tag)
        bucket = by_prefix.setdefault(task.content_hash()[:2], [])
        bucket.append(task)
        if len(bucket) == 2:
            return bucket
    raise AssertionError("unreachable: 4096 hashes must collide in 256 shards")


class TestInjectorScoping:
    def test_unmatched_descriptors_pass_through(self, tmp_path, monkeypatch):
        injector = (
            faultkit.FaultInjector(tmp_path / "cache").fail().install(monkeypatch)
        )
        outside = tmp_path / "outside.txt"
        descriptor = os.open(outside, os.O_WRONLY | os.O_CREAT, 0o644)
        assert os.write(descriptor, b"hello") == 5
        os.close(descriptor)
        assert outside.read_bytes() == b"hello"
        assert injector.tripped == 0

    def test_matched_write_fails_with_the_armed_errno(self, tmp_path, monkeypatch):
        root = tmp_path / "cache"
        root.mkdir()
        injector = (
            faultkit.FaultInjector(root).fail(errno.EIO).install(monkeypatch)
        )
        descriptor = os.open(root / "victim", os.O_WRONLY | os.O_CREAT, 0o644)
        with pytest.raises(OSError) as excinfo:
            os.write(descriptor, b"doomed")
        os.close(descriptor)
        assert excinfo.value.errno == errno.EIO
        assert injector.tripped == 1

    def test_short_writes_exercise_the_store_write_loop(
        self, graph, tmp_path, monkeypatch
    ):
        injector = (
            faultkit.FaultInjector(tmp_path).short_writes(7).install(monkeypatch)
        )
        store = ShardedResultStore(tmp_path)
        tasks = make_tasks(graph, 5, "short")
        for index, task in enumerate(tasks):
            store.put(task, float(index))
        assert injector.tripped > 0, "the fault never engaged"
        fresh = ShardedResultStore(tmp_path)
        assert [fresh.get(task) for task in tasks] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert fresh.corrupt == 0


def _torn_then_healthy(root, torn_at, graph_seed, torn_done, healthy_done):
    """Fork target: tear one append, then (other process) append behind it."""
    graph = powerlaw_cluster_graph(100, 3, 0.4, rng=graph_seed)
    torn_task, healthy_task = same_shard_tasks(graph)
    store = ShardedResultStore(root)
    if torn_done is not None:
        injector = faultkit.FaultInjector(root).torn_write(torn_at)
        os.write = injector.write  # fork-local: only this child is broken
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store.put(torn_task, 1.0)  # tears mid-line, degrades in-memory
        assert injector.tripped == 1
        torn_done.set()
    else:
        healthy_done.wait(timeout=60)
        store.put(healthy_task, 2.0)


class TestTornWriteConcurrency:
    @pytest.mark.parametrize("torn_at", TORN_POSITIONS)
    def test_reader_recovers_intact_records_quarantines_the_fragment(
        self, graph, tmp_path, torn_at
    ):
        """Satellite: two-process appends, one torn mid-line.

        The torn fragment has no newline, so the healthy process's
        O_APPEND line lands directly behind it and both read back as one
        merged line.  The reader must salvage the healthy record and
        quarantine exactly the fragment.
        """
        context = multiprocessing.get_context("fork")
        torn_done = context.Event()
        workers = [
            context.Process(
                target=_torn_then_healthy,
                args=(tmp_path, torn_at, 0, torn_done, None),
            ),
            context.Process(
                target=_torn_then_healthy,
                args=(tmp_path, torn_at, 0, None, torn_done),
            ),
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

        torn_task, healthy_task = same_shard_tasks(graph)
        reader = ShardedResultStore(tmp_path)
        assert reader.get(healthy_task) == 2.0, (
            "the record behind the torn fragment must be salvaged"
        )
        assert reader.get(torn_task) is None, (
            "the torn record was never durable; it must read as a miss"
        )
        assert reader.corrupt == 1
        (record,) = reader.quarantine.entries()
        assert record["reason"] == REASON_TORN_LINE
        assert len(record["raw"]) == torn_at, (
            "exactly the torn fragment is quarantined"
        )


class TestEnospcDegradation:
    def _line_sizes(self, tasks, gains):
        return [
            len(canonical_json(stamp_checksum({
                "cache_version": CACHE_VERSION,
                "hash": task.content_hash(),
                "task": identity_payload(task),
                "gain": float(gain),
            })).encode("utf-8")) + 1
            for task, gain in zip(tasks, gains)
        ]

    def test_sweep_finishes_and_resume_recomputes_only_missing(
        self, graph, tmp_path, monkeypatch
    ):
        tasks = make_tasks(graph, 10, "enospc")
        expected = run_tasks(
            tasks, graph, executor=SerialExecutor(), cache=NullCache()
        )
        durable = 3
        budget = sum(self._line_sizes(tasks, expected)[:durable])

        root = tmp_path / "cache"
        injector = (
            faultkit.FaultInjector(root).enospc_after(budget).install(monkeypatch)
        )
        store = ShardedResultStore(root)
        with pytest.warns(RuntimeWarning, match="NOT durable"):
            gains = run_tasks(
                tasks, graph, executor=SerialExecutor(), cache=store
            )
        assert gains == expected, "the sweep must finish despite the full disk"
        assert store.degraded
        assert store.appends == durable
        assert store.non_durable_count == len(tasks) - durable
        assert {p["hash"] for p in store.non_durable_tasks()} == {
            task.content_hash() for task in tasks[durable:]
        }

        # Resume against the same root: only the non-durable tasks miss.
        injector.disarm()
        executor = CountingExecutor()
        replay = run_tasks(
            tasks, graph, executor=executor, cache=ShardedResultStore(root)
        )
        assert executor.executed == len(tasks) - durable
        assert replay == expected

    def test_backlog_flushes_once_the_disk_recovers(
        self, graph, tmp_path, monkeypatch
    ):
        tasks = make_tasks(graph, 4, "flush")
        root = tmp_path / "cache"
        injector = (
            faultkit.FaultInjector(root).enospc_after(0).install(monkeypatch)
        )
        store = ShardedResultStore(root)
        with pytest.warns(RuntimeWarning, match="NOT durable"):
            for index, task in enumerate(tasks[:3]):
                store.put(task, float(index))
        assert store.non_durable_count == 3 and store.appends == 0

        injector.disarm()
        store.put(tasks[3], 3.0)  # first healthy append retries the backlog
        assert store.non_durable_count == 0
        assert store.appends == 4
        fresh = ShardedResultStore(root)
        assert [fresh.get(task) for task in tasks] == [0.0, 1.0, 2.0, 3.0]

    def test_degraded_results_survive_refresh(self, graph, tmp_path, monkeypatch):
        (task,) = make_tasks(graph, 1, "overlay")
        root = tmp_path / "cache"
        faultkit.FaultInjector(root).enospc_after(0).install(monkeypatch)
        store = ShardedResultStore(root)
        with pytest.warns(RuntimeWarning):
            store.put(task, 9.0)
        store.refresh()
        assert store.get(task) == 9.0, (
            "an overlay-held result exists nowhere else; refresh must keep it"
        )


class TestLeaseFaults:
    BOUNDS = (0, 255)

    def test_heartbeat_survives_write_faults_without_self_evicting(
        self, tmp_path, monkeypatch
    ):
        leases = LeaseDirectory(tmp_path, "steady", ttl=60)
        assert leases.try_claim(self.BOUNDS)
        injector = (
            faultkit.FaultInjector(tmp_path).fail(errno.ENOSPC).install(monkeypatch)
        )
        assert leases.heartbeat_all() == 0
        assert leases.skipped >= 1
        assert leases.lost == 0
        assert leases.holds(self.BOUNDS), "a write hiccup must not drop the lease"

        injector.disarm()
        assert leases.heartbeat_all() == 1
        assert leases.holds(self.BOUNDS)

    def test_heartbeat_survives_read_faults_without_self_evicting(
        self, tmp_path, monkeypatch
    ):
        leases = LeaseDirectory(tmp_path, "steady", ttl=60)
        assert leases.try_claim(self.BOUNDS)

        def refuse(*args, **kwargs):
            raise OSError(errno.EIO, "injected read failure")

        monkeypatch.setattr("repro.engine.distributed.json.load", refuse)
        assert leases.heartbeat_all() == 0
        assert leases.skipped == 1 and leases.lost == 0
        assert leases.holds(self.BOUNDS)
        monkeypatch.undo()
        assert leases.heartbeat_all() == 1

    def test_reclaim_hitting_disk_fault_fails_soft(self, tmp_path, monkeypatch):
        dead = LeaseDirectory(tmp_path, "dead", ttl=60)
        assert dead.try_claim(self.BOUNDS)
        vulture = LeaseDirectory(tmp_path, "vulture", ttl=0.05)
        assert not vulture.try_claim(self.BOUNDS)  # first sight starts the clock
        time.sleep(0.1)
        injector = (
            faultkit.FaultInjector(tmp_path).fail(errno.ENOSPC).install(monkeypatch)
        )
        assert not vulture.try_claim(self.BOUNDS), (
            "a reclaim that cannot write must fail soft, not raise"
        )
        injector.disarm()
        assert vulture.try_claim(self.BOUNDS)


class TestDistributedUnderDiskFaults:
    def test_drive_completes_with_non_durable_results(self, graph, tmp_path, monkeypatch):
        tasks = make_tasks(graph, 8, "distfault")
        expected = run_tasks(
            tasks, graph, executor=SerialExecutor(), cache=NullCache()
        )
        root = tmp_path / "cache"
        faultkit.FaultInjector(root).enospc_after(0).install(monkeypatch)
        store = ShardedResultStore(root)
        executor = DistributedExecutor(
            store, worker_id="faulty", lease_ttl=60, poll_interval=0.05
        )
        with pytest.warns(RuntimeWarning, match="NOT durable"):
            gains = executor.execute(tasks, graph)
        assert gains == expected
        assert store.non_durable_count == len(tasks)
        assert store.appends == 0


class TestGraphStoreFaults:
    def test_failed_export_leaks_no_segments(self, graph, monkeypatch):
        store = GraphStore()
        graph_key, _ = store.add(graph)

        def refuse(self):
            raise OSError(errno.ENOSPC, "injected shm exhaustion")

        monkeypatch.setattr(Graph, "to_shared", refuse)
        with pytest.raises(OSError):
            store.export_graph(graph_key)
        assert store._segments == [], "a failed export must not leak a segment"
        store.close()  # must not raise
        with pytest.raises(RuntimeError):
            store.export_graph(graph_key)
