"""Server-side estimators and the triangle calibration of LF-GDPR.

Implements, verbatim, the correction formulas the paper builds its clustering
attacks around:

* degree estimation from the perturbed adjacency matrix (randomized-response
  count calibration) and its fusion with the Laplace-perturbed self-report;
* the triangle calibration ``R(.)`` of Eq. (16): the observed triangle count
  around a node in the perturbed graph is a mixture of surviving true
  triangles (Case 1), half-true triangles (Case 2), and pure noise triangles
  (Case 3) — ``R`` inverts that mixture;
* the clustering-coefficient estimator of Eq. (15) and a modularity
  estimator for a server-held partition.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import BitMatrix, should_use_packed
from repro.graph.metrics import edge_density, triangles_per_node
from repro.graph.streaming import should_stream, streaming_intra_community_edges
from repro.ldp.mechanisms import calibrate_bit_counts, rr_keep_probability
from repro.utils.validation import check_positive


def degrees_from_perturbed_graph(
    perturbed: Graph, epsilon: float, excluded: np.ndarray | None = None
) -> np.ndarray:
    """Unbiased true-degree estimates from perturbed adjacency rows.

    Each node's perturbed row has ``N - 1`` bits; calibrating its 1-count
    with :func:`repro.ldp.mechanisms.calibrate_bit_counts` yields an unbiased
    estimate of the true degree.

    When a defense ``excluded`` some users, the surviving rows only cover
    ``N - 1 - |excluded|`` potential neighbours; the calibrated count over
    that reduced universe is extrapolated back to ``N - 1`` (degrees are
    assumed exchangeable across removed/kept neighbours).  Excluded users'
    own rows are empty and estimate to 0.
    """
    n = perturbed.num_nodes
    observed = perturbed.degrees().astype(np.float64)
    totals = np.full(n, n - 1, dtype=np.float64)
    scale = np.ones(n, dtype=np.float64)
    if excluded is not None and np.asarray(excluded).size:
        excluded = np.asarray(excluded, dtype=np.int64)
        remaining = n - 1 - excluded.size
        if remaining <= 0:
            return np.zeros(n, dtype=np.float64)
        kept = np.ones(n, dtype=bool)
        kept[excluded] = False
        totals[kept] = remaining
        scale[kept] = (n - 1) / remaining
        totals[~kept] = 1.0  # avoid 0-division; rows are empty anyway
        scale[~kept] = 0.0
    calibrated = calibrate_bit_counts(observed, totals, epsilon)
    return calibrated * scale


def degree_estimate_variance_bits(num_nodes: int, epsilon: float) -> float:
    """Variance of the bit-vector degree estimator (per node).

    Each of the ``N - 1`` bits is a Bernoulli with variance at most
    ``p (1 - p)``; calibration divides by ``(2p - 1)``, so the estimator
    variance is ``(N - 1) p (1 - p) / (2p - 1)^2``.
    """
    keep = rr_keep_probability(epsilon)
    return (num_nodes - 1) * keep * (1.0 - keep) / (2.0 * keep - 1.0) ** 2


def degree_estimate_variance_laplace(epsilon: float) -> float:
    """Variance of the Laplace degree self-report: ``2 / eps^2``."""
    check_positive(epsilon, "epsilon")
    return 2.0 / epsilon**2


def fuse_degree_estimates(
    reported: np.ndarray,
    from_bits: np.ndarray,
    num_nodes: int,
    adjacency_epsilon: float,
    degree_epsilon: float,
) -> np.ndarray:
    """Inverse-variance fusion of the two degree estimates.

    LF-GDPR refines the degree using both atomic metrics; weighting each
    unbiased estimate by its inverse variance is the minimum-variance linear
    combination.  The bit-vector estimate carries the attacker's influence
    (fake users set bits in targets' columns), the self-report does not —
    fusing is what makes degree centrality attackable at all.
    """
    reported = np.asarray(reported, dtype=np.float64)
    from_bits = np.asarray(from_bits, dtype=np.float64)
    weight_bits = 1.0 / degree_estimate_variance_bits(num_nodes, adjacency_epsilon)
    weight_reported = 1.0 / degree_estimate_variance_laplace(degree_epsilon)
    total = weight_bits + weight_reported
    return (weight_bits * from_bits + weight_reported * reported) / total


def triangle_calibration(
    observed_triangles: np.ndarray,
    perturbed_degrees: np.ndarray,
    num_nodes: int,
    epsilon: float,
    perturbed_density: float,
) -> np.ndarray:
    """The correction function ``R(.)`` of Eq. (16).

    Parameters
    ----------
    observed_triangles:
        ``tau~_i`` — triangles incident to each node in the perturbed graph.
    perturbed_degrees:
        ``d~_i`` — each node's degree in the perturbed graph.
    num_nodes:
        Total number of users ``N``.
    epsilon:
        The adjacency budget ``eps1`` that produced the perturbed graph.
    perturbed_density:
        ``theta~`` — edge density of the perturbed graph (Eq. 17).

    Returns unbiased estimates of the true triangle counts ``tau_i``:

    ``R(tau~) = (tau~ - 1/2 d~(d~-1) p^2 (1-p)
                - d~(N-d~-1) p (1-p) theta~
                - 1/2 (N-d~-1)(N-d~-2) (1-p)^2 theta~) / (p^2 (2p-1))``
    """
    keep = rr_keep_probability(epsilon)
    if keep == 0.5:
        raise ValueError("epsilon=0 leaves no signal to calibrate (2p - 1 = 0)")
    observed = np.asarray(observed_triangles, dtype=np.float64)
    degrees = np.asarray(perturbed_degrees, dtype=np.float64)
    complement = num_nodes - degrees - 1.0

    case1 = 0.5 * degrees * (degrees - 1.0) * keep**2 * (1.0 - keep)
    case2 = degrees * complement * keep * (1.0 - keep) * perturbed_density
    case3 = 0.5 * complement * (complement - 1.0) * (1.0 - keep) ** 2 * perturbed_density
    return (observed - case1 - case2 - case3) / (keep**2 * (2.0 * keep - 1.0))


def estimate_clustering_coefficients(
    perturbed: Graph,
    epsilon: float,
    clip: bool = True,
    degree_plugin: str = "perturbed",
    observed_triangles: np.ndarray | None = None,
) -> np.ndarray:
    """Clustering-coefficient estimates from the perturbed graph (Eq. 15).

    ``cc_i = 2 R(tau~_i) / (d_i (d_i - 1))``.  Nodes whose plug-in degree is
    below 2 get 0.  With ``clip`` (the default) estimates are clamped to
    [0, 1]; raw values are useful when validating estimator bias.

    ``degree_plugin`` selects the degree fed into ``R`` and the denominator:

    * ``"perturbed"`` (default) — the node's degree in the perturbed graph,
      exactly as Eq. (15)/(16) are written in the paper.  Biased, because the
      perturbed degree over-counts at low epsilon, but it is the estimator
      the paper's attack analysis (and Theorem 2) is built on.
    * ``"calibrated"`` — unbiased true-degree estimates from the perturbed
      rows; a strictly better estimator, kept as an ablation (DESIGN.md §6).

    ``observed_triangles`` optionally supplies the per-node triangle counts
    of ``perturbed`` (exact integers), skipping the dominant
    :func:`triangles_per_node` pass — the hook paired incremental
    evaluation uses.  The counts must equal what a recount would produce;
    every downstream float operation is then identical.
    """
    if degree_plugin not in ("perturbed", "calibrated"):
        raise ValueError(
            f"degree_plugin must be 'perturbed' or 'calibrated', got {degree_plugin!r}"
        )
    if observed_triangles is None:
        observed_triangles = triangles_per_node(perturbed)
    observed = np.asarray(observed_triangles).astype(np.float64)
    if degree_plugin == "perturbed":
        degrees = perturbed.degrees().astype(np.float64)
    else:
        degrees = degrees_from_perturbed_graph(perturbed, epsilon)
        degrees = np.clip(degrees, 0.0, perturbed.num_nodes - 1.0)
    density = edge_density(perturbed)
    corrected = triangle_calibration(
        observed, degrees, perturbed.num_nodes, epsilon, density
    )
    denominator = degrees * (degrees - 1.0)
    estimates = np.zeros(perturbed.num_nodes, dtype=np.float64)
    valid = denominator > 0
    estimates[valid] = 2.0 * corrected[valid] / denominator[valid]
    if clip:
        estimates = np.clip(estimates, 0.0, 1.0)
    return estimates


def observed_intra_community_edges(
    perturbed: Graph, labels: np.ndarray, num_communities: int
) -> np.ndarray:
    """Exact per-community intra-edge counts of the perturbed graph.

    All branches count the same integers, so the dispatch is bit-identical;
    the packed branch popcounts masked rows instead of decoding and
    bucketing every edge of a near-dense perturbed graph, and graphs whose
    packed form exceeds ``REPRO_DENSE_MAX_BYTES`` accumulate the counts in
    bounded-memory edge chunks.
    """
    if should_use_packed(perturbed):
        return BitMatrix.from_graph(perturbed).intra_community_edges(labels, num_communities)
    if should_stream(perturbed):
        return streaming_intra_community_edges(perturbed, labels, num_communities)
    rows, cols = perturbed.edge_arrays()
    same = labels[rows] == labels[cols]
    return np.bincount(labels[rows[same]], minlength=num_communities)


def estimate_modularity(
    perturbed: Graph,
    labels: np.ndarray,
    epsilon: float,
    fused_degrees: np.ndarray,
    observed_intra: np.ndarray | None = None,
) -> float:
    """Modularity estimate for a server-held partition.

    Intra-community edge counts observed in the perturbed graph are
    calibrated per community (the number of intra pairs is known from the
    partition); total edge mass comes from the fused degree estimates.
    ``observed_intra`` optionally supplies the exact intra counts (the
    paired incremental hook, mirroring ``observed_triangles`` above).
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = perturbed.num_nodes
    if labels.shape != (n,):
        raise ValueError("labels must have one entry per node")
    num_communities = int(labels.max()) + 1 if n else 0

    if observed_intra is None:
        observed_intra = observed_intra_community_edges(perturbed, labels, num_communities)
    observed_intra = np.asarray(observed_intra).astype(np.float64)
    community_sizes = np.bincount(labels, minlength=num_communities).astype(np.float64)
    intra_pairs = community_sizes * (community_sizes - 1.0) / 2.0
    estimated_intra = np.maximum(
        calibrate_bit_counts(observed_intra, intra_pairs, epsilon), 0.0
    )

    community_degrees = np.bincount(
        labels, weights=np.maximum(np.asarray(fused_degrees, dtype=np.float64), 0.0),
        minlength=num_communities,
    )
    total_edges = community_degrees.sum() / 2.0
    if total_edges <= 0:
        return 0.0
    return float(
        np.sum(estimated_intra / total_edges - (community_degrees / (2.0 * total_edges)) ** 2)
    )
