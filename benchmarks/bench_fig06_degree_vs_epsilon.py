"""Fig. 6 — overall gains of attacks to degree centrality vs epsilon (Exp 1).

Expected shapes (paper): MGA far above RVA and RNA at every epsilon; MGA and
RVA decrease as epsilon grows (larger budgets mean fewer injectable edges);
RNA stays nearly flat (always one crafted edge per fake user).
"""

import numpy as np
import pytest
from conftest import bench_config, emit

from repro.experiments.figures import fig6


@pytest.mark.parametrize("dataset", ["facebook", "enron", "astroph", "gplus"])
def test_fig6_degree_vs_epsilon(benchmark, dataset):
    config = bench_config(dataset)

    result = benchmark.pedantic(fig6, args=(dataset, config), rounds=1, iterations=1)

    emit("fig06_degree_vs_epsilon", result.format())
    mga = np.array(result.gains_of("MGA"))
    rva = np.array(result.gains_of("RVA"))
    rna = np.array(result.gains_of("RNA"))
    assert np.all(np.isfinite(mga)) and np.all(mga > 0)
    # MGA dominates both baselines at every epsilon.
    assert np.all(mga >= rva) and np.all(mga >= rna)
    # MGA and RVA weaken as epsilon grows (first vs last grid point).
    assert mga[0] > mga[-1]
    assert rva[0] > rva[-1]
