"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import child_rng, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=8)
        b = ensure_rng(42).integers(0, 1_000_000, size=8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=8)
        b = ensure_rng(2).integers(0, 1_000_000, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="expected None"):
            ensure_rng("not-a-seed")


class TestChildRng:
    def test_same_key_same_stream(self):
        a = child_rng(7, "noise").integers(0, 1_000_000, size=16)
        b = child_rng(7, "noise").integers(0, 1_000_000, size=16)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = child_rng(7, "noise").integers(0, 1_000_000, size=16)
        b = child_rng(7, "attack").integers(0, 1_000_000, size=16)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = child_rng(7, "noise").integers(0, 1_000_000, size=16)
        b = child_rng(8, "noise").integers(0, 1_000_000, size=16)
        assert not np.array_equal(a, b)

    def test_child_independent_of_parent_draws(self):
        # The child stream must not overlap the parent stream trivially.
        parent = ensure_rng(7)
        parent_draws = parent.integers(0, 1_000_000, size=16)
        child_draws = child_rng(7, "noise").integers(0, 1_000_000, size=16)
        assert not np.array_equal(parent_draws, child_draws)

    def test_seed_sequence_seed(self):
        a = child_rng(np.random.SeedSequence(3), "x").integers(0, 100, size=4)
        b = child_rng(np.random.SeedSequence(3), "x").integers(0, 100, size=4)
        assert np.array_equal(a, b)

    def test_generator_seed_is_usable(self):
        gen = np.random.default_rng(0)
        child = child_rng(gen, "x")
        assert isinstance(child, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        rngs = list(spawn_rngs(0, 5))
        assert len(rngs) == 5

    def test_streams_differ(self):
        rngs = list(spawn_rngs(0, 3))
        draws = [r.integers(0, 1_000_000, size=8).tolist() for r in rngs]
        assert draws[0] != draws[1] and draws[1] != draws[2]

    def test_deterministic(self):
        first = [r.integers(0, 100) for r in spawn_rngs(9, 4)]
        second = [r.integers(0, 100) for r in spawn_rngs(9, 4)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            list(spawn_rngs(0, -1))

    def test_zero_count(self):
        assert list(spawn_rngs(0, 0)) == []
