"""Engine telemetry: structured spans, counters, manifests, live progress.

See :mod:`repro.telemetry.core` for the tracing primitives and activation
rules, :mod:`repro.telemetry.export` for trace files and run manifests, and
:mod:`repro.telemetry.progress` for the callback protocol.
"""

from repro.telemetry.core import (
    NULL_TRACER,
    TRACE_ENV,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)
from repro.telemetry.export import (
    RunManifest,
    load_trace,
    manifest_path,
    summarize_trace,
    write_trace,
)
from repro.telemetry.progress import ProgressPrinter, TelemetryCallbacks

__all__ = [
    "NULL_TRACER",
    "TRACE_ENV",
    "NullTracer",
    "ProgressPrinter",
    "RunManifest",
    "Span",
    "TelemetryCallbacks",
    "Tracer",
    "current_tracer",
    "load_trace",
    "manifest_path",
    "set_tracer",
    "summarize_trace",
    "use_tracer",
    "write_trace",
]
