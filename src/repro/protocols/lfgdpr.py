"""The LF-GDPR collection protocol (Ye et al., TKDE 2020).

LF-GDPR is the protocol the paper mounts its attacks on.  One collection
round proceeds in four steps:

1. *metric reduction* — the target metric is expressed over the adjacency
   matrix ``M`` and degree vector ``D`` (done by the estimator methods here);
2. *budget allocation* — ``eps`` is split into ``eps1`` (adjacency) and
   ``eps2`` (degree);
3. *local perturbation* — every user perturbs its adjacency bit vector with
   randomized response and its degree with the Laplace mechanism;
4. *calibrated aggregation* — the server estimates the metric, correcting the
   perturbation bias (``repro.protocols.estimators``).

Attack integration: fake users' reports are *overrides* — their adjacency
claims and degree values are taken verbatim, exactly matching the paper's
threat model.  Genuine-user noise derives from named child streams of the
``collect`` seed, so paired runs (same seed, with/without overrides) differ
only by the attacker's action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import max_packed_bytes, should_use_packed
from repro.graph.bittensor import BitTensor
from repro.graph.metrics import (
    should_use_incremental,
    triangles_per_node_cached,
    triangles_per_node_incremental,
)
from repro.graph.streaming import iter_packed_row_blocks
from repro.ldp.budget import BudgetAllocation, split_budget
from repro.ldp.mechanisms import perturb_degree
from repro.ldp.perturbation import perturb_graph, perturb_graph_batch
from repro.protocols.base import (
    CollectedReports,
    GraphLDPProtocol,
    Overrides,
    PairedCollection,
    SharedGraphPairedCollection,
    apply_degree_overrides,
    apply_overrides,
    require_replayable_seed,
)
from repro.protocols.estimators import (
    degrees_from_perturbed_graph,
    estimate_clustering_coefficients,
    estimate_modularity,
    fuse_degree_estimates,
    observed_intra_community_edges,
)
from repro.utils.rng import RngLike, child_rng
from repro.utils.sparse import decode_pairs
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ReportBlock:
    """One contiguous user range of an LF-GDPR collection round.

    ``adjacency_rows`` holds users ``start .. stop - 1``'s perturbed
    adjacency bit vectors as packed uint64 rows (bit ``j`` of row ``i - start``
    = perturbed edge ``{i, j}``); ``reported_degrees`` the matching slice of
    Laplace-noised degree reports.  Blocks tile ``[0, N)`` in order.
    """

    start: int
    stop: int
    adjacency_rows: np.ndarray
    reported_degrees: np.ndarray


class LFGDPRProtocol(GraphLDPProtocol):
    """LF-GDPR with an explicit budget split and pluggable degree fusion.

    Parameters
    ----------
    epsilon:
        Total privacy budget ``eps = eps1 + eps2``.
    adjacency_fraction:
        Fraction of ``epsilon`` spent on the adjacency bit vector.
    degree_mode:
        Where degree estimates come from:

        * ``"bits"`` (default) — calibrated row counts of the collected
          adjacency matrix.  This is the estimator the paper's attack model
          implies: fake users influence a target's degree only through the
          bits they claim, and all three degree-centrality attacks in §V act
          through this channel.
        * ``"reported"`` — the Laplace self-report only.  An ablation that
          is immune to bit poisoning (but trivially attackable by the fake
          users' own reports and blind to report/bit inconsistencies).
        * ``"fused"`` — inverse-variance combination of both.  The
          minimum-variance honest-world estimator; because the self-report
          variance does not grow with N, it almost ignores the bit channel
          and therefore largely resists the paper's attacks — an ablation
          discussed in DESIGN.md §6.
    clustering_degree_plugin:
        Degree plug-in for the clustering estimator: ``"perturbed"``
        (paper-faithful Eq. 15/16 default) or ``"calibrated"`` (lower-bias
        ablation).  See ``estimate_clustering_coefficients``.
    clip_clustering:
        Clamp clustering estimates to [0, 1].  Off by default: the paper's
        gain analysis (Eq. 22) works with the raw calibrated values, and
        clamping saturates at low epsilon where the raw estimates leave the
        unit interval, hiding attack effects entirely.
    """

    def __init__(
        self,
        epsilon: float,
        adjacency_fraction: float = 0.5,
        degree_mode: str = "bits",
        clustering_degree_plugin: str = "perturbed",
        clip_clustering: bool = False,
    ):
        check_positive(epsilon, "epsilon")
        if degree_mode not in ("bits", "reported", "fused"):
            raise ValueError(
                f"degree_mode must be 'bits', 'reported' or 'fused', got {degree_mode!r}"
            )
        self.budget: BudgetAllocation = split_budget(epsilon, adjacency_fraction)
        self.degree_mode = degree_mode
        self.clustering_degree_plugin = clustering_degree_plugin
        self.clip_clustering = bool(clip_clustering)

    @property
    def epsilon(self) -> float:
        """Total privacy budget."""
        return self.budget.total

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(
        self, graph: Graph, rng: RngLike, overrides: Overrides | None = None
    ) -> CollectedReports:
        """One collection round; see the module docstring for semantics."""
        perturbed = perturb_graph(
            graph, self.budget.adjacency_epsilon, rng=child_rng(rng, "lfgdpr-adjacency")
        )
        noisy_degrees = perturb_degree(
            graph.degrees(),
            self.budget.degree_epsilon,
            rng=child_rng(rng, "lfgdpr-degree"),
        )
        perturbed, overridden = apply_overrides(perturbed, overrides)
        reported = apply_degree_overrides(noisy_degrees, overrides)
        return CollectedReports(
            perturbed_graph=perturbed,
            reported_degrees=reported,
            adjacency_epsilon=self.budget.adjacency_epsilon,
            degree_epsilon=self.budget.degree_epsilon,
            overridden=overridden,
        )

    def collect_blocks(
        self,
        graph: Graph,
        rng: RngLike,
        *,
        block_rows: int | None = None,
        max_bytes: int | None = None,
    ) -> Iterator[ReportBlock]:
        """One collection round streamed as per-user report blocks.

        The out-of-core counterpart of :meth:`collect` for graphs whose
        packed adjacency matrix (``n^2/8`` bytes — 125 GB at a million
        users) cannot be materialized: the perturbed graph lives only in
        its sparse pair-code form, and each yielded
        :class:`ReportBlock` carries one packed row range sized to
        ``REPRO_DENSE_MAX_BYTES`` (or the explicit ``block_rows`` /
        ``max_bytes``) that drops when the consumer advances.

        Seed semantics match :meth:`collect` exactly: all randomness is
        drawn **eagerly in this call** from the same named child streams
        (``"lfgdpr-adjacency"`` then ``"lfgdpr-degree"``), consumed
        draw-for-draw identically — so for any block height, concatenating
        the blocks reproduces ``collect(graph, rng)``'s perturbed adjacency
        matrix and degree reports bit for bit.  Block iteration itself
        draws nothing.
        """
        perturbed = perturb_graph(
            graph, self.budget.adjacency_epsilon, rng=child_rng(rng, "lfgdpr-adjacency")
        )
        noisy_degrees = np.asarray(
            perturb_degree(
                graph.degrees(),
                self.budget.degree_epsilon,
                rng=child_rng(rng, "lfgdpr-degree"),
            ),
            dtype=np.float64,
        )

        def blocks() -> Iterator[ReportBlock]:
            for start, stop, rows in iter_packed_row_blocks(
                perturbed, block_rows, max_bytes=max_bytes
            ):
                yield ReportBlock(
                    start=start,
                    stop=stop,
                    adjacency_rows=rows,
                    reported_degrees=noisy_degrees[start:stop],
                )

        return blocks()

    def collect_paired(self, graph: Graph, rng: RngLike) -> PairedCollection:
        """One honest perturbation shared across before/after views.

        LF-GDPR's honest randomness is exactly the perturbed graph and the
        noisy degree vector, both pure functions of the seed — so the paired
        run draws them once and manufactures after-views by override
        application alone, bit-identical to :meth:`collect` under the same
        seed but at half the collection cost per pair.
        """
        rng = require_replayable_seed(rng)
        perturbed = perturb_graph(
            graph, self.budget.adjacency_epsilon, rng=child_rng(rng, "lfgdpr-adjacency")
        )
        noisy_degrees = perturb_degree(
            graph.degrees(),
            self.budget.degree_epsilon,
            rng=child_rng(rng, "lfgdpr-degree"),
        )
        honest = CollectedReports(
            perturbed_graph=perturbed,
            reported_degrees=np.asarray(noisy_degrees, dtype=np.float64),
            adjacency_epsilon=self.budget.adjacency_epsilon,
            degree_epsilon=self.budget.degree_epsilon,
        )
        return SharedGraphPairedCollection(honest)

    def collect_paired_batch(
        self,
        graph: Graph,
        seeds: Sequence[RngLike],
        metric: Optional[str] = None,
        labels: Optional[np.ndarray] = None,
    ) -> List[SharedGraphPairedCollection]:
        """All trials of one figure point collected through batched kernels.

        Entry ``t`` of the result is bit-identical to
        ``collect_paired(graph, seeds[t])``: every per-trial RNG stream is
        derived with the same ``child_rng`` keys and consumed in the same
        order, and every batched metric below is an exact-integer reordering
        of the per-trial computation.  The batching buys three amortizations:

        * :func:`perturb_graph_batch` hoists the shared perturbation setup;
        * all planes pack into one :class:`BitTensor` accumulation, whose
          zero-copy :meth:`~BitTensor.plane` views pre-seed each run's
          paired cache (``"bitmatrix"``) so after-view row patches skip
          re-packing;
        * the honest metric intermediates the estimators would compute per
          trial — degrees always, triangle counts for
          ``clustering_coefficient``, intra-community counts for
          ``modularity`` — are swept across the whole stack at once and
          parked in the caches (``"triangles"``, ``"intra"``).

        ``metric``/``labels`` only select which intermediates are worth
        precomputing; estimates for any metric remain correct (the caches
        are optimisation hints).  Planes failing the packed-dispatch
        predicate — or stacks overflowing ``REPRO_DENSE_MAX_BYTES`` across
        trials — simply skip the tensor and estimate per trial.
        """
        seeds = [require_replayable_seed(seed) for seed in seeds]
        adjacency_rngs = [child_rng(seed, "lfgdpr-adjacency") for seed in seeds]
        perturbed = perturb_graph_batch(
            graph, self.budget.adjacency_epsilon, adjacency_rngs
        )
        honest_degrees = graph.degrees()
        runs: List[SharedGraphPairedCollection] = []
        caches: List[dict] = []
        for seed, plane_graph in zip(seeds, perturbed):
            noisy_degrees = perturb_degree(
                honest_degrees,
                self.budget.degree_epsilon,
                rng=child_rng(seed, "lfgdpr-degree"),
            )
            honest = CollectedReports(
                perturbed_graph=plane_graph,
                reported_degrees=np.asarray(noisy_degrees, dtype=np.float64),
                adjacency_epsilon=self.budget.adjacency_epsilon,
                degree_epsilon=self.budget.degree_epsilon,
            )
            run = SharedGraphPairedCollection(honest)
            runs.append(run)
            caches.append(run.before.baseline.cache)

        if not all(should_use_packed(plane) for plane in perturbed):
            return runs
        plane_bytes = graph.num_nodes * (((graph.num_nodes + 63) >> 6) << 3)
        chunk = max(1, max_packed_bytes() // max(1, plane_bytes))
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            num_communities = int(labels.max()) + 1 if labels.size else 0
        for start in range(0, len(perturbed), chunk):
            stop = min(len(perturbed), start + chunk)
            tensor = BitTensor.from_graphs(perturbed[start:stop])
            degrees = tensor.degrees()
            triangles = (
                tensor.triangles_per_node()
                if metric == "clustering_coefficient"
                else None
            )
            intra = (
                tensor.intra_community_edges(labels, num_communities)
                if metric == "modularity" and labels is not None
                else None
            )
            for offset in range(stop - start):
                trial = start + offset
                perturbed[trial]._seed_degrees(degrees[offset])
                cache = caches[trial]
                cache["bitmatrix"] = tensor.plane(offset)
                if triangles is not None:
                    cache["triangles"] = triangles[offset]
                if intra is not None:
                    cache["intra"] = (labels, intra[offset])
        return runs

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_degrees(self, reports: CollectedReports) -> np.ndarray:
        """Per-node degree estimates under the configured ``degree_mode``."""
        if self.degree_mode == "reported":
            return np.asarray(reports.reported_degrees, dtype=np.float64)
        from_bits = degrees_from_perturbed_graph(
            reports.perturbed_graph, reports.adjacency_epsilon, excluded=reports.excluded
        )
        if self.degree_mode == "bits":
            return from_bits
        return fuse_degree_estimates(
            reports.reported_degrees,
            from_bits,
            reports.num_nodes,
            reports.adjacency_epsilon,
            reports.degree_epsilon,
        )

    def estimate_degree_centrality(self, reports: CollectedReports) -> np.ndarray:
        """Normalized degree centrality ``d_hat / (N - 1)`` per node."""
        n = reports.num_nodes
        if n <= 1:
            return np.zeros(n, dtype=np.float64)
        return self.estimate_degrees(reports) / (n - 1)

    def estimate_clustering_coefficient(self, reports: CollectedReports) -> np.ndarray:
        """Clustering-coefficient estimates via the triangle calibration.

        When a defense excluded users, estimation runs on the induced
        subgraph of the remaining users (with its own N and edge density) —
        treating removed rows as all-zero bits of the full graph would bias
        every correction term of Eq. 16.  Excluded users estimate to 0.
        """
        excluded = np.asarray(reports.excluded, dtype=np.int64)
        if excluded.size == 0:
            return estimate_clustering_coefficients(
                reports.perturbed_graph,
                reports.adjacency_epsilon,
                clip=self.clip_clustering,
                degree_plugin=self.clustering_degree_plugin,
                observed_triangles=self._paired_triangles(reports),
            )
        n = reports.num_nodes
        kept = np.setdiff1d(np.arange(n), excluded)
        subgraph = reports.perturbed_graph.subgraph(kept)
        sub_estimates = estimate_clustering_coefficients(
            subgraph,
            reports.adjacency_epsilon,
            clip=self.clip_clustering,
            degree_plugin=self.clustering_degree_plugin,
        )
        estimates = np.zeros(n, dtype=np.float64)
        estimates[kept] = sub_estimates
        return estimates

    def estimate_modularity(self, reports: CollectedReports, labels: np.ndarray) -> float:
        """Modularity estimate for a server-held community labelling."""
        return estimate_modularity(
            reports.perturbed_graph,
            labels,
            reports.adjacency_epsilon,
            self.estimate_degrees(reports),
            observed_intra=self._paired_intra(reports, labels),
        )

    # ------------------------------------------------------------------
    # Incremental paired-run estimation
    # ------------------------------------------------------------------
    def _paired_triangles(self, reports: CollectedReports) -> np.ndarray | None:
        """Perturbed-graph triangle counts via the paired baseline, if any.

        Honest view: computed once and cached on the shared run.  After
        view: the honest counts are updated over the touched rows only
        (exact integers, bit-identical to a full recount — see
        :func:`repro.graph.metrics.triangles_per_node_incremental`), falling
        back to a full recount past ``REPRO_DELTA_THRESHOLD``.  Returns
        ``None`` when the reports carry no usable baseline, letting the
        caller recompute from scratch.
        """
        base = reports.baseline
        if base is None:
            return None
        honest_graph = base.honest.perturbed_graph
        if reports is base.honest:
            return triangles_per_node_cached(honest_graph, base.cache)
        if base.touched is None:
            return None
        return triangles_per_node_incremental(
            honest_graph,
            reports.perturbed_graph,
            base.touched,
            triangles_per_node_cached(honest_graph, base.cache),
            cache=base.cache,
            added_codes=base.added_codes,
            removed_codes=base.removed_codes,
        )

    def _paired_intra(self, reports: CollectedReports, labels: np.ndarray) -> np.ndarray | None:
        """Observed intra-community edge counts via the paired baseline.

        The honest counts are cached per labelling; an after-view adjusts
        them by bucketing only the net added/removed same-label edges —
        exact integer updates, bit-identical to recounting the whole graph.
        """
        base = reports.baseline
        if base is None:
            return None
        labels = np.asarray(labels, dtype=np.int64)
        n = reports.num_nodes
        num_communities = int(labels.max()) + 1 if n else 0
        cached = base.cache.get("intra")
        if cached is None or not np.array_equal(cached[0], labels):
            honest_counts = observed_intra_community_edges(
                base.honest.perturbed_graph, labels, num_communities
            )
            base.cache["intra"] = (labels, honest_counts)
        else:
            honest_counts = cached[1]
        if reports is base.honest:
            return honest_counts
        if base.touched is None or base.added_codes is None or base.removed_codes is None:
            return None
        if not should_use_incremental(n, base.touched.size):
            return None
        counts = np.array(honest_counts, copy=True)
        for codes, sign in ((base.added_codes, 1), (base.removed_codes, -1)):
            if codes.size:
                rows, cols = decode_pairs(codes, n)
                same = labels[rows] == labels[cols]
                counts += sign * np.bincount(
                    labels[rows[same]], minlength=num_communities
                )
        return counts
