"""Fig. 12 — countermeasures against attacks to degree centrality (Exp 7).

Panel (a): frequent-itemsets detection (Detect1) and the Naive1 baseline
against MGA, across the detection threshold.  Expected: a U-ish relationship
(over-flagging at tiny thresholds distorts estimates; under-flagging at large
thresholds lets the attack through), Detect1 generally below Naive1.

Panel (b): degree-consistency detection (Detect2) and Naive2 against RVA
across beta.  Expected: Detect2 below NoDefense but not zero; Naive2 can
exceed NoDefense because it flags genuine hubs/leaves.
"""

import numpy as np
from conftest import bench_config, emit

from repro.experiments.figures import fig12a, fig12b


def test_fig12a_detect1_vs_mga(benchmark):
    config = bench_config("facebook")

    result = benchmark.pedantic(fig12a, args=(config,), rounds=1, iterations=1)

    emit("fig12_counter_degree", result.format())
    detect1 = np.array(result.gains_of("Detect1"))
    no_defense = np.array(result.gains_of("NoDefense"))
    assert np.all(np.isfinite(detect1))
    # Somewhere on the threshold grid the defense helps...
    assert detect1.min() < no_defense[0]
    # ...but it never fully neutralises the attack.
    assert detect1.min() > 0


def test_fig12b_detect2_vs_rva(benchmark):
    config = bench_config("facebook")

    result = benchmark.pedantic(fig12b, args=(config,), rounds=1, iterations=1)

    emit("fig12_counter_degree", result.format())
    detect2 = np.array(result.gains_of("Detect2"))
    no_defense = np.array(result.gains_of("NoDefense"))
    assert np.all(np.isfinite(detect2))
    # Averaged over the beta grid, Detect2 reduces the RVA gain.
    assert detect2.mean() < no_defense.mean()
    assert detect2.min() > 0
