"""Tests for repro.graph.io."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        # Node 2..4 appear in edges, so compaction preserves the edge structure;
        # read with explicit num_nodes to preserve isolated-node labelling.
        back = read_edge_list(path, num_nodes=5)
        assert back == g

    def test_header_is_comment(self, tmp_path):
        g = Graph(3, [(0, 1)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("#")


class TestRead:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_compaction(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("100 200\n200 300\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_self_loops_rejected_by_default(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 0\n0 1\n")
        with pytest.raises(ValueError, match=r"edges\.txt:1: self-loop 0 0"):
            read_edge_list(path)

    def test_self_loops_skipped_on_opt_out(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 0\n0 1\n")
        g = read_edge_list(path, allow_self_loops=True)
        assert g.num_edges == 1

    def test_explicit_num_nodes(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_nodes=10)
        assert g.num_nodes == 10

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected 'u v'"):
            read_edge_list(path)

    def test_non_integer_id_names_the_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 two\n")
        with pytest.raises(ValueError, match=r"edges\.txt:2: non-integer"):
            read_edge_list(path)

    def test_negative_id_names_the_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n-3 2\n")
        with pytest.raises(ValueError, match=r"edges\.txt:2: negative node id -3"):
            read_edge_list(path)

    def test_id_out_of_range_for_num_nodes(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 7\n")
        with pytest.raises(ValueError, match=r"edges\.txt:2: node id 7 out of range"):
            read_edge_list(path, num_nodes=5)

    def test_duplicate_edges_rejected_by_default(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(
            ValueError, match=r"edges\.txt:2: duplicate edge 1 0 \(first at line 1"
        ):
            read_edge_list(path)

    def test_duplicate_edges_collapse_on_opt_out(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        g = read_edge_list(path, allow_duplicates=True)
        assert g.num_edges == 1


class TestChunkedParsing:
    """The vectorized chunked parser must be invariant in chunk_lines."""

    def test_chunk_size_invariance(self, tmp_path):
        path = tmp_path / "edges.txt"
        lines = ["# header"] + [f"{i} {i + 1}" for i in range(50)]
        path.write_text("\n".join(lines) + "\n")
        reference = read_edge_list(path, chunk_lines=1 << 20)
        for chunk_lines in (1, 2, 7, 50, 51):
            assert read_edge_list(path, chunk_lines=chunk_lines) == reference

    def test_duplicate_across_chunk_boundary(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n2 3\n4 5\n1 0\n")
        with pytest.raises(
            ValueError, match=r"edges\.txt:4: duplicate edge 1 0 \(first at line 1"
        ):
            read_edge_list(path, chunk_lines=2)

    def test_buffered_duplicate_outranks_later_inline_error(self, tmp_path):
        # The duplicate on line 2 sits in the pending chunk when the
        # self-loop on line 3 is hit; the earlier offence must win.
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 0\n2 2\n")
        for chunk_lines in (1, 2, 3, 1 << 20):
            with pytest.raises(ValueError, match=r"edges\.txt:2: duplicate edge"):
                read_edge_list(path, chunk_lines=chunk_lines)

    def test_triple_repeat_blames_first_occurrence(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("5 6\n0 1\n6 5\n")
        with pytest.raises(ValueError, match=r"\(first at line 1"):
            read_edge_list(path, chunk_lines=2)

    def test_wide_ids_fall_back_to_exact_parse(self, tmp_path):
        wide = 1 << 40
        path = tmp_path / "edges.txt"
        path.write_text(f"{wide} {wide + 1}\n{wide + 1} {wide}\n")
        with pytest.raises(ValueError, match=r"edges\.txt:2: duplicate edge"):
            read_edge_list(path)
        path.write_text(f"{wide} {wide + 1}\n0 {wide}\n")
        g = read_edge_list(path)
        assert (g.num_nodes, g.num_edges) == (3, 2)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# nothing but comments\n\n")
        g = read_edge_list(path)
        assert (g.num_nodes, g.num_edges) == (0, 0)
        assert read_edge_list(path, num_nodes=4).num_nodes == 4


class TestWriteHeaders:
    def test_counts_header(self, tmp_path):
        g = Graph(4, [(0, 1), (2, 3)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="counts")
        assert path.read_text().splitlines()[0] == "# nodes=4 edges=2"

    def test_snap_header_round_trips(self, tmp_path):
        g = Graph(6, [(0, 5), (1, 2), (1, 4)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="snap")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("#")
        assert "Nodes: 6" in lines[1] and "Edges: 3" in lines[1]
        assert read_edge_list(path, num_nodes=6) == g

    def test_no_header(self, tmp_path):
        g = Graph(3, [(0, 2)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="none")
        assert path.read_text() == "0 2\n"

    def test_unknown_header_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="header"):
            write_edge_list(Graph(2, [(0, 1)]), tmp_path / "g.txt", header="yaml")

    def test_canonical_sorted_output(self, tmp_path):
        g = Graph(5, [(3, 4), (0, 2), (0, 1)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="none", chunk_edges=2)
        assert path.read_text().splitlines() == ["0 1", "0 2", "3 4"]

    def test_round_trip_is_strict(self, tmp_path):
        # Output is canonical: re-reading with the strict defaults (no
        # duplicate/self-loop tolerance) must succeed unchanged.
        g = Graph(64, [(i, (i * 7 + 1) % 64) for i in range(0, 60, 3)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="snap")
        assert read_edge_list(path, num_nodes=64) == g
