"""Sparse pair-sampling helpers.

The randomized-response simulator (``repro.ldp.perturbation``) needs to draw
uniform random *non-edges* of a graph without materialising the dense N×N
adjacency matrix.  The helpers here encode unordered node pairs as integers,
sample uniform pairs, and reject duplicates/self-loops efficiently.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_non_negative


def pair_count(n: int) -> int:
    """Number of unordered node pairs among ``n`` nodes, i.e. C(n, 2)."""
    check_non_negative(n, "n")
    return n * (n - 1) // 2


def pairs_between(size_a, size_b):
    """Number of distinct cross-group pairs between disjoint groups.

    Works elementwise on arrays, so a full group-size vector yields the
    whole pair-capacity matrix in one expression::

        >>> sizes = np.array([2, 3])
        >>> pairs_between(sizes[:, None], sizes[None, :])[0, 1]
        6
    """
    size_a = np.asarray(size_a, dtype=np.int64)
    size_b = np.asarray(size_b, dtype=np.int64)
    if np.any(size_a < 0) or np.any(size_b < 0):
        raise ValueError("group sizes must be non-negative")
    product = size_a * size_b
    return int(product) if product.ndim == 0 else product


def encode_pairs(rows: np.ndarray, cols: np.ndarray, n: int) -> np.ndarray:
    """Encode unordered pairs (i, j), i < j, as unique int64 codes.

    The code of a pair is its rank in the row-major upper-triangle ordering:
    ``code(i, j) = i*n - i*(i+1)//2 + (j - i - 1)``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError("rows and cols must have the same shape")
    lo = np.minimum(rows, cols)
    hi = np.maximum(rows, cols)
    if lo.size and (lo.min() < 0 or hi.max() >= n):
        raise ValueError("node index out of range")
    if np.any(lo == hi):
        raise ValueError("self-loops cannot be encoded as pairs")
    return lo * n - lo * (lo + 1) // 2 + (hi - lo - 1)


def decode_pairs(codes: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`encode_pairs`: codes back to (i, j) with i < j.

    Solves ``i`` from the quadratic rank formula, vectorised.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.size and (codes.min() < 0 or codes.max() >= pair_count(n)):
        raise ValueError("pair code out of range")
    # Rank of the first pair in row i is r(i) = i*n - i*(i+1)/2.  Invert with
    # the quadratic formula, then fix off-by-one from float rounding.
    i = np.floor((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * codes.astype(np.float64))) / 2)
    i = i.astype(np.int64)
    # Guard against rounding in either direction.
    for _ in range(2):
        row_start = i * n - i * (i + 1) // 2
        i = np.where(row_start > codes, i - 1, i)
        row_start = i * n - i * (i + 1) // 2
        next_start = (i + 1) * n - (i + 1) * (i + 2) // 2
        i = np.where(codes >= next_start, i + 1, i)
    row_start = i * n - i * (i + 1) // 2
    j = codes - row_start + i + 1
    return i, j


def sample_pairs_excluding(
    n: int,
    count: int,
    forbidden_codes: np.ndarray,
    rng: np.random.Generator,
    max_rounds: int = 64,
) -> np.ndarray:
    """Sample ``count`` distinct unordered-pair codes uniformly, avoiding a set.

    ``forbidden_codes`` must be a sorted int64 array (typically the codes of
    the existing edges).  Sampling is rejection-based: draw a batch, drop
    forbidden and duplicate codes, repeat.  With forbidden density far below 1
    (always true for sparse graphs) this converges in one or two rounds.
    """
    total = pair_count(n)
    available = total - forbidden_codes.size
    if count > available:
        raise ValueError(
            f"cannot sample {count} pairs: only {available} non-forbidden pairs exist"
        )
    if count == 0:
        return np.empty(0, dtype=np.int64)

    chosen: list[np.ndarray] = []
    seen = forbidden_codes
    remaining = count
    for _ in range(max_rounds):
        # Oversample to absorb rejections; the 1.1 factor plus a small floor
        # keeps expected round count at ~1 for sparse forbidden sets.
        batch = max(int(remaining * 1.1) + 16, remaining)
        draws = rng.integers(0, total, size=batch, dtype=np.int64)
        draws = np.unique(draws)
        if seen.size:
            positions = np.searchsorted(seen, draws)
            positions = np.minimum(positions, seen.size - 1)
            draws = draws[seen[positions] != draws]
        if draws.size > remaining:
            draws = rng.choice(draws, size=remaining, replace=False)
        if draws.size:
            chosen.append(draws)
            seen = np.sort(np.concatenate([seen, draws]))
            remaining -= draws.size
        if remaining == 0:
            return np.concatenate(chosen)
    raise RuntimeError(
        f"pair sampling failed to converge after {max_rounds} rounds "
        f"({remaining}/{count} still missing)"
    )
