"""Distributed, resumable, fault-tolerant execution over the sharded store.

The :class:`~repro.engine.result_store.ShardedResultStore` was built as a
multi-process-safe substrate — ``O_APPEND`` whole-line appends, last-writer-
wins dedup, torn-line tolerance — and this module makes it the coordination
plane for a fleet: N independent worker processes (same host, or many hosts
sharing a cache root over a network filesystem) execute one logical batch
together with **no coordinator process**.

Work partitioning — shard-range leases
--------------------------------------
Tasks are partitioned by the first two hex digits of their content hash —
the same prefix that selects their result shard — into contiguous *shard
ranges* (:func:`shard_ranges`).  A worker claims a range by atomically
creating a lease file next to the shards (``<root>/leases/range-<lo>-<hh>``,
``O_CREAT | O_EXCL``), executes the range's cache-missing tasks through the
ordinary kernel/paired machinery, appends the results to the shared store
and releases the lease.  While it computes, a daemon thread rewrites the
lease with a monotonically increasing ``beat``; observers track ``(owner,
beat)`` against their **own** monotonic clock, so expiry never depends on
cross-host wall-clock agreement.  A lease whose beat has not advanced for
``lease_ttl`` seconds is reclaimable by atomic rename.

Correctness never depends on lease exclusivity.  Tasks are self-seeded pure
functions, so if a reclaim races a slow-but-alive owner, both compute
bit-identical results and the store's last-writer-wins dedup makes the
duplicate append harmless — leases only prevent *wasted* work, they are not
a mutual-exclusion primitive the results rely on.

Crash recovery and resume
-------------------------
Everything a worker appends before dying is durable: a retry, another
worker reclaiming the dead worker's range, or a later ``scenario run
--resume`` all see those results as cache hits and recompute only what is
actually missing.  An interrupted sweep resumed to completion is therefore
bit-identical (sha256) to an uninterrupted serial run.

Two driving modes share the machinery:

* :meth:`DistributedExecutor.work` — *worker mode* (the ``repro worker``
  CLI): claim ranges, compute, append; exits once everything left is
  owned by demonstrably live peers (dead peers' leases are outwaited,
  reclaimed and finished first);
* :meth:`DistributedExecutor.execute_batch` — *driver mode*: additionally
  poll the store for ranges other workers own (the store's staleness probe
  makes their appends visible) and return the full gains vector, making
  this a drop-in :class:`~repro.engine.executors.Executor` sibling.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.executors import (
    Executor,
    ParallelExecutor,
    PoolManager,
    SerialExecutor,
    run_batch,
)
from repro.engine.graph_store import GraphStore
from repro.engine.integrity import is_disk_fault, write_all
from repro.engine.result_store import SHARD_PREFIX_LEN, ShardedResultStore
from repro.engine.tasks import TrialTask
from repro.graph.adjacency import Graph
from repro.telemetry.core import current_tracer

#: Seconds a lease's beat may stand still before any observer may reclaim it.
DEFAULT_LEASE_TTL = 30.0

#: Seconds the driver sleeps between polls of foreign-owned ranges.
DEFAULT_POLL_INTERVAL = 0.2

#: Default number of contiguous shard ranges the prefix space is cut into.
DEFAULT_RANGE_COUNT = 16

#: Total shard prefixes (two hex digits).
PREFIX_SPACE = 16 ** SHARD_PREFIX_LEN


def default_worker_id() -> str:
    """A fleet-unique default owner id: ``<hostname>:<pid>``."""
    return f"{socket.gethostname()}:{os.getpid()}"


def shard_ranges(range_count: int = DEFAULT_RANGE_COUNT) -> List[Tuple[int, int]]:
    """Cut the shard-prefix space into ``range_count`` contiguous ranges.

    Returns inclusive ``(lo, hi)`` prefix bounds covering 0..255 exactly
    once; ``range_count`` is clamped to [1, 256].
    """
    count = max(1, min(PREFIX_SPACE, int(range_count)))
    bounds = [round(step * PREFIX_SPACE / count) for step in range(count + 1)]
    return [
        (bounds[step], bounds[step + 1] - 1)
        for step in range(count)
        if bounds[step + 1] > bounds[step]
    ]


class LeaseDirectory:
    """Lease files next to the shards: claim, heartbeat, reclaim, release.

    One instance per worker per drive.  All methods are safe to call with
    the heartbeat thread running (held-lease state is lock-guarded); the
    files themselves are only ever written atomically — ``O_EXCL`` create
    for the first claim, write-to-temp + ``rename`` for beats and reclaims
    — so observers never read a torn lease as anything but "corrupt",
    which ages toward reclaimable exactly like a silent owner.
    """

    def __init__(
        self,
        root,
        owner: Optional[str] = None,
        ttl: float = DEFAULT_LEASE_TTL,
    ):
        self.root = Path(root) / "leases"
        self.owner = owner if owner is not None else default_worker_id()
        self.ttl = float(ttl)
        if self.ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.beats = 0
        self.lost = 0
        #: Heartbeats skipped over transient I/O trouble (lease kept).
        self.skipped = 0
        self._held: Dict[Tuple[int, int], int] = {}
        self._lock = threading.Lock()
        #: path -> ((owner, beat), first-seen monotonic seconds): staleness
        #: is judged against *our* clock watching the beat stand still.
        self._observed: Dict[str, Tuple[Tuple[object, object], float]] = {}

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------
    def lease_path(self, bounds: Tuple[int, int]) -> Path:
        lo, hi = bounds
        return self.root / f"range-{lo:02x}-{hi:02x}.json"

    def _read_status(self, path: Path) -> Tuple[str, Optional[dict]]:
        """Read a lease, distinguishing *why* it did not parse.

        Returns ``("ok", entry)`` for a well-formed lease, ``("missing",
        None)`` when the file does not exist (released or usurped-and-
        released), ``("corrupt", None)`` for unparseable content, and
        ``("error", None)`` for any other I/O failure.  The distinction is
        what keeps heartbeats from self-evicting over a transient read
        hiccup: only *missing* and *foreign-owned* mean the lease is truly
        gone.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return "missing", None
        except json.JSONDecodeError:
            return "corrupt", None
        except OSError:
            return "error", None
        if not isinstance(entry, dict):
            return "corrupt", None
        return "ok", entry

    def _read(self, path: Path) -> Optional[dict]:
        return self._read_status(path)[1]

    def _write(self, path: Path, payload: dict) -> None:
        """Atomic lease (re)write: temp file + rename, never in place.

        os-level writes (not buffered handles) so a failure surfaces at
        the ``write`` call itself and the temp file can be removed — a
        buffered handle would defer an ``ENOSPC`` to ``close`` and leak
        half-written temps.
        """
        temporary = path.with_name(
            f".{path.name}.{self.owner.replace('/', '_')}.tmp"
        )
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        descriptor = os.open(
            temporary, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
        )
        try:
            write_all(descriptor, data)
        except BaseException:
            os.close(descriptor)
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
        os.close(descriptor)
        os.replace(temporary, path)

    def _payload(self, bounds: Tuple[int, int], beat: int) -> dict:
        return {"owner": self.owner, "beat": beat, "range": list(bounds)}

    # ------------------------------------------------------------------
    # Claim / heartbeat / release
    # ------------------------------------------------------------------
    def holds(self, bounds: Tuple[int, int]) -> bool:
        with self._lock:
            return bounds in self._held

    def try_claim(self, bounds: Tuple[int, int]) -> bool:
        """Claim a range: fresh, re-adopted (ours), or reclaimed (expired).

        Returns True when this worker now holds the lease.  A foreign,
        live lease returns False; a foreign lease whose beat stood still
        for ``ttl`` seconds (or whose file is unreadable that long) is
        stolen by atomic rename, then *verified* by re-reading — a reclaim
        race leaves exactly one winner, and the loser finds out here or at
        its next heartbeat.
        """
        path = self.lease_path(bounds)
        tracer = current_tracer()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            descriptor = os.open(
                path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            entry = self._read(path)
            if entry is not None and entry.get("owner") == self.owner:
                with self._lock:
                    self._held[bounds] = int(entry.get("beat", 0))
                return True
            if not self._expired(path, entry):
                return False
            try:
                self._write(path, self._payload(bounds, 0))
            except OSError as error:
                if not is_disk_fault(error):
                    raise
                tracer.counter("distributed.claim_fault")
                return False
            entry = self._read(path)
            if entry is not None and entry.get("owner") == self.owner:
                tracer.counter("distributed.lease_reclaim")
                self._observed.pop(str(path), None)
                with self._lock:
                    self._held[bounds] = 0
                return True
            return False
        except OSError as error:
            if not is_disk_fault(error):
                raise
            # A disk fault during the O_EXCL create (or the leases-dir
            # mkdir): the claim simply fails — results still flow through
            # the store, leases only prevent wasted work.
            tracer.counter("distributed.claim_fault")
            return False
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(self._payload(bounds, 0), handle, sort_keys=True)
        except OSError as error:
            if not is_disk_fault(error):
                raise
            # The lease file exists (possibly empty) and marks the claim;
            # the first successful heartbeat rewrites it whole.
            tracer.counter("distributed.claim_fault")
        tracer.counter("distributed.lease_acquire")
        with self._lock:
            self._held[bounds] = 0
        return True

    def _expired(self, path: Path, entry: Optional[dict]) -> bool:
        """Has this (foreign) lease's beat stood still for ``ttl`` seconds?"""
        identity = (
            (entry.get("owner"), entry.get("beat")) if entry is not None
            else (None, None)
        )
        key = str(path)
        observed = self._observed.get(key)
        now = time.monotonic()
        if observed is None or observed[0] != identity:
            self._observed[key] = (identity, now)
            return False
        return now - observed[1] >= self.ttl

    def heartbeat_all(self) -> int:
        """Bump every held lease's beat; detect and drop lost leases.

        Returns the number of beats written.  Called from the daemon
        thread while ranges compute; also safe from the driving thread.
        """
        with self._lock:
            held = list(self._held.items())
        sent = 0
        for bounds, beat in held:
            path = self.lease_path(bounds)
            status, entry = self._read_status(path)
            if status in ("error", "corrupt"):
                # Transient I/O trouble reading our own lease (or a torn
                # network-filesystem read): skip this beat but KEEP the
                # lease — self-evicting over a hiccup would abandon a
                # range we are actively computing.  Observers see a stale
                # beat that recovers on the next successful heartbeat.
                self.skipped += 1
                current_tracer().counter("distributed.heartbeat_skip")
                continue
            if status == "missing" or entry.get("owner") != self.owner:
                # Reclaimed out from under us (we were presumed dead).
                # Abandon the range: whoever took it recomputes the same
                # results, so dropping out is always safe.
                self.lost += 1
                with self._lock:
                    self._held.pop(bounds, None)
                continue
            try:
                self._write(path, self._payload(bounds, beat + 1))
            except OSError as error:
                if not is_disk_fault(error):
                    raise
                # A full/faulty disk must not kill the lease: the range's
                # results land through the store's own degradation path;
                # skip the beat and retry on the next pump cycle.
                self.skipped += 1
                current_tracer().counter("distributed.heartbeat_skip")
                continue
            with self._lock:
                if bounds in self._held:
                    self._held[bounds] = beat + 1
            sent += 1
        self.beats += sent
        return sent

    @contextmanager
    def heartbeats(self, interval: Optional[float] = None) -> Iterator[None]:
        """Run :meth:`heartbeat_all` on a daemon thread for the block."""
        period = interval if interval is not None else max(0.05, self.ttl / 4.0)
        stop = threading.Event()

        def pump() -> None:
            while not stop.wait(period):
                try:
                    self.heartbeat_all()
                except OSError:  # pragma: no cover - cache root went away
                    pass

        thread = threading.Thread(
            target=pump, name="repro-lease-heartbeat", daemon=True
        )
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join(timeout=max(1.0, 2 * period))

    def release(self, bounds: Tuple[int, int]) -> None:
        """Drop one held lease (unlink, verified to still be ours)."""
        with self._lock:
            if self._held.pop(bounds, None) is None:
                return
        path = self.lease_path(bounds)
        entry = self._read(path)
        if entry is not None and entry.get("owner") == self.owner:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - lost a remove race
                pass
        current_tracer().counter("distributed.lease_release")

    def release_all(self) -> None:
        with self._lock:
            held = list(self._held)
        for bounds in held:
            self.release(bounds)


class DistributedExecutor(Executor):
    """Lease-coordinated executor over a shared :class:`ShardedResultStore`.

    Parameters
    ----------
    store:
        The shared result store (and, implicitly, the cache root the lease
        files live under).  Defaults to a store at the default cache dir —
        every participant of one sweep must point at the same root.
    worker_id:
        Fleet-unique owner id for leases (default ``<hostname>:<pid>``).
    jobs:
        Process-pool width for this worker's *own* computation; ``1``
        computes in-process.  The pool persists across claimed ranges.
    range_count / lease_ttl / poll_interval:
        Work-partition granularity, lease staleness horizon and driver
        poll cadence (see module docstring).
    max_retries / task_timeout:
        Passed to the inner :class:`ParallelExecutor`: crash-retry rounds
        and the stall deadline for worker chunks.
    """

    def __init__(
        self,
        store: Optional[ShardedResultStore] = None,
        *,
        worker_id: Optional[str] = None,
        jobs: int = 1,
        range_count: int = DEFAULT_RANGE_COUNT,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.store = store if store is not None else ShardedResultStore()
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.jobs = int(jobs)
        self.range_count = int(range_count)
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = float(poll_interval)
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.max_retries = max_retries
        self.task_timeout = task_timeout

    # ------------------------------------------------------------------
    # Executor surface
    # ------------------------------------------------------------------
    def execute(
        self,
        tasks: Sequence[TrialTask],
        graph: Graph,
        labels: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Homogeneous surface: wrap the one graph in a transient store."""
        with GraphStore() as graphs:
            graphs.add(graph, labels)
            for graph_key in {task.graph_key for task in tasks}:
                graphs.alias_graph(graph_key, graph)
            for labels_key in {task.labels_key for task in tasks}:
                graphs.alias_labels(labels_key, labels)
            return self.execute_batch(tasks, graphs)

    def execute_batch(
        self, tasks: Sequence[TrialTask], store: GraphStore
    ) -> List[float]:
        """Driver mode: participate, then wait out foreign ranges.

        Returns the full gains vector, in input order — computed by this
        worker for the ranges it could claim, collected from the shared
        store for ranges other workers delivered.
        """
        gains, _ = self._drive(tasks, store, wait_for_others=True)
        assert all(gain is not None for gain in gains)
        return [float(gain) for gain in gains]

    def work(self, tasks: Sequence[TrialTask], store: GraphStore) -> int:
        """Worker mode: compute every claimable range, then stop.

        Returns the number of results this worker appended to the shared
        store.  Ranges leased to foreign owners are left to them — but a
        worker only walks away once those owners prove they are alive: it
        keeps polling for up to two lease TTLs of zero progress, long
        enough for any dead peer's lease to expire and be reclaimed (and
        its range finished) here.  A fleet therefore drains a sweep and
        exits even when members were SIGKILLed mid-range, without ever
        blocking on a healthy-but-slow peer.
        """
        _, appended = self._drive(tasks, store, wait_for_others=False)
        return appended

    # ------------------------------------------------------------------
    # The drive loop
    # ------------------------------------------------------------------
    def _inner_executor(self, pools: Optional[PoolManager]) -> Executor:
        if pools is None:
            return SerialExecutor()
        return ParallelExecutor(
            jobs=self.jobs,
            pool_factory=pools.acquire,
            pool_reset=pools.discard,
            max_retries=self.max_retries,
            task_timeout=self.task_timeout,
        )

    def _drive(
        self,
        tasks: Sequence[TrialTask],
        graphs: GraphStore,
        wait_for_others: bool,
    ) -> Tuple[List[Optional[float]], int]:
        tracer = current_tracer()
        store = self.store
        gains: List[Optional[float]] = [store.get(task) for task in tasks]

        # Partition the cache-missing tasks into contiguous shard ranges —
        # the same prefix keys the result shard, so one range's results
        # land in a bounded set of shard files.
        pending: Dict[Tuple[int, int], List[int]] = {}
        ranges = shard_ranges(self.range_count)
        for index, gain in enumerate(gains):
            if gain is not None:
                continue
            prefix = int(tasks[index].content_hash()[:SHARD_PREFIX_LEN], 16)
            for bounds in ranges:
                if bounds[0] <= prefix <= bounds[1]:
                    pending.setdefault(bounds, []).append(index)
                    break

        leases = LeaseDirectory(store.root, self.worker_id, ttl=self.lease_ttl)
        pools = PoolManager(self.jobs) if self.jobs > 1 else None
        appends_before = store.appends
        with tracer.span(
            "distributed.drive",
            worker=self.worker_id,
            tasks=len(tasks),
            pending=sum(len(indices) for indices in pending.values()),
            ranges=len(pending),
            wait=wait_for_others,
        ):
            try:
                with leases.heartbeats():
                    self._drain(
                        tasks, graphs, gains, pending, leases,
                        wait_for_others, tracer, pools,
                    )
            finally:
                leases.release_all()
                if pools is not None:
                    pools.shutdown()
                if leases.beats:
                    tracer.event("worker.heartbeat", worker=self.worker_id,
                                 beats=leases.beats)
                    tracer.counter("distributed.heartbeat", leases.beats)
                if leases.lost:
                    tracer.counter("distributed.lease_lost", leases.lost)
        return gains, store.appends - appends_before

    def _drain(
        self,
        tasks: Sequence[TrialTask],
        graphs: GraphStore,
        gains: List[Optional[float]],
        pending: Dict[Tuple[int, int], List[int]],
        leases: LeaseDirectory,
        wait_for_others: bool,
        tracer,
        pools: Optional[PoolManager],
    ) -> None:
        inner = self._inner_executor(pools)
        stalled_since: Optional[float] = None
        while pending:
            progressed = False
            for bounds in list(pending):
                if leases.try_claim(bounds):
                    self._compute_range(
                        bounds, pending.pop(bounds), tasks, graphs, gains,
                        inner, tracer,
                    )
                    leases.release(bounds)
                    progressed = True
                    continue
                # Foreign range: collect whatever its owner appended so
                # far (the store's staleness probe sees concurrent
                # writers); the range is done when every task answered.
                remaining = []
                for index in pending[bounds]:
                    gains[index] = self.store.get(tasks[index])
                    if gains[index] is None:
                        remaining.append(index)
                if len(remaining) < len(pending[bounds]):
                    progressed = True
                if remaining:
                    pending[bounds] = remaining
                else:
                    del pending[bounds]
            if not pending or progressed:
                stalled_since = None
                continue
            if not wait_for_others:
                # Drain mode: outlast a dead peer (its lease expires within
                # one TTL of our first failed claim and the reclaim lands
                # here), but don't block forever on a live one — two TTLs
                # of zero progress means every remaining lease heartbeated
                # through a full expiry window, so its owner is alive and
                # the range is its to finish.
                now = time.monotonic()
                if stalled_since is None:
                    stalled_since = now
                elif now - stalled_since > 2 * self.lease_ttl:
                    break
            tracer.counter("distributed.poll")
            time.sleep(self.poll_interval)

    def _compute_range(
        self,
        bounds: Tuple[int, int],
        indices: List[int],
        tasks: Sequence[TrialTask],
        graphs: GraphStore,
        gains: List[Optional[float]],
        inner: Executor,
        tracer,
    ) -> None:
        """Run one claimed range through the ordinary cache-aware driver.

        ``run_batch`` re-checks the store per task (results another worker
        appended before our claim are hits), computes only true misses
        through the kernel/paired machinery, and appends each computed
        gain — so everything this range produced is durable the moment it
        exists, whatever happens to this process afterwards.
        """
        lo, hi = bounds
        with tracer.span(
            "distributed.range",
            worker=self.worker_id, lo=lo, hi=hi, tasks=len(indices),
        ):
            computed = run_batch(
                [tasks[index] for index in indices], graphs,
                executor=inner, cache=self.store,
            )
            for index, gain in zip(indices, computed):
                gains[index] = gain
