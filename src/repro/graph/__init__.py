"""Graph substrate: sparse undirected graphs, metrics, generators, datasets."""

from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import BitMatrix, density_threshold, should_use_packed
from repro.graph.bittensor import BitTensor
from repro.graph.datasets import (
    DATASETS,
    REAL_DATASETS,
    DatasetSpec,
    RealDatasetSpec,
    fetch_dataset,
    known_dataset_names,
    load_dataset,
    load_real_dataset,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.streaming import (
    iter_packed_row_blocks,
    rows_per_block,
    should_stream,
    streaming_degrees,
    streaming_intra_community_edges,
    streaming_triangles_per_node,
)
from repro.graph.metrics import (
    average_degree,
    degree_centrality,
    delta_stats,
    delta_threshold,
    edge_density,
    local_clustering_coefficients,
    modularity,
    reset_delta_stats,
    should_use_incremental,
    triangles_per_node,
    triangles_per_node_incremental,
    triangles_touching,
)

__all__ = [
    "Graph",
    "BitMatrix",
    "BitTensor",
    "density_threshold",
    "should_use_packed",
    "DATASETS",
    "REAL_DATASETS",
    "DatasetSpec",
    "RealDatasetSpec",
    "fetch_dataset",
    "known_dataset_names",
    "load_dataset",
    "load_real_dataset",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "powerlaw_cluster_graph",
    "read_edge_list",
    "write_edge_list",
    "iter_packed_row_blocks",
    "rows_per_block",
    "should_stream",
    "streaming_degrees",
    "streaming_intra_community_edges",
    "streaming_triangles_per_node",
    "average_degree",
    "degree_centrality",
    "delta_stats",
    "delta_threshold",
    "edge_density",
    "local_clustering_coefficients",
    "modularity",
    "reset_delta_stats",
    "should_use_incremental",
    "triangles_per_node",
    "triangles_per_node_incremental",
    "triangles_touching",
]
