"""Tracer/Span mechanics: nesting, counters, adoption, activation paths."""

import pytest

from repro.telemetry.core import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    reset_env_activation,
    set_tracer,
    use_tracer,
)
from repro.telemetry.progress import TelemetryCallbacks


class TestSpans:
    def test_span_records_interval_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            span.set(extra="yes")
        assert len(tracer.spans) == 1
        done = tracer.spans[0]
        assert done.name == "work"
        assert done.attributes == {"size": 3, "extra": "yes"}
        assert done.end_ns >= done.start_ns

    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Finished in completion order: inner first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = tracer.spans[0], tracer.spans[1]
        assert a.parent_id == root.span_id and b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_event_is_instant(self):
        tracer = Tracer()
        span = tracer.event("mark", value=1.5)
        assert span in tracer.spans
        assert span.attributes == {"value": 1.5}

    def test_payload_roundtrip(self):
        tracer = Tracer()
        with tracer.span("x", k="v"):
            pass
        payload = tracer.spans_payload()[0]
        back = Span.from_payload(payload)
        assert back.name == "x"
        assert back.attributes == {"k": "v"}
        assert back.to_payload() == payload


class TestCountersAndTimers:
    def test_counter_accumulates(self):
        tracer = Tracer()
        tracer.counter("hits")
        tracer.counter("hits", 4)
        assert tracer.counters["hits"] == 5

    def test_timer_records_ns_and_calls(self):
        tracer = Tracer()
        with tracer.timer("append"):
            pass
        with tracer.timer("append"):
            pass
        assert tracer.counters["append.calls"] == 2
        assert tracer.counters["append.ns"] >= 0


class TestAdopt:
    def test_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        with worker.span("chunk") as chunk:
            with worker.span("task"):
                pass
        parent = Tracer()
        with parent.span("fan_out") as fan:
            pass
        parent.adopt(worker.spans_payload(), parent_id=fan.span_id,
                     counters={"w": 2})
        by_name = {s.name: s for s in parent.spans}
        assert by_name["chunk"].parent_id == fan.span_id
        assert by_name["task"].parent_id == by_name["chunk"].span_id
        # Fresh ids from the parent's sequence — no collision with fan_out.
        ids = {s.span_id for s in parent.spans}
        assert len(ids) == 3
        assert parent.counters["w"] == 2

    def test_adopted_ids_do_not_collide_with_later_spans(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        parent.adopt(worker.spans_payload())
        with parent.span("later"):
            pass
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))


class TestCallbacks:
    def test_dispatch_reaches_every_callback(self):
        calls = []

        class Recorder(TelemetryCallbacks):
            def on_batch_start(self, total):
                calls.append(("start", total))

            def on_task_done(self, task, gain):
                calls.append(("task", task, gain))

            def on_point_done(self, figure, series, value, mean, stderr, trials):
                calls.append(("point", figure))

            def on_batch_done(self, stats):
                calls.append(("done", stats))

        tracer = Tracer()
        tracer.add_callback(Recorder())
        tracer.batch_start(5)
        tracer.task_done("t", 0.5)
        tracer.point_done("Fig6", "MGA", 1.0, 0.2, 0.01, 2)
        tracer.batch_done({"tasks": 5})
        assert calls == [
            ("start", 5), ("task", "t", 0.5), ("point", "Fig6"),
            ("done", {"tasks": 5}),
        ]

    def test_default_callbacks_are_noops(self):
        hooks = TelemetryCallbacks()
        hooks.on_batch_start(1)
        hooks.on_task_done(None, 0.0)
        hooks.on_point_done("f", "s", 0.0, 0.0, 0.0, 1)
        hooks.on_batch_done({})


class TestNullTracer:
    def test_span_is_the_shared_singleton(self):
        """The off path allocates nothing: every span() is one object."""
        null = NullTracer()
        first = null.span("a", big="attrs")
        second = null.span("b")
        assert first is second
        assert first is null.timer("t")
        with first as entered:
            entered.set(x=1)
        assert null.spans == ()
        assert null.counters == {}

    def test_counter_and_dispatch_are_noops(self):
        null = NullTracer()
        null.counter("anything", 10)
        null.batch_start(1)
        null.task_done(None, 0.0)
        null.point_done("f", "s", 0, 0, 0, 1)
        null.batch_done({})
        null.adopt([{"span_id": 1}], parent_id=None)
        assert null.spans_payload() == []
        assert NullTracer.counters == {}

    def test_add_callback_refuses(self):
        with pytest.raises(RuntimeError, match="disabled tracer"):
            NULL_TRACER.add_callback(TelemetryCallbacks())


class TestActivation:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_set_tracer_returns_previous(self):
        live = Tracer()
        assert set_tracer(live) is NULL_TRACER
        assert current_tracer() is live
        assert set_tracer(None) is live
        assert current_tracer() is NULL_TRACER

    def test_env_promotes_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        reset_env_activation()
        promoted = current_tracer()
        assert promoted.enabled
        assert current_tracer() is promoted

    def test_env_zero_stays_null(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        reset_env_activation()
        assert current_tracer() is NULL_TRACER

    def test_explicit_install_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        reset_env_activation()
        set_tracer(NULL_TRACER)
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores(self):
        live = Tracer()
        with use_tracer(live) as active:
            assert active is live
            assert current_tracer() is live
        assert current_tracer() is NULL_TRACER
