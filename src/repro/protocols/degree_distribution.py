"""Degree-distribution estimation under LDP (supporting metric).

LF-GDPR's atomic metrics support more than per-node statistics: the server
can estimate the whole *degree distribution*, a staple of decentralized graph
analytics (Hay et al., ICDM 2009 study the central-DP version).  This module
estimates a degree histogram from the collected reports and post-processes
it to a valid distribution; the untargeted attacks of
``repro.core.untargeted_attacks`` distort exactly this object, measured by
:func:`histogram_distance`.

The estimator uses the Laplace degree self-reports (unbiased per user and,
unlike the bit channel, N-independent noise).  Negative/overflowing noisy
degrees are clipped into the valid range and the histogram is normalised —
the standard consistency step.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import CollectedReports
from repro.utils.validation import check_positive


def degree_histogram(degrees: np.ndarray, num_nodes: int, bins: int) -> np.ndarray:
    """Normalised histogram of (possibly noisy) degrees over [0, N-1].

    ``bins`` equal-width bins spanning the degree domain; values outside the
    domain are clipped to its ends first.
    """
    check_positive(bins, "bins")
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes for a degree domain, got {num_nodes}")
    degrees = np.asarray(degrees, dtype=np.float64)
    clipped = np.clip(degrees, 0.0, num_nodes - 1.0)
    counts, _ = np.histogram(clipped, bins=bins, range=(0.0, num_nodes - 1.0))
    total = counts.sum()
    if total == 0:
        return np.full(bins, 1.0 / bins)
    return counts / total


def estimate_degree_distribution(reports: CollectedReports, bins: int = 32) -> np.ndarray:
    """Estimated degree distribution from the reported (noisy) degrees.

    Excluded users (removed by a defense) are left out of the histogram.
    """
    degrees = np.asarray(reports.reported_degrees, dtype=np.float64)
    if reports.excluded.size:
        kept = np.setdiff1d(np.arange(reports.num_nodes), reports.excluded)
        degrees = degrees[kept]
    return degree_histogram(degrees, reports.num_nodes, bins)


def histogram_distance(first: np.ndarray, second: np.ndarray, norm: float = 1.0) -> float:
    """Lp distance between two histograms (the untargeted-attack objective)."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ValueError("histograms must have the same number of bins")
    return float(np.linalg.norm(first - second, ord=norm))
