"""Scenario: the original attack family on frequency oracles (Cao et al.).

The paper's graph attacks generalise the RPA/RIA/MGA family designed against
LDP frequency estimation.  This example runs that family against all three
state-of-the-art oracles (kRR, OUE, OLH) on a synthetic app-usage workload —
the attacker wants two fringe apps to look popular — and prints the
estimated-frequency inflation each attack achieves.

Run:  python examples/frequency_oracle_attacks.py
"""

import numpy as np

from repro import FrequencyMGA, FrequencyRIA, FrequencyRPA, KRR, OLH, OUE
from repro.core.frequency_attacks import evaluate_frequency_attack


def zipf_workload(rng, domain_size, num_users, exponent=1.3):
    """App-usage style workload: popularity follows a Zipf law."""
    weights = 1.0 / np.arange(1, domain_size + 1) ** exponent
    weights /= weights.sum()
    return rng.choice(domain_size, size=num_users, p=weights)


def main():
    domain_size = 64
    num_users = 20_000
    beta = 0.05
    num_fake = int(beta * num_users)
    targets = np.array([60, 63])  # two fringe apps the attacker promotes
    rng = np.random.default_rng(0)
    values = zipf_workload(rng, domain_size, num_users)

    true_frequency = np.bincount(values, minlength=domain_size) / num_users
    print(
        f"{num_users} users, {domain_size} apps, {num_fake} fake users (beta={beta})\n"
        f"true target frequencies: {true_frequency[targets].round(4).tolist()}\n"
    )

    for oracle_cls in (KRR, OUE, OLH):
        oracle = oracle_cls(domain_size=domain_size, epsilon=1.0)
        print(f"--- {oracle_cls.__name__} (eps=1) ---")
        for attack in (FrequencyRPA(), FrequencyRIA(), FrequencyMGA()):
            gains = [
                evaluate_frequency_attack(
                    oracle, values, attack, targets, num_fake, rng=seed
                ).total_gain
                for seed in range(3)
            ]
            print(f"  {attack.name}: summed frequency inflation {np.mean(gains):+.4f}")
        print()

    print(
        "MGA saturates the support of the targets (every fake report counts"
        "\nfor them), RIA wastes budget on honest perturbation, RPA spreads"
        "\nits mass over the whole domain - the ordering the graph attacks"
        "\ninherit."
    )


if __name__ == "__main__":
    main()
