"""Exact (non-private) graph metrics.

These are the ground-truth counterparts of the LDP estimators in
``repro.protocols``: normalized degree centrality (Eq. 8 of the paper), the
local clustering coefficient (Eq. 12), per-node triangle counts, edge density
and Newman modularity.  All operate on :class:`repro.graph.Graph`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import BitMatrix, should_use_packed
from repro.utils.sparse import pair_count


def degree_centrality(graph: Graph) -> np.ndarray:
    """Normalized degree centrality ``c_i = d_i / (N - 1)`` for every node.

    >>> g = Graph(3, [(0, 1), (0, 2)])
    >>> degree_centrality(g).tolist()
    [1.0, 0.5, 0.5]
    """
    n = graph.num_nodes
    if n <= 1:
        return np.zeros(n, dtype=np.float64)
    return graph.degrees().astype(np.float64) / (n - 1)


def triangles_per_node(graph: Graph) -> np.ndarray:
    """Number of triangles incident to each node (``tau_i`` in the paper).

    Density-adaptive: graphs above the packed-dispatch threshold (e.g. the
    near-dense output of low-epsilon randomized response) are counted via
    bit-packed row-AND + popcount (:class:`repro.graph.bitmatrix.BitMatrix`);
    sparser graphs via ``diag(A @ A @ A) / 2`` on scipy CSR matrices.  Both
    backends produce exact integer counts, so the dispatch never changes a
    result.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if should_use_packed(graph):
        return _triangles_packed(graph)
    return _triangles_sparse(graph)


def _triangles_packed(graph: Graph) -> np.ndarray:
    """Packed backend: row-AND + popcount over neighbour rows."""
    return BitMatrix.from_graph(graph).triangles_per_node()


def _triangles_sparse(graph: Graph) -> np.ndarray:
    """Sparse backend: each triangle at node *i* corresponds to two closed
    walks of length 3 (one per orientation)."""
    adjacency = graph.csr().astype(np.int64)
    squared = adjacency @ adjacency
    # diag(A @ A @ A)[i] = sum_j A[i, j] * (A @ A)[j, i]
    closed_walks = np.asarray(adjacency.multiply(squared.T).sum(axis=1)).ravel()
    return closed_walks // 2


def local_clustering_coefficients(graph: Graph) -> np.ndarray:
    """Local clustering coefficient ``cc_i = 2 tau_i / (d_i (d_i - 1))``.

    Nodes with degree < 2 have coefficient 0 by convention.
    """
    degrees = graph.degrees().astype(np.float64)
    triangles = triangles_per_node(graph).astype(np.float64)
    denominator = degrees * (degrees - 1.0)
    coefficients = np.zeros(graph.num_nodes, dtype=np.float64)
    valid = denominator > 0
    coefficients[valid] = 2.0 * triangles[valid] / denominator[valid]
    return coefficients


def average_degree(graph: Graph) -> float:
    """Mean node degree ``2E / N`` (0 for the empty graph)."""
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes


def edge_density(graph: Graph) -> float:
    """Fraction of node pairs that are edges (``theta`` in the paper)."""
    pairs = pair_count(graph.num_nodes)
    if pairs == 0:
        return 0.0
    return graph.num_edges / pairs


def modularity(graph: Graph, communities: Sequence[Sequence[int]]) -> float:
    """Newman modularity of a node partition.

    ``Q = sum_c (e_c / E - (deg_c / 2E)^2)`` where ``e_c`` is the number of
    intra-community edges and ``deg_c`` the total degree of community ``c``.

    Raises if ``communities`` is not a partition of the node set.
    """
    n = graph.num_nodes
    labels = -np.ones(n, dtype=np.int64)
    for community_id, members in enumerate(communities):
        members = np.asarray(list(members), dtype=np.int64)
        if members.size and (members.min() < 0 or members.max() >= n):
            raise ValueError("community member out of node range")
        if np.any(labels[members] >= 0):
            raise ValueError("communities overlap")
        labels[members] = community_id
    if np.any(labels < 0):
        raise ValueError("communities do not cover all nodes")
    return modularity_from_labels(graph, labels)


def modularity_from_labels(graph: Graph, labels: np.ndarray) -> float:
    """Newman modularity given a per-node community label array."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.num_nodes,):
        raise ValueError("labels must have one entry per node")
    total_edges = graph.num_edges
    if total_edges == 0:
        return 0.0
    rows, cols = graph.edge_arrays()
    intra = np.bincount(
        labels[rows][labels[rows] == labels[cols]], minlength=labels.max() + 1
    ).astype(np.float64)
    community_degrees = np.bincount(
        labels, weights=graph.degrees().astype(np.float64), minlength=labels.max() + 1
    )
    return float(np.sum(intra / total_edges - (community_degrees / (2.0 * total_edges)) ** 2))
