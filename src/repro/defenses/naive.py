"""The naive baseline detectors of Exp 7/8.

The paper compares its countermeasures against two blunt heuristics:

* **Naive1** — flag the top 3% of nodes by (bit-vector) degree, the hunch
  being that MGA inflates fake nodes' claim counts.
* **Naive2** — flag nodes whose reported degree sits in the top *or* bottom
  3% of the degree distribution, the hunch being that RVA's uniform degree
  draws land in the tails.

Both mostly flag genuine nodes (hubs and leaves exist organically), which is
why they can *increase* the measured gain — removing genuine data distorts
the estimates further.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense, remove_flagged_pairs, resample_flagged_rows
from repro.protocols.base import CollectedReports
from repro.utils.rng import RngLike
from repro.utils.validation import check_fraction


class NaiveTopDegreeDefense(Defense):
    """Naive1: flag the highest-degree rows of the collected matrix."""

    name = "Naive1"

    def __init__(self, fraction: float = 0.03, rng: RngLike = 0):
        check_fraction(fraction, "fraction")
        self.fraction = float(fraction)
        self.rng = rng

    def detect(self, reports: CollectedReports) -> np.ndarray:
        degrees = reports.perturbed_graph.degrees()
        count = max(1, round(self.fraction * reports.num_nodes))
        flagged = np.argsort(degrees)[::-1][:count]
        return np.sort(flagged).astype(np.int64)

    def repair(self, reports: CollectedReports, flagged: np.ndarray) -> CollectedReports:
        return resample_flagged_rows(reports, flagged, rng=self.rng)


class NaiveDegreeTailsDefense(Defense):
    """Naive2: flag the tails of the reported-degree distribution."""

    name = "Naive2"

    def __init__(self, fraction: float = 0.03):
        check_fraction(fraction, "fraction")
        self.fraction = float(fraction)

    def detect(self, reports: CollectedReports) -> np.ndarray:
        reported = np.asarray(reports.reported_degrees, dtype=np.float64)
        count = max(1, round(self.fraction * reports.num_nodes))
        order = np.argsort(reported)
        flagged = np.concatenate([order[:count], order[-count:]])
        return np.sort(np.unique(flagged)).astype(np.int64)

    def repair(self, reports: CollectedReports, flagged: np.ndarray) -> CollectedReports:
        return remove_flagged_pairs(reports, flagged)
