"""Tests for attack-crafting helpers."""

import numpy as np
import pytest

from repro.core.base import random_new_neighbors, rr_perturb_neighbor_set
from repro.ldp.mechanisms import rr_keep_probability


class TestRandomNewNeighbors:
    def test_excludes_self_and_existing(self):
        rng = np.random.default_rng(0)
        existing = np.array([1, 2, 3])
        for _ in range(20):
            new = random_new_neighbors(0, existing, 4, 10, rng)
            assert 0 not in new
            assert np.intersect1d(new, existing).size == 0

    def test_count(self):
        rng = np.random.default_rng(1)
        new = random_new_neighbors(0, np.array([1]), 5, 100, rng)
        assert new.size == 5
        assert np.unique(new).size == 5

    def test_sorted(self):
        rng = np.random.default_rng(2)
        new = random_new_neighbors(0, np.empty(0, dtype=np.int64), 10, 50, rng)
        assert np.all(np.diff(new) > 0)

    def test_saturation(self):
        rng = np.random.default_rng(3)
        new = random_new_neighbors(0, np.array([1, 2]), 100, 5, rng)
        assert sorted(new.tolist()) == [3, 4]

    def test_zero_count(self):
        rng = np.random.default_rng(4)
        assert random_new_neighbors(0, np.array([1]), 0, 10, rng).size == 0


class TestRRPerturbNeighborSet:
    def test_output_excludes_self(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            out = rr_perturb_neighbor_set(3, np.array([0, 1]), 20, 1.0, rng)
            assert 3 not in out

    def test_high_epsilon_identity(self):
        rng = np.random.default_rng(1)
        neighbors = np.array([2, 5, 9])
        out = rr_perturb_neighbor_set(0, neighbors, 200, 40.0, rng)
        assert np.array_equal(out, neighbors)

    def test_survival_rate(self):
        epsilon = 1.5
        keep = rr_keep_probability(epsilon)
        rng = np.random.default_rng(2)
        neighbors = np.arange(1, 201)
        rates = []
        for _ in range(30):
            out = rr_perturb_neighbor_set(0, neighbors, 10_000, epsilon, rng)
            rates.append(np.intersect1d(out, neighbors).size / neighbors.size)
        assert np.mean(rates) == pytest.approx(keep, rel=0.03)

    def test_flip_rate(self):
        epsilon = 2.0
        keep = rr_keep_probability(epsilon)
        rng = np.random.default_rng(3)
        neighbors = np.array([1])
        n = 2_000
        new_counts = []
        for _ in range(20):
            out = rr_perturb_neighbor_set(0, neighbors, n, epsilon, rng)
            new_counts.append(np.setdiff1d(out, neighbors).size)
        expected = (n - 2) * (1 - keep)
        assert np.mean(new_counts) == pytest.approx(expected, rel=0.1)

    def test_deduplicates_input(self):
        rng = np.random.default_rng(4)
        out = rr_perturb_neighbor_set(0, np.array([1, 1, 2]), 10, 40.0, rng)
        assert out.tolist() == [1, 2]
