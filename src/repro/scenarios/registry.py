"""The scenario registry: name -> frozen :class:`ScenarioSpec`.

Built on the same :class:`~repro.engine.registry.Registry` machinery the
engine uses for attacks/protocols/defenses, so scenarios get the identical
semantics — string-keyed, collision-checked, addressable from configs and
the CLI.  Registration eagerly validates every component name against the
engine registries: a typo in a catalog entry fails at import time, not at
the eventual run.
"""

from __future__ import annotations

from typing import List

from repro.engine.registry import Registry
from repro.scenarios.spec import ScenarioSpec

#: Registered scenarios.  Factories are zero-argument spec builders, so
#: ``SCENARIOS.create(name)`` yields a fresh (immutable) spec.
SCENARIOS = Registry("scenario")


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register ``spec`` under its own name; returns it for chaining."""
    spec.validate_registries()
    SCENARIOS.register(spec.name, _SpecFactory(spec))
    return spec


class _SpecFactory:
    """Zero-argument factory wrapping one spec (registries store callables)."""

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec

    def __call__(self) -> ScenarioSpec:
        return self.spec


def get_scenario(name: str, dataset: str = "") -> ScenarioSpec:
    """The registered spec, optionally retargeted at another dataset."""
    spec = SCENARIOS.create(name)
    if dataset and dataset != spec.dataset:
        spec = spec.on_dataset(dataset)
    return spec


def scenario_names(paper: bool = None, tag: str = "") -> List[str]:
    """Registered names, optionally filtered by paper-ness and tag."""
    names = []
    for name in SCENARIOS:
        spec = SCENARIOS.create(name)
        if paper is not None and spec.paper is not paper:
            continue
        if tag and tag not in spec.effective_tags():
            continue
        names.append(name)
    return names
