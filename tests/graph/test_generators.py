"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    surrogate_social_graph,
)
from repro.graph.metrics import average_degree, local_clustering_coefficients


class TestErdosRenyi:
    def test_deterministic(self):
        assert erdos_renyi_graph(100, 0.05, rng=0) == erdos_renyi_graph(100, 0.05, rng=0)

    def test_seed_changes_graph(self):
        assert erdos_renyi_graph(100, 0.05, rng=0) != erdos_renyi_graph(100, 0.05, rng=1)

    def test_edge_count_near_expectation(self):
        g = erdos_renyi_graph(400, 0.1, rng=0)
        expected = 0.1 * 400 * 399 / 2
        assert abs(g.num_edges - expected) < 0.15 * expected

    def test_p_zero(self):
        assert erdos_renyi_graph(50, 0.0, rng=0).num_edges == 0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5, rng=0)


class TestBarabasiAlbert:
    def test_node_count(self):
        g = barabasi_albert_graph(200, 3, rng=0)
        assert g.num_nodes == 200

    def test_heavy_tail(self):
        g = barabasi_albert_graph(500, 3, rng=0)
        degrees = g.degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_deterministic(self):
        assert barabasi_albert_graph(100, 2, rng=5) == barabasi_albert_graph(100, 2, rng=5)


class TestPowerlawCluster:
    def test_clustering_higher_than_ba(self):
        clustered = powerlaw_cluster_graph(400, 4, 0.9, rng=0)
        plain = barabasi_albert_graph(400, 4, rng=0)
        assert (
            local_clustering_coefficients(clustered).mean()
            > local_clustering_coefficients(plain).mean()
        )

    def test_deterministic(self):
        a = powerlaw_cluster_graph(100, 3, 0.5, rng=2)
        b = powerlaw_cluster_graph(100, 3, 0.5, rng=2)
        assert a == b

    @pytest.mark.parametrize("n,m,p", [
        (10, 1, 0.0), (30, 2, 0.3), (100, 3, 0.5), (80, 10, 0.9), (50, 49, 0.5),
    ])
    @pytest.mark.parametrize("seed", [0, 1, 7, 12345])
    def test_replica_matches_networkx_exactly(self, n, m, p, seed):
        """The inlined Holme–Kim loop is a draw-for-draw replica of
        ``nx.powerlaw_cluster_graph`` — identical edge *sets* for any seed,
        so surrogate graphs (and everything cached downstream) are unchanged
        by the generator inlining."""
        import networkx as nx

        from repro.graph.generators import _holme_kim_edges
        import random

        edges = _holme_kim_edges(n, m, p, random.Random(seed))
        reference = nx.powerlaw_cluster_graph(n, m, p, seed=seed)
        assert {frozenset(e) for e in edges} == {
            frozenset(e) for e in reference.edges()
        }
        assert len(edges) == reference.number_of_edges()

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError, match="at least"):
            powerlaw_cluster_graph(3, 5, 0.5, rng=0)


class TestSurrogateSocialGraph:
    def test_average_degree_close_to_target(self):
        g = surrogate_social_graph(1000, 20.0, rng=0)
        assert average_degree(g) == pytest.approx(20.0, rel=0.15)

    def test_small_target_degree(self):
        g = surrogate_social_graph(200, 1.0, rng=0)
        assert g.num_edges >= 199 - 1  # m=1 yields a tree-ish graph

    def test_rejects_degree_too_large(self):
        with pytest.raises(ValueError, match="too large"):
            surrogate_social_graph(10, 25.0, rng=0)

    def test_nonzero_clustering(self):
        g = surrogate_social_graph(500, 10.0, triangle_probability=0.7, rng=0)
        assert local_clustering_coefficients(g).mean() > 0.05

    def test_deterministic(self):
        a = surrogate_social_graph(300, 8.0, rng=9)
        b = surrogate_social_graph(300, 8.0, rng=9)
        assert a == b


def test_generators_produce_valid_graphs():
    """Degree-sum invariant across all generators."""
    graphs = [
        erdos_renyi_graph(120, 0.05, rng=0),
        barabasi_albert_graph(120, 3, rng=0),
        powerlaw_cluster_graph(120, 3, 0.5, rng=0),
        surrogate_social_graph(120, 6.0, rng=0),
    ]
    for g in graphs:
        assert g.degrees().sum() == 2 * g.num_edges
        assert np.all(g.degrees() >= 0)
