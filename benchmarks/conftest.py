"""Shared benchmark configuration.

Every bench regenerates one table/figure of the paper on laptop-scale
surrogates and both prints the resulting series (run pytest with ``-s`` to
see them inline) and writes them to ``benchmarks/results/<name>.txt``.

Each session also appends one record of per-figure wall-clock times to
``benchmarks/BENCH_timings.json``, building a performance trajectory across
commits so perf regressions (and wins) are measurable against a baseline.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiplier on the per-dataset bench scales
  (default 1.0; raise toward the dataset defaults for slower, larger runs).
* ``REPRO_BENCH_TRIALS`` — threat-model draws per data point (default 2).
* ``REPRO_BENCH_CACHE`` — set to ``1`` to let benches reuse the engine's
  result cache (off by default so timings measure real computation).
* ``REPRO_BENCH_JOBS`` — worker processes per figure (default 1).
"""

from __future__ import annotations

import json
import os
import time
from collections import defaultdict
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig

#: Per-dataset scales that put every surrogate at roughly 700-900 nodes so a
#: full benchmark run finishes in minutes.  Multiplied by REPRO_BENCH_SCALE.
BENCH_SCALES = {
    "facebook": 0.20,
    "enron": 0.022,
    "astroph": 0.042,
    "gplus": 0.0078,
}

RESULTS_DIR = Path(__file__).parent / "results"


def bench_trials() -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", "2"))


def bench_config(dataset: str, **overrides) -> ExperimentConfig:
    """Benchmark-sized experiment config for one dataset.

    Caching is off by default so recorded wall-clock times measure real
    trial computation, not cache reads; ``REPRO_BENCH_CACHE=1`` re-enables
    it for iterative figure work.
    """
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    scale = min(1.0, BENCH_SCALES[dataset] * multiplier)
    params = dict(
        trials=bench_trials(),
        seed=0,
        scale=scale,
        cache=os.environ.get("REPRO_BENCH_CACHE", "0") == "1",
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def fresh_results_dir():
    """Start each benchmark session with empty result files."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for stale in RESULTS_DIR.glob("*.txt"):
        stale.unlink()
    yield


# ---------------------------------------------------------------------------
# Wall-clock trajectory: benchmarks/BENCH_timings.json
# ---------------------------------------------------------------------------
TIMINGS_PATH = Path(__file__).parent / "BENCH_timings.json"

#: Seconds spent in test calls of this session, keyed by bench module name.
_figure_timings: dict = defaultdict(float)


def record_timing(name: str, seconds: float) -> None:
    """Record one named wall-clock measurement into the trajectory file.

    Benches with internal A/B arms (jobs scaling, paired-vs-full) call this
    per arm instead of relying on the per-module hook, so each arm gets its
    own line in ``BENCH_timings.json``.
    """
    _figure_timings[name] += float(seconds)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Accumulate per-figure wall clock (setup/teardown excluded)."""
    start = time.perf_counter()
    yield
    record_timing(item.module.__name__, time.perf_counter() - start)


def pytest_sessionfinish(session, exitstatus):
    """Append this session's per-figure timings to the trajectory file."""
    if not _figure_timings:
        return
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale_multiplier": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        "trials": bench_trials(),
        "jobs": int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        "cache": os.environ.get("REPRO_BENCH_CACHE", "0") == "1",
        "figures": {name: round(seconds, 3) for name, seconds in sorted(_figure_timings.items())},
    }
    trajectory = []
    try:
        trajectory = json.loads(TIMINGS_PATH.read_text(encoding="utf-8"))
        if not isinstance(trajectory, list):
            trajectory = []
    except OSError:
        pass
    except json.JSONDecodeError:
        # Never silently erase the accumulated history: set the damaged
        # file aside so it can be recovered by hand.
        TIMINGS_PATH.replace(TIMINGS_PATH.with_suffix(".json.corrupt"))
    trajectory.append(record)
    scratch = TIMINGS_PATH.with_suffix(".json.tmp")
    scratch.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    scratch.replace(TIMINGS_PATH)
