"""Tests for the shared-memory export/attach surface of Graph.

Lifecycle contract under test: the exporter creates the segment
(:meth:`Graph.to_shared`), any number of processes attach zero-copy
(:meth:`Graph.attach_shared`), and the exporter — only — unlinks.
"""

import numpy as np
import pytest

from repro.graph.adjacency import Graph, SharedGraphHandle
from repro.graph.generators import powerlaw_cluster_graph


@pytest.fixture
def graph():
    return powerlaw_cluster_graph(120, 4, 0.3, rng=7)


class TestRoundTrip:
    def test_attach_reproduces_graph(self, graph):
        handle, segment = graph.to_shared()
        try:
            attached, view = Graph.attach_shared(handle)
            assert attached == graph
            assert attached.num_nodes == graph.num_nodes
            assert attached.num_edges == graph.num_edges
            assert np.array_equal(attached.degrees(), graph.degrees())
            del attached
            view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_handle_is_small_and_picklable(self, graph):
        import pickle

        handle, segment = graph.to_shared()
        try:
            clone = pickle.loads(pickle.dumps(handle))
            assert clone == handle
            assert isinstance(clone, SharedGraphHandle)
            # The whole point: workers receive a name, not an edge array.
            assert len(pickle.dumps(handle)) < 200
        finally:
            segment.close()
            segment.unlink()

    def test_attached_codes_are_zero_copy_and_read_only(self, graph):
        handle, segment = graph.to_shared()
        try:
            attached, view = Graph.attach_shared(handle)
            codes = attached.edge_codes
            assert not codes.flags.owndata, "attached codes must view the segment"
            with pytest.raises(ValueError):
                attached._codes[0] = 0
            del attached, codes
            view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_empty_graph_round_trips(self):
        empty = Graph(5, [])
        handle, segment = empty.to_shared()
        try:
            attached, view = Graph.attach_shared(handle)
            assert attached == empty
            assert attached.num_edges == 0
            view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_metrics_identical_through_shared_memory(self, graph):
        from repro.graph.metrics import triangles_per_node

        handle, segment = graph.to_shared()
        try:
            attached, view = Graph.attach_shared(handle)
            assert np.array_equal(
                triangles_per_node(attached), triangles_per_node(graph)
            )
            del attached
            view.close()
        finally:
            segment.close()
            segment.unlink()


class TestLifecycle:
    def test_unlink_after_attach_close(self, graph):
        """Exporter unlink succeeds once attachers have closed their views."""
        handle, segment = graph.to_shared()
        attached, view = Graph.attach_shared(handle)
        del attached
        view.close()
        segment.close()
        segment.unlink()
        with pytest.raises(FileNotFoundError):
            Graph.attach_shared(handle)
