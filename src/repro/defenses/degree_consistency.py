"""Degree-consistency detection (Detect2, §VII-B).

A genuine user's two reports are consistent: its Laplace-perturbed degree
centres on the same value its randomized-response bit vector encodes.  RVA
breaks that link — the degree is drawn uniformly from the whole degree space
— so a large gap between the degree calculated from the perturbed bit vector
and the directly reported degree marks a fake user.  Detected users have
their claimed connections removed, restoring genuine nodes' degrees.
"""

from __future__ import annotations

import math

import numpy as np

from repro.defenses.base import Defense, remove_flagged_pairs
from repro.protocols.base import CollectedReports
from repro.protocols.estimators import (
    degree_estimate_variance_bits,
    degree_estimate_variance_laplace,
    degrees_from_perturbed_graph,
)


class DegreeConsistencyDefense(Defense):
    """Detect2: flag users whose two degree channels disagree.

    Parameters
    ----------
    threshold:
        Flag when ``|reported_degree - degree_from_bits| > threshold``.
        Two policies for the default (``None``):

        * ``"sigma"`` rule (default): 3 standard deviations of the honest
          difference — ``3 * sqrt(var_bits + var_laplace)`` — a calibrated
          false-positive rate of ~0.3%.
        * ``"paper"``: the paper's literal rule, the *maximum* bit-vector
          degree plus three Laplace standard deviations.  Far more
          permissive (high false-negative rate), which is exactly the
          weakness Exp 7 reports.
    policy:
        Which automatic threshold to use when ``threshold`` is ``None``.
    """

    name = "Detect2"

    def __init__(self, threshold: float | None = None, policy: str = "sigma"):
        if policy not in ("sigma", "paper"):
            raise ValueError(f"policy must be 'sigma' or 'paper', got {policy!r}")
        if threshold is not None and threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self.policy = policy

    def consistency_gaps(self, reports: CollectedReports) -> np.ndarray:
        """``|reported - from_bits|`` per user."""
        from_bits = degrees_from_perturbed_graph(
            reports.perturbed_graph, reports.adjacency_epsilon
        )
        return np.abs(np.asarray(reports.reported_degrees, dtype=np.float64) - from_bits)

    def effective_threshold(self, reports: CollectedReports) -> float:
        """The threshold actually used for these reports."""
        if self.threshold is not None:
            return float(self.threshold)
        laplace_sigma = math.sqrt(degree_estimate_variance_laplace(reports.degree_epsilon))
        if self.policy == "paper":
            from_bits = degrees_from_perturbed_graph(
                reports.perturbed_graph, reports.adjacency_epsilon
            )
            return float(from_bits.max() + 3.0 * laplace_sigma)
        bits_sigma = math.sqrt(
            degree_estimate_variance_bits(reports.num_nodes, reports.adjacency_epsilon)
        )
        return 3.0 * math.sqrt(bits_sigma**2 + laplace_sigma**2)

    def detect(self, reports: CollectedReports) -> np.ndarray:
        gaps = self.consistency_gaps(reports)
        return np.flatnonzero(gaps > self.effective_threshold(reports)).astype(np.int64)

    def repair(self, reports: CollectedReports, flagged: np.ndarray) -> CollectedReports:
        return remove_flagged_pairs(reports, flagged)
