"""Tests for repro.graph.adjacency.Graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import Graph
from repro.utils.sparse import pair_count


@pytest.fixture
def triangle_plus_isolated():
    """Triangle 0-1-2 plus isolated node 3."""
    return Graph(4, [(0, 1), (1, 2), (2, 0)])


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.num_nodes == 0 and g.num_edges == 0

    def test_isolated_nodes(self):
        g = Graph(5)
        assert g.num_nodes == 5 and g.num_edges == 0
        assert np.array_equal(g.degrees(), np.zeros(5))

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loops"):
            Graph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(3, [(0, 3)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            Graph(3, [(0, 1, 2)])

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_from_codes(self):
        g = Graph.from_codes(4, np.array([0, 5], dtype=np.int64))
        assert g.has_edge(0, 1) and g.has_edge(2, 3)

    def test_from_codes_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_codes(4, np.array([pair_count(4)], dtype=np.int64))

    def test_from_codes_sorted_unique_fast_path(self):
        codes = np.array([0, 3, 5], dtype=np.int64)
        fast = Graph.from_codes(4, codes, assume_sorted_unique=True)
        assert fast == Graph.from_codes(4, codes)
        assert fast.degrees().tolist() == Graph.from_codes(4, codes).degrees().tolist()

    def test_from_codes_fast_path_freezes_adopted_array(self):
        # The fast path adopts the buffer without copying; mutating it
        # afterwards must fail loudly rather than corrupt the graph.
        codes = np.array([0, 3, 5], dtype=np.int64)
        Graph.from_codes(4, codes, assume_sorted_unique=True)
        with pytest.raises(ValueError):
            codes[0] = 2

    def test_from_codes_fast_path_copies_views(self):
        # Freezing a view would not stop writes through its base, so views
        # are copied instead of adopted.
        base = np.array([0, 3, 5, 99], dtype=np.int64)
        g = Graph.from_codes(4, base[:3], assume_sorted_unique=True)
        base[0] = 4
        assert g.edge_codes.tolist() == [0, 3, 5]

    def test_from_codes_fast_path_still_range_checks(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_codes(4, np.array([0, pair_count(4)], dtype=np.int64), assume_sorted_unique=True)
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_codes(4, np.array([-1, 2], dtype=np.int64), assume_sorted_unique=True)


class TestQueries:
    def test_neighbors(self, triangle_plus_isolated):
        g = triangle_plus_isolated
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(3).tolist() == []

    def test_degrees(self, triangle_plus_isolated):
        assert triangle_plus_isolated.degrees().tolist() == [2, 2, 2, 0]

    def test_degree_single(self, triangle_plus_isolated):
        assert triangle_plus_isolated.degree(1) == 2

    def test_has_edge_symmetry(self, triangle_plus_isolated):
        g = triangle_plus_isolated
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 3)
        assert not g.has_edge(2, 2)

    def test_node_range_checked(self, triangle_plus_isolated):
        with pytest.raises(IndexError):
            triangle_plus_isolated.neighbors(4)
        with pytest.raises(IndexError):
            triangle_plus_isolated.degree(-1)

    def test_adjacency_bit_vector(self, triangle_plus_isolated):
        row = triangle_plus_isolated.adjacency_bit_vector(0)
        assert row.tolist() == [0, 1, 1, 0]
        assert row.dtype == np.uint8

    def test_edges_iteration(self, triangle_plus_isolated):
        assert sorted(triangle_plus_isolated.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_csr_symmetric(self, triangle_plus_isolated):
        matrix = triangle_plus_isolated.csr()
        dense = matrix.toarray()
        assert np.array_equal(dense, dense.T)
        assert dense.sum() == 6  # 3 edges, both directions

    def test_degrees_read_only(self, triangle_plus_isolated):
        with pytest.raises(ValueError):
            triangle_plus_isolated.degrees()[0] = 99

    def test_edge_codes_read_only(self, triangle_plus_isolated):
        with pytest.raises(ValueError):
            triangle_plus_isolated.edge_codes[0] = 99


class TestEdits:
    def test_with_edges(self, triangle_plus_isolated):
        g2 = triangle_plus_isolated.with_edges([(0, 3)])
        assert g2.has_edge(0, 3)
        assert not triangle_plus_isolated.has_edge(0, 3), "original must be untouched"

    def test_with_edges_idempotent(self, triangle_plus_isolated):
        g2 = triangle_plus_isolated.with_edges([(0, 1)])
        assert g2.num_edges == 3

    def test_with_edges_empty_returns_self(self, triangle_plus_isolated):
        assert triangle_plus_isolated.with_edges([]) is triangle_plus_isolated

    def test_without_edges(self, triangle_plus_isolated):
        g2 = triangle_plus_isolated.without_edges([(0, 1)])
        assert not g2.has_edge(0, 1)
        assert g2.num_edges == 2

    def test_without_missing_edge_ignored(self, triangle_plus_isolated):
        g2 = triangle_plus_isolated.without_edges([(0, 3)])
        assert g2.num_edges == 3

    def test_with_nodes(self, triangle_plus_isolated):
        g2 = triangle_plus_isolated.with_nodes(2)
        assert g2.num_nodes == 6
        assert g2.num_edges == 3
        assert g2.has_edge(0, 1) and g2.has_edge(1, 2) and g2.has_edge(0, 2)
        assert g2.degree(4) == 0 and g2.degree(5) == 0

    def test_with_nodes_zero(self, triangle_plus_isolated):
        assert triangle_plus_isolated.with_nodes(0) is triangle_plus_isolated

    def test_subgraph(self, triangle_plus_isolated):
        sub = triangle_plus_isolated.subgraph([0, 1, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 1
        assert sub.has_edge(0, 1)

    def test_subgraph_duplicate_nodes_rejected(self, triangle_plus_isolated):
        with pytest.raises(ValueError, match="unique"):
            triangle_plus_isolated.subgraph([0, 0, 1])


class TestLazyIndex:
    """The CSR index is built on first neighbour query, not at construction."""

    def test_degrees_available_without_csr(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 0)])
        assert g._indices is None
        assert g.degrees().tolist() == [2, 2, 2, 0]
        assert g._indices is None, "degrees must not force the CSR build"

    def test_neighbors_builds_and_caches(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 0)])
        assert g.neighbors(0).tolist() == [1, 2]
        index = g._indices
        g.neighbors(2)
        assert g._indices is index, "CSR index built once and cached"

    def test_neighbors_sorted_after_lazy_build(self):
        # Buckets mix smaller-id and larger-id neighbours; the stable
        # single-key sort must still leave each bucket ascending.
        g = Graph(6, [(2, 4), (0, 2), (2, 5), (1, 2), (2, 3)])
        assert g.neighbors(2).tolist() == [0, 1, 3, 4, 5]

    def test_pickle_round_trip(self, triangle_plus_isolated):
        import pickle

        g = triangle_plus_isolated
        g.neighbors(0)  # populate the lazy caches before pickling
        clone = pickle.loads(pickle.dumps(g))
        assert clone == g
        assert clone.degrees().tolist() == g.degrees().tolist()
        assert clone.neighbors(1).tolist() == g.neighbors(1).tolist()


class TestNetworkxInterop:
    def test_round_trip(self, triangle_plus_isolated):
        nx_graph = triangle_plus_isolated.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == triangle_plus_isolated

    def test_from_networkx_relabels(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge("alice", "bob")
        g = Graph.from_networkx(nx_graph)
        assert g.num_nodes == 2 and g.num_edges == 1


class TestEquality:
    def test_equal(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])

    def test_not_equal_edges(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])

    def test_not_equal_sizes(self):
        assert Graph(3, [(0, 1)]) != Graph(4, [(0, 1)])

    def test_hashable(self):
        assert len({Graph(3, [(0, 1)]), Graph(3, [(1, 0)])}) == 1

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(num_nodes=3, num_edges=1)"


@given(
    n=st.integers(min_value=2, max_value=60),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_graph_invariants_property(n, data):
    """Degree sum equals 2E, neighbour lists are symmetric and sorted."""
    max_edges = min(pair_count(n), 80)
    edge_list = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda pair: pair[0] != pair[1]),
            max_size=max_edges,
        )
    )
    g = Graph(n, edge_list)
    assert g.degrees().sum() == 2 * g.num_edges
    for node in range(n):
        nbrs = g.neighbors(node)
        assert np.all(np.diff(nbrs) > 0), "neighbours sorted and unique"
        for nbr in nbrs.tolist():
            assert node in g.neighbors(nbr).tolist(), "symmetry"
