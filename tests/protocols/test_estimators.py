"""Tests for the LF-GDPR estimators and triangle calibration."""

import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.metrics import (
    local_clustering_coefficients,
    modularity_from_labels,
    triangles_per_node,
)
from repro.ldp.perturbation import perturb_graph
from repro.protocols.estimators import (
    degree_estimate_variance_bits,
    degree_estimate_variance_laplace,
    degrees_from_perturbed_graph,
    estimate_clustering_coefficients,
    estimate_modularity,
    fuse_degree_estimates,
    triangle_calibration,
)


class TestDegreeFromBits:
    def test_unbiased(self):
        g = powerlaw_cluster_graph(300, 5, 0.5, rng=0)
        epsilon = 2.0
        rng = np.random.default_rng(0)
        estimates = np.mean(
            [
                degrees_from_perturbed_graph(perturb_graph(g, epsilon, rng=rng), epsilon)
                for _ in range(30)
            ],
            axis=0,
        )
        errors = np.abs(estimates - g.degrees())
        assert errors.mean() < 2.0

    def test_identity_at_high_epsilon(self):
        g = powerlaw_cluster_graph(100, 3, 0.5, rng=0)
        perturbed = perturb_graph(g, 40.0, rng=0)
        estimates = degrees_from_perturbed_graph(perturbed, 40.0)
        assert np.allclose(estimates, g.degrees(), atol=1e-6)


class TestVariancesAndFusion:
    def test_bits_variance_positive_and_decreasing_in_eps(self):
        variances = [degree_estimate_variance_bits(1000, eps) for eps in (1, 2, 4)]
        assert all(v > 0 for v in variances)
        assert variances == sorted(variances, reverse=True)

    def test_laplace_variance(self):
        assert degree_estimate_variance_laplace(2.0) == pytest.approx(0.5)

    def test_fusion_between_inputs(self):
        fused = fuse_degree_estimates(
            reported=np.array([10.0]),
            from_bits=np.array([20.0]),
            num_nodes=1000,
            adjacency_epsilon=2.0,
            degree_epsilon=2.0,
        )
        assert 10.0 < fused[0] < 20.0

    def test_fusion_weights_favor_laplace_for_large_n(self):
        # Bit-vector variance grows with N, so the self-report dominates.
        fused = fuse_degree_estimates(
            reported=np.array([10.0]),
            from_bits=np.array([20.0]),
            num_nodes=100_000,
            adjacency_epsilon=2.0,
            degree_epsilon=2.0,
        )
        assert fused[0] < 11.0

    def test_fusion_identical_inputs_fixed_point(self):
        fused = fuse_degree_estimates(
            np.array([7.0]), np.array([7.0]), 100, 2.0, 2.0
        )
        assert fused[0] == pytest.approx(7.0)


class TestTriangleCalibration:
    def test_low_bias_with_calibrated_degrees(self):
        """With true-degree plug-ins, R() recovers triangle mass on ER graphs.

        An Erdos-Renyi graph is used because the theta~ plug-in of Eq. 16
        assumes pair-independence, which clustered graphs violate.
        """
        from repro.graph.generators import erdos_renyi_graph
        from repro.graph.metrics import edge_density
        from repro.protocols.estimators import degrees_from_perturbed_graph

        g = erdos_renyi_graph(250, 0.08, rng=0)
        epsilon = 3.0
        rng = np.random.default_rng(1)
        true_triangles = triangles_per_node(g).astype(np.float64)
        estimates = []
        for _ in range(15):
            perturbed = perturb_graph(g, epsilon, rng=rng)
            plugin = np.clip(
                degrees_from_perturbed_graph(perturbed, epsilon), 0.0, g.num_nodes - 1.0
            )
            estimates.append(
                triangle_calibration(
                    triangles_per_node(perturbed).astype(np.float64),
                    plugin,
                    g.num_nodes,
                    epsilon,
                    edge_density(perturbed),
                )
            )
        mean_estimate = np.mean(estimates, axis=0)
        assert mean_estimate.sum() == pytest.approx(true_triangles.sum(), rel=0.3)

    def test_perturbed_plugin_tracks_attack_differences(self):
        """The paper's estimator: correction terms cancel in before/after
        differences, so adding triangles raises corrected counts linearly."""
        from repro.graph.metrics import edge_density
        from repro.ldp.mechanisms import rr_keep_probability

        g = powerlaw_cluster_graph(120, 4, 0.6, rng=3)
        epsilon = 3.0
        perturbed = perturb_graph(g, epsilon, rng=4)
        observed = triangles_per_node(perturbed).astype(np.float64)
        degrees = perturbed.degrees().astype(np.float64)
        density = edge_density(perturbed)
        base = triangle_calibration(observed, degrees, g.num_nodes, epsilon, density)
        bumped = triangle_calibration(observed + 5, degrees, g.num_nodes, epsilon, density)
        keep = rr_keep_probability(epsilon)
        expected_delta = 5.0 / (keep**2 * (2 * keep - 1))
        assert np.allclose(bumped - base, expected_delta)

    def test_epsilon_zero_rejected(self):
        with pytest.raises(ValueError, match="no signal"):
            triangle_calibration(np.array([1.0]), np.array([2.0]), 10, 0.0, 0.1)

    def test_identity_at_high_epsilon(self):
        g = powerlaw_cluster_graph(150, 4, 0.6, rng=2)
        perturbed = perturb_graph(g, 40.0, rng=0)  # identical to g
        from repro.graph.metrics import edge_density

        corrected = triangle_calibration(
            triangles_per_node(perturbed).astype(np.float64),
            perturbed.degrees().astype(np.float64),
            g.num_nodes,
            40.0,
            edge_density(perturbed),
        )
        assert np.allclose(corrected, triangles_per_node(g), atol=1e-3)


class TestClusteringEstimator:
    def test_range_clipped(self):
        g = powerlaw_cluster_graph(200, 4, 0.6, rng=0)
        perturbed = perturb_graph(g, 2.0, rng=0)
        estimates = estimate_clustering_coefficients(perturbed, 2.0)
        assert np.all(estimates >= 0.0) and np.all(estimates <= 1.0)

    def test_tracks_truth_at_high_epsilon(self):
        g = powerlaw_cluster_graph(200, 4, 0.6, rng=1)
        perturbed = perturb_graph(g, 40.0, rng=0)
        estimates = estimate_clustering_coefficients(perturbed, 40.0)
        truth = local_clustering_coefficients(g)
        assert np.abs(estimates - truth).mean() < 0.01

    def test_degree_below_two_yields_zero(self):
        g = Graph(4, [(0, 1)])
        estimates = estimate_clustering_coefficients(g, 4.0)
        assert estimates.tolist() == [0.0, 0.0, 0.0, 0.0]


class TestModularityEstimator:
    def test_tracks_truth_at_high_epsilon(self):
        g = powerlaw_cluster_graph(200, 4, 0.5, rng=3)
        labels = (np.arange(200) // 50).astype(np.int64)
        perturbed = perturb_graph(g, 40.0, rng=0)
        estimate = estimate_modularity(
            perturbed, labels, 40.0, g.degrees().astype(np.float64)
        )
        truth = modularity_from_labels(g, labels)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_labels_shape_checked(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="one entry per node"):
            estimate_modularity(g, np.zeros(2, dtype=np.int64), 2.0, np.zeros(3))

    def test_zero_degrees_graph(self):
        g = Graph(4)
        value = estimate_modularity(g, np.zeros(4, dtype=np.int64), 2.0, np.zeros(4))
        assert value == 0.0

    def test_packed_and_sparse_paths_bit_identical(self, monkeypatch):
        """The density dispatch must never change the modularity estimate."""
        g = powerlaw_cluster_graph(150, 4, 0.5, rng=5)
        perturbed = perturb_graph(g, 0.8, rng=1)  # near-dense: takes packed path
        labels = (np.arange(150) % 6).astype(np.int64)
        fused = perturbed.degrees().astype(np.float64)
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", "0.000001")
        packed = estimate_modularity(perturbed, labels, 0.8, fused)
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", "1.1")
        sparse = estimate_modularity(perturbed, labels, 0.8, fused)
        assert packed == sparse


class TestClusteringDispatchEquality:
    def test_packed_and_sparse_paths_bit_identical(self, monkeypatch):
        """Same floats out of Eq. 15 whichever triangle backend runs."""
        g = powerlaw_cluster_graph(150, 4, 0.5, rng=6)
        perturbed = perturb_graph(g, 0.6, rng=2)
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", "0.000001")
        packed = estimate_clustering_coefficients(perturbed, 0.6)
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", "1.1")
        sparse = estimate_clustering_coefficients(perturbed, 0.6)
        assert np.array_equal(packed, sparse)
