"""Real-dataset ingestion: fetch-once cache, checksums, staleness, CLI."""

import gzip
import io
import json

import pytest

from repro.graph.datasets import (
    REAL_DATASETS,
    RealDatasetSpec,
    _load_real_memo,
    cached_dataset_path,
    dataset_cache_dir,
    fetch_dataset,
    known_dataset_names,
    load_dataset,
    load_real_dataset,
    lookup_spec,
)

SNAP_TEXT = (
    "# Undirected graph: fake.txt\n"
    "# Nodes: 5 Edges: 4\n"
    "# FromNodeId\tToNodeId\n"
    "10\t20\n"
    "20\t10\n"
    "20\t30\n"
    "30\t30\n"
    "40\t50\n"
    "10\t40\n"
)


@pytest.fixture
def fake_dataset(tmp_path, monkeypatch):
    """A registered fake real dataset backed by a local gzip file."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    source = tmp_path / "fake.txt.gz"
    source.write_bytes(gzip.compress(SNAP_TEXT.encode()))
    spec = RealDatasetSpec(
        name="snap-fake",
        url="https://invalid.example/fake.txt.gz",
        paper_nodes=5,
        paper_edges=4,
        description="test fixture",
    )
    monkeypatch.setitem(REAL_DATASETS, "snap-fake", spec)
    _load_real_memo.cache_clear()
    yield source
    _load_real_memo.cache_clear()


class TestFetch:
    def test_fetch_parses_and_caches(self, fake_dataset):
        assert cached_dataset_path("snap-fake") is None
        path = fetch_dataset("snap-fake", source=fake_dataset)
        assert path.name == "graph.npz"
        assert cached_dataset_path("snap-fake") == path
        graph = load_real_dataset("snap-fake")
        # 5 distinct ids remapped densely; dup direction and self-loop dropped.
        assert (graph.num_nodes, graph.num_edges) == (5, 4)

    def test_fetch_is_idempotent(self, fake_dataset):
        first = fetch_dataset("snap-fake", source=fake_dataset)
        second = fetch_dataset("snap-fake", source=fake_dataset)
        assert first == second

    def test_plain_text_source(self, fake_dataset, tmp_path):
        plain = tmp_path / "fake.txt"
        plain.write_text(SNAP_TEXT)
        path = fetch_dataset("snap-fake", source=plain)
        # gzip and plain sources hash the same decompressed bytes → same entry.
        assert path == fetch_dataset("snap-fake", source=fake_dataset, force=True)

    def test_meta_records_provenance(self, fake_dataset):
        path = fetch_dataset("snap-fake", source=fake_dataset)
        meta = json.loads((path.parent / "meta.json").read_text())
        assert meta["name"] == "snap-fake"
        assert meta["num_nodes"] == 5
        assert meta["num_edges"] == 4
        assert path.parent.name == meta["sha256"][:16]

    def test_pinned_checksum_mismatch_refuses_cache(self, fake_dataset, monkeypatch):
        spec = REAL_DATASETS["snap-fake"]
        monkeypatch.setitem(
            REAL_DATASETS,
            "snap-fake",
            RealDatasetSpec(
                name=spec.name,
                url=spec.url,
                paper_nodes=spec.paper_nodes,
                paper_edges=spec.paper_edges,
                description=spec.description,
                sha256="0" * 64,
            ),
        )
        with pytest.raises(RuntimeError, match="checksum mismatch"):
            fetch_dataset("snap-fake", source=fake_dataset)
        assert cached_dataset_path("snap-fake") is None

    def test_offline_error_names_source_flag(self, fake_dataset):
        with pytest.raises(RuntimeError, match="--source"):
            fetch_dataset("snap-fake", force=True)

    def test_unknown_name(self, fake_dataset):
        with pytest.raises(KeyError, match="unknown real dataset"):
            fetch_dataset("snap-nope")


class TestLoad:
    def test_unfetched_load_is_actionable(self, fake_dataset):
        with pytest.raises(RuntimeError, match="dataset fetch snap-fake"):
            load_real_dataset("snap-fake")

    def test_load_dataset_dispatches_real_names(self, fake_dataset):
        fetch_dataset("snap-fake", source=fake_dataset)
        graph = load_dataset("snap-fake")
        assert graph == load_real_dataset("snap-fake")

    def test_scale_keeps_prefix_subgraph(self, fake_dataset):
        fetch_dataset("snap-fake", source=fake_dataset)
        # min node floor is 64 > 5, so any scale returns the full graph here.
        assert load_real_dataset("snap-fake", scale=0.5).num_nodes == 5
        with pytest.raises(ValueError):
            load_real_dataset("snap-fake", scale=1.5)

    def test_refetch_invalidates_memo(self, fake_dataset, tmp_path):
        fetch_dataset("snap-fake", source=fake_dataset)
        before = load_real_dataset("snap-fake")
        assert before.num_edges == 4
        changed = tmp_path / "changed.txt"
        changed.write_text(SNAP_TEXT + "20\t40\n")
        fetch_dataset("snap-fake", source=changed, force=True)
        after = load_real_dataset("snap-fake")
        # New content → new digest directory → memo keyed on path misses.
        assert after.num_edges == 5

    def test_corrupt_npz_fails_checksum(self, fake_dataset):
        path = fetch_dataset("snap-fake", source=fake_dataset)
        _load_real_memo.cache_clear()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(RuntimeError, match="fails its checksum"):
            load_real_dataset("snap-fake")

    def test_damaged_meta_is_actionable(self, fake_dataset):
        path = fetch_dataset("snap-fake", source=fake_dataset)
        _load_real_memo.cache_clear()
        (path.parent / "meta.json").write_text("{not json")
        with pytest.raises(RuntimeError, match="--force"):
            load_real_dataset("snap-fake")


class TestRegistry:
    def test_known_names_cover_both_registries(self):
        names = known_dataset_names()
        assert "facebook" in names
        assert "snap-facebook" in names

    def test_lookup_spec_returns_real_spec(self):
        spec = lookup_spec("snap-enron")
        assert isinstance(spec, RealDatasetSpec)
        assert spec.paper_nodes == 36_692

    def test_cache_dir_lives_next_to_result_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert dataset_cache_dir("snap-facebook") == (
            tmp_path / "datasets" / "snap-facebook"
        )


class TestCli:
    def run_cli(self, *argv):
        from repro.experiments.cli import run

        out = io.StringIO()
        code = run(list(argv), out=out)
        return code, out.getvalue()

    def test_dataset_list(self, fake_dataset):
        code, text = self.run_cli("dataset", "list")
        assert code == 0
        assert "snap-fake" in text
        assert "facebook" in text

    def test_dataset_fetch_and_stats(self, fake_dataset):
        code, text = self.run_cli(
            "dataset", "fetch", "snap-fake", "--source", str(fake_dataset)
        )
        assert code == 0
        assert "cached snap-fake" in text
        code, text = self.run_cli("dataset", "stats", "snap-fake")
        assert code == 0
        assert "5" in text and "4" in text

    def test_dataset_fetch_failure_exits_nonzero(self, fake_dataset):
        code, text = self.run_cli("dataset", "fetch", "snap-fake")
        assert code == 1
        assert "--source" in text
