"""Fig. 10 — impact of beta on attacks to clustering coefficient (Exp 5).

Expected shapes (paper): positive correlation with beta for all attacks;
MGA's curve plateaus toward RVA once the fake nodes cover all targets
(beta around 0.05-0.1).
"""

import numpy as np
import pytest
from conftest import bench_config, emit

from repro.experiments.figures import fig10


@pytest.mark.parametrize("dataset", ["facebook", "enron", "astroph", "gplus"])
def test_fig10_cc_vs_beta(benchmark, dataset):
    config = bench_config(dataset)

    result = benchmark.pedantic(fig10, args=(dataset, config), rounds=1, iterations=1)

    emit("fig10_cc_vs_beta", result.format())
    mga = np.array(result.gains_of("MGA"))
    assert np.all(np.isfinite(mga))
    assert mga[-1] > mga[0], "more fake users -> larger clustering gain"
