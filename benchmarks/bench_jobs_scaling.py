"""Jobs-scaling benchmark: one session fan-out vs per-panel pools.

Runs the multi-panel, multi-dataset ``xprod/cross-dataset-mga`` scenario
three ways at equal settings (``REPRO_BENCH_REPEATS`` consecutive runs per
arm, the shape of iterative figure work):

* ``jobs=1`` through the session engine (the serial reference);
* ``jobs=N`` through **one** :class:`~repro.engine.session.EngineSession` —
  all panels of every run in a single heterogeneous batch over one
  *persistent* pool, every graph shared-memory-exported once;
* ``jobs=N`` through the **per-panel-pool baseline**: each panel of each
  run as its own fan-out over a fresh process pool whose initializer ships
  the graph to every worker by pickle — the faithful pre-session
  architecture, paying pool startup and per-worker graph serialisation
  once per panel per run.

PRs 1-4 made the trials themselves cheap, so at ``--jobs N`` the dominant
remaining cost is exactly this per-panel orchestration overhead — which is
what the A/B isolates.  Asserts all arms are sha256-identical (the engine's
determinism guarantee), prints the wall-clocks and speedup, and records the
timings into ``benchmarks/BENCH_timings.json`` through the shared conftest
hook.  Wall-clock is only *asserted* with a generous margin — shared CI
runners are noisy; the recorded trajectory is the real measure.
"""

import hashlib
import json
import os
import time
from collections import OrderedDict

from concurrent.futures import ProcessPoolExecutor

from conftest import bench_config, emit, record_timing

from repro.engine.cache import NullCache
from repro.engine.executors import execute_task
from repro.scenarios import get_scenario
from repro.scenarios.run import prepare_scenario, run_scenario

SCENARIO = "xprod/cross-dataset-mga"

#: Scale applied uniformly to every panel's dataset (the golden-fixture
#: scale: surrogates of 64-750 nodes), times REPRO_BENCH_SCALE.
BASE_SCALE = 0.02


def _sha256_of(gains):
    return hashlib.sha256(json.dumps([float(g) for g in gains]).encode("ascii")).hexdigest()


# Worker-side state of the legacy per-panel-pool architecture: the graph
# arrives pickled through the pool initializer, once per worker per pool.
_LEGACY_GRAPH = None
_LEGACY_LABELS = None


def _legacy_init(graph, labels):
    global _LEGACY_GRAPH, _LEGACY_LABELS
    _LEGACY_GRAPH = graph
    _LEGACY_LABELS = labels


def _legacy_run(task):
    return execute_task(task, _LEGACY_GRAPH, _LEGACY_LABELS)


def _bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def _config(jobs):
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return bench_config(
        "facebook", scale=min(1.0, BASE_SCALE * multiplier), jobs=jobs, cache=False
    )


def _repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def _run_per_panel_pools(spec, prepared, jobs):
    """One full scenario pass through the pre-session architecture.

    One fan-out per panel, each over a fresh ProcessPoolExecutor whose
    initializer ships the panel's graph to every worker by pickle (what the
    engine did before graphs moved to shared memory and the pool became
    persistent).
    """
    graphs, labels, tasks = prepared
    panel_keys = {panel.figure: panel.key for panel in spec.panels}
    by_panel = OrderedDict()
    for index, task in enumerate(tasks):
        by_panel.setdefault(task.figure, []).append(index)
    gains = [None] * len(tasks)
    for figure, indices in by_panel.items():
        key = panel_keys[figure]
        panel_tasks = [tasks[i] for i in indices]
        workers = min(jobs, len(panel_tasks))
        chunksize = max(1, len(panel_tasks) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_legacy_init,
            initargs=(graphs[key], labels.get(key)),
        ) as pool:
            computed = list(pool.map(_legacy_run, panel_tasks, chunksize=chunksize))
        for i, gain in zip(indices, computed):
            gains[i] = gain
    return gains


def test_jobs_scaling():
    from repro.engine.session import EngineSession

    spec = get_scenario(SCENARIO)
    jobs = _bench_jobs()
    repeats = _repeats()

    # -- session engine, jobs=1 (serial reference) ----------------------
    serial_config = _config(1)
    prepared = prepare_scenario(spec, serial_config)
    start = time.perf_counter()
    for _ in range(repeats):
        serial = run_scenario(spec, serial_config, cache=NullCache(), prepared=prepared)
    serial_seconds = time.perf_counter() - start

    # -- session engine, jobs=N: one persistent pool, shared memory -----
    start = time.perf_counter()
    with EngineSession(jobs=jobs, cache=NullCache()) as session:
        for _ in range(repeats):
            session_result = run_scenario(
                spec, _config(jobs), cache=NullCache(),
                prepared=prepared, session=session,
            )
    session_seconds = time.perf_counter() - start

    # -- per-panel-pool baseline, jobs=N --------------------------------
    start = time.perf_counter()
    for _ in range(repeats):
        baseline_gains = _run_per_panel_pools(spec, prepared, jobs)
    baseline_seconds = time.perf_counter() - start

    # -- identity: all three paths produce the same panels --------------
    digest = lambda result: _sha256_of(  # noqa: E731
        [g for sweep in result.panels.values() for curve in sweep.samples.values() for point in curve for g in point]
    )
    assert digest(session_result) == digest(serial), (
        "session jobs=N must be sha256-identical to jobs=1"
    )
    tasks = prepared.tasks
    session_gains = [
        g
        for sweep in serial.panels.values()
        for curve in sweep.samples.values()
        for point in curve
        for g in point
    ]
    assert sorted(map(float, baseline_gains)) == sorted(map(float, session_gains)), (
        "per-panel baseline diverged from the session engine"
    )

    speedup = baseline_seconds / session_seconds if session_seconds else float("inf")
    emit(
        "jobs_scaling",
        f"{SCENARIO} ({len(spec.panels)} panels, {len(tasks)} tasks, "
        f"jobs={jobs}, {repeats} runs per arm):\n"
        f"  session jobs=1          {serial_seconds:7.2f}s\n"
        f"  session jobs={jobs}          {session_seconds:7.2f}s\n"
        f"  per-panel pools jobs={jobs}  {baseline_seconds:7.2f}s\n"
        f"  session vs per-panel speedup: {speedup:.2f}x",
    )
    record_timing("bench_jobs_scaling/jobs1", serial_seconds)
    record_timing(f"bench_jobs_scaling/jobs{jobs}", session_seconds)
    record_timing(f"bench_jobs_scaling/per_panel_pools_jobs{jobs}", baseline_seconds)

    # Generous bound only — CI runners are noisy; the recorded trajectory in
    # BENCH_timings.json is where the >=1.3x target is tracked.
    assert session_seconds < baseline_seconds * 1.2, (
        f"session fan-out much slower than per-panel pools: "
        f"{session_seconds:.2f}s vs {baseline_seconds:.2f}s"
    )
