"""Fig. 15 — attacks on LF-GDPR and LDPGen, modularity (Exp 9).

Expected shapes (paper): all attacks shift the estimated modularity on both
protocols across epsilon, MGA generally strongest.
"""

import numpy as np
from conftest import bench_config, emit

from repro.experiments.figures import fig15


def test_fig15_protocol_comparison(benchmark):
    config = bench_config("facebook")

    results = benchmark.pedantic(fig15, args=(config,), rounds=1, iterations=1)

    for name, sweep in results.items():
        emit("fig15_protocols_modularity", sweep.format())
    for name, sweep in results.items():
        mga = np.array(sweep.gains_of("MGA"))
        assert np.all(np.isfinite(mga)), f"{name}: non-finite MGA gains"
        assert mga.mean() > 0, f"{name}: MGA must shift modularity"
