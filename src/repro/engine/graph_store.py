"""Session-scoped registry of graphs (and labelings) behind shared memory.

A :class:`GraphStore` owns every graph a batch of
:class:`~repro.engine.tasks.TrialTask` may reference.  Graphs register under
their content fingerprint (the tasks' ``graph_key``) and community labelings
under theirs (``labels_key``), so a heterogeneous batch — tasks from several
figures, panels or datasets — resolves each task to its graph by value, not
by call-site convention.

For parallel execution the store exports each graph **once** into a POSIX
shared-memory segment (:meth:`repro.graph.adjacency.Graph.to_shared`).
Workers receive only the tiny picklable handles and map the segments
zero-copy, instead of unpickling a fresh edge-array copy per pool — the
dominant fan-out cost for large surrogates.

Lifecycle contract (create → attach → unlink): the store creates segments
lazily on first export, attachers never unlink, and :meth:`close` (also run
by the context manager and the finalizer) unlinks everything the store
created.  Closing while workers still hold attachments is safe on POSIX —
their mappings stay valid until they drop them.

Abnormal teardown: a process that dies mid-sweep without reaching
:meth:`close` would leak its ``/dev/shm`` segments (they survive the
process).  Every store therefore registers in a module-level weak set whose
entries are closed from an ``atexit`` hook (covers normal exits **and**
``KeyboardInterrupt``, which unwinds into a normal interpreter exit) and
from a chaining ``SIGTERM`` handler installed on first store creation when
the process had none (covers supervisor kills mid-sweep).  ``SIGKILL``
cannot be intercepted by design — the distributed layer's lease reclaim
covers the work, and the OS reclaims ``/dev/shm`` on reboot only, so
operators should prefer SIGTERM.  Forked children (pool workers) inherit
the registry but never unlink: ownership is pinned to the creating PID.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import weakref
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.engine.tasks import TrialTask, graph_fingerprint, labels_fingerprint
from repro.graph.adjacency import (
    Graph,
    SharedGraphHandle,
    attach_shared_memory,
)
from repro.graph.streaming import ChunkedRowsHandle, share_packed_row_blocks
from repro.telemetry.core import current_tracer


class SharedLabelsHandle:
    """Picklable reference to a labels array exported into shared memory."""

    __slots__ = ("shm_name", "size")

    def __init__(self, shm_name: str, size: int):
        self.shm_name = shm_name
        self.size = int(size)

    def __getstate__(self):
        return (self.shm_name, self.size)

    def __setstate__(self, state):
        self.shm_name, self.size = state


def _export_labels(labels: np.ndarray) -> Tuple[SharedLabelsHandle, object]:
    """Copy an int64 labels array into a fresh shared-memory segment."""
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(labels, dtype=np.int64)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    if array.size:
        np.ndarray(array.shape, dtype=np.int64, buffer=segment.buf)[:] = array
    return SharedLabelsHandle(segment.name, array.size), segment


def attach_labels(handle: SharedLabelsHandle) -> Tuple[np.ndarray, object]:
    """Map a labels array exported by :func:`_export_labels` (read-only)."""
    segment = attach_shared_memory(handle.shm_name)
    labels = np.frombuffer(segment.buf, dtype=np.int64, count=handle.size)
    labels.flags.writeable = False
    return labels, segment


#: Live stores whose segments the emergency hooks must unlink on abnormal
#: teardown.  Weak references: a garbage-collected store already ran its
#: finalizer and needs no emergency cleanup.
_LIVE_STORES: "weakref.WeakSet[GraphStore]" = weakref.WeakSet()
_HOOKS_INSTALLED = False


def _close_live_stores() -> None:
    """Close every registered store (emergency path; exceptions swallowed)."""
    for store in list(_LIVE_STORES):
        try:
            store.close()
        except Exception:  # pragma: no cover - nothing left to do mid-death
            pass


def _install_teardown_hooks() -> None:
    """One-time registration of the atexit and (chaining) SIGTERM hooks.

    The SIGTERM handler is only installed from the main thread and only
    when the process has no handler of its own (``SIG_DFL``): library code
    must never silently replace an application's signal handling.  After
    cleanup it restores the default disposition and re-raises SIGTERM, so
    the process still dies with the conventional 143 exit status.
    """
    global _HOOKS_INSTALLED
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(_close_live_stores)
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:

            def _on_sigterm(signum, frame):  # pragma: no cover - exercised
                # in a subprocess (tests/graph/test_shared.py)
                _close_live_stores()
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)

            signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


class GraphStore:
    """Graphs and labelings addressable by the keys tasks carry.

    Registration is idempotent: adding the same graph (by content) twice is
    a no-op returning the same key, so several scenarios sharing a dataset
    surrogate register it once and the batch ships one segment.
    """

    def __init__(self):
        # Start the shared-memory resource tracker *now*, before any worker
        # process forks: forked workers then inherit this tracker, so their
        # attach-side registrations (unavoidable before Python 3.13) dedupe
        # against the exporter's instead of spawning a second tracker that
        # would unlink segments it never owned.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform without a tracker
            pass
        self._graphs: Dict[str, Graph] = {}
        self._labels: Dict[str, Optional[np.ndarray]] = {"": None}
        self._graph_handles: Dict[str, SharedGraphHandle] = {}
        self._chunked_handles: Dict[str, ChunkedRowsHandle] = {}
        self._labels_handles: Dict[str, SharedLabelsHandle] = {}
        self._segments: list = []  # owned SharedMemory objects, unlinked on close
        self._closed = False
        # Segment ownership is per-process: a forked child inheriting this
        # store (pool workers, double-fork daemons) must never unlink
        # segments its parent still serves to other workers.
        self._owner_pid = os.getpid()
        _install_teardown_hooks()
        _LIVE_STORES.add(self)

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def add(self, graph: Graph, labels: Optional[np.ndarray] = None) -> Tuple[str, str]:
        """Register a graph (and optional labels); returns their task keys."""
        return self.add_graph(graph), self.add_labels(labels)

    def add_graph(self, graph: Graph) -> str:
        """Register ``graph`` under its content fingerprint."""
        key = graph_fingerprint(graph)
        self._graphs.setdefault(key, graph)
        return key

    def add_labels(self, labels: Optional[np.ndarray]) -> str:
        """Register a labelling under its fingerprint ('' for none)."""
        if labels is None:
            return ""
        key = labels_fingerprint(labels)
        self._labels.setdefault(key, np.ascontiguousarray(labels, dtype=np.int64))
        return key

    def alias_graph(self, graph_key: str, graph: Graph) -> None:
        """Also answer ``graph_key`` with ``graph`` (existing entries win).

        The homogeneous executor surface promises that the *given* graph
        serves whatever ``graph_key`` the tasks carry (test stubs use
        synthetic keys); aliasing preserves that contract when such a batch
        is lowered onto the store-resolved heterogeneous path.
        """
        self._graphs.setdefault(graph_key, graph)

    def alias_labels(self, labels_key: str, labels: Optional[np.ndarray]) -> None:
        """Also answer ``labels_key`` with ``labels`` (existing entries win)."""
        if labels_key:
            self._labels.setdefault(
                labels_key,
                None if labels is None
                else np.ascontiguousarray(labels, dtype=np.int64),
            )

    def graph(self, graph_key: str) -> Graph:
        """The registered graph for ``graph_key``; KeyError with context."""
        try:
            return self._graphs[graph_key]
        except KeyError:
            known = ", ".join(sorted(self._graphs)) or "<none>"
            raise KeyError(
                f"graph {graph_key!r} not registered in this store; have: {known}"
            ) from None

    def labels(self, labels_key: str) -> Optional[np.ndarray]:
        """The registered labels for ``labels_key`` (None for '')."""
        try:
            return self._labels[labels_key]
        except KeyError:
            raise KeyError(f"labels {labels_key!r} not registered in this store") from None

    def __contains__(self, graph_key: str) -> bool:
        return graph_key in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    # ------------------------------------------------------------------
    # Shared-memory export
    # ------------------------------------------------------------------
    def export_graph(self, graph_key: str) -> SharedGraphHandle:
        """The shared-memory handle of one graph, exporting on first use."""
        self._check_open()
        handle = self._graph_handles.get(graph_key)
        if handle is None:
            tracer = current_tracer()
            with tracer.span("shm.graph_export", graph_key=graph_key):
                handle, segment = self.graph(graph_key).to_shared()
            tracer.counter("shm.graph_export")
            tracer.counter("shm.export_bytes", segment.size)
            self._graph_handles[graph_key] = handle
            self._segments.append(segment)
        return handle

    def export_graph_chunked(
        self,
        graph_key: str,
        *,
        block_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> ChunkedRowsHandle:
        """The packed rows of one graph as chunked segments, exported once.

        The out-of-core counterpart of :meth:`export_graph` for graphs whose
        packed adjacency matrix exceeds ``REPRO_DENSE_MAX_BYTES``: each
        chunk of rows lands in its own segment (built block by block — the
        full matrix is never resident here either), and workers attach only
        the row ranges they process via
        :func:`repro.graph.streaming.attach_packed_row_block`.  Exports are
        memoized per graph key; the default chunk height is first-export
        sticky.  Segments are owned by the store and unlinked on close.
        """
        self._check_open()
        handle = self._chunked_handles.get(graph_key)
        if handle is None:
            tracer = current_tracer()
            with tracer.span("shm.graph_export_chunked", graph_key=graph_key):
                handle, segments = share_packed_row_blocks(
                    self.graph(graph_key),
                    block_rows=block_rows,
                    max_bytes=max_bytes,
                )
            tracer.counter("shm.graph_export_chunked")
            tracer.counter(
                "shm.export_bytes", sum(segment.size for segment in segments)
            )
            self._chunked_handles[graph_key] = handle
            self._segments.extend(segments)
        return handle

    def export_labels(self, labels_key: str) -> Optional[SharedLabelsHandle]:
        """The shared-memory handle of one labelling (None for '')."""
        if not labels_key:
            return None
        self._check_open()
        handle = self._labels_handles.get(labels_key)
        if handle is None:
            labels = self.labels(labels_key)
            handle, segment = _export_labels(labels)
            tracer = current_tracer()
            tracer.counter("shm.labels_export")
            tracer.counter("shm.export_bytes", segment.size)
            self._labels_handles[labels_key] = handle
            self._segments.append(segment)
        return handle

    def adopt_segment(self, segment) -> None:
        """Take ownership of an externally created segment (unlinked on close)."""
        self._check_open()
        self._segments.append(segment)

    def handles_for(
        self, tasks: Iterable[TrialTask]
    ) -> Tuple[Dict[str, SharedGraphHandle], Dict[str, SharedLabelsHandle]]:
        """Handles for every graph/labelling a task batch references."""
        graph_handles: Dict[str, SharedGraphHandle] = {}
        labels_handles: Dict[str, SharedLabelsHandle] = {}
        for task in tasks:
            if task.graph_key not in graph_handles:
                graph_handles[task.graph_key] = self.export_graph(task.graph_key)
            if task.labels_key and task.labels_key not in labels_handles:
                labels_handles[task.labels_key] = self.export_labels(task.labels_key)
        return graph_handles, labels_handles

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every owned segment; the store stays usable for lookups.

        Idempotent.  Exports after ``close`` raise — a closed store must not
        silently re-create segments nobody will unlink.  In a forked child
        (a pool worker inheriting the exporter's store) close only drops
        the mappings: unlinking is reserved for the creating process, or
        the parent's later exports would vanish under its other workers.
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_STORES.discard(self)
        owns_segments = os.getpid() == self._owner_pid
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view is still alive
                pass  # the mapping is released when the last view dies
            if not owns_segments:
                continue
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._graph_handles.clear()
        self._chunked_handles.clear()
        self._labels_handles.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("GraphStore is closed; cannot export segments")

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
