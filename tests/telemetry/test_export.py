"""Trace files, run manifests and the summarize report."""

import json

from repro.telemetry.core import Tracer
from repro.telemetry.export import (
    MANIFEST_FORMAT,
    RunManifest,
    load_trace,
    manifest_path,
    summarize_trace,
    write_trace,
)


def _traced_tracer():
    tracer = Tracer()
    with tracer.span("session.run", tasks=4):
        with tracer.span("task.execute", trial=0):
            pass
    tracer.counter("cache.hit", 3)
    tracer.counter("cache.miss", 1)
    tracer.counter("batch.tasks", 4)
    return tracer


class TestTraceFile:
    def test_write_load_roundtrip(self, tmp_path):
        tracer = _traced_tracer()
        path = write_trace(tracer, tmp_path / "run.jsonl")
        spans, counters = load_trace(path)
        assert [s["name"] for s in spans] == ["task.execute", "session.run"]
        assert counters == {"cache.hit": 3, "cache.miss": 1, "batch.tasks": 4}

    def test_lines_are_json_objects(self, tmp_path):
        path = write_trace(_traced_tracer(), tmp_path / "run.jsonl")
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert record["type"] in ("span", "counter")

    def test_torn_lines_are_skipped(self, tmp_path):
        path = write_trace(_traced_tracer(), tmp_path / "run.jsonl")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "name": "torn')
        spans, counters = load_trace(path)
        assert len(spans) == 2
        assert counters["cache.hit"] == 3


class TestManifest:
    def test_from_tracer_snapshots_counters(self):
        manifest = RunManifest.from_tracer(
            _traced_tracer(), scenarios=["fig6"],
            config={"trials": 2}, wall_seconds=1.25,
        )
        assert manifest.scenarios == ["fig6"]
        assert manifest.task_count == 4
        assert manifest.span_count == 2
        assert manifest.counters["cache.hit"] == 3
        assert manifest.wall_seconds == 1.25
        assert manifest.format == MANIFEST_FORMAT

    def test_json_roundtrip(self, tmp_path):
        manifest = RunManifest.from_tracer(
            _traced_tracer(), scenarios=["fig6", "fig7"], config={"jobs": 4}
        )
        path = manifest.write(tmp_path / "run.manifest.json")
        assert RunManifest.load(path) == manifest

    def test_from_dict_ignores_unknown_keys(self):
        loaded = RunManifest.from_dict({"scenarios": ["x"], "future_field": 1})
        assert loaded.scenarios == ["x"]

    def test_write_trace_writes_sibling_manifest(self, tmp_path):
        tracer = _traced_tracer()
        manifest = RunManifest.from_tracer(tracer, scenarios=["fig6"])
        path = write_trace(tracer, tmp_path / "run.jsonl", manifest=manifest)
        sibling = manifest_path(path)
        assert sibling.name == "run.manifest.json"
        assert RunManifest.load(sibling).counters["cache.hit"] == 3


class TestSummarize:
    def test_reports_spans_counters_and_manifest(self, tmp_path):
        tracer = _traced_tracer()
        manifest = RunManifest.from_tracer(tracer, scenarios=["fig6"])
        path = write_trace(tracer, tmp_path / "run.jsonl", manifest=manifest)
        report = summarize_trace(path)
        assert "session.run" in report
        assert "task.execute" in report
        assert "cache.hit" in report
        assert "scenarios=fig6" in report

    def test_top_limits_span_rows(self, tmp_path):
        tracer = Tracer()
        for index in range(5):
            with tracer.span(f"span.{index}"):
                pass
        path = write_trace(tracer, tmp_path / "run.jsonl")
        report = summarize_trace(path, top=2)
        assert report.count("span.") == 2
