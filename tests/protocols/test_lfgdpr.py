"""Tests for the LF-GDPR protocol."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.metrics import (
    degree_centrality,
    local_clustering_coefficients,
    modularity_from_labels,
)
from repro.protocols.base import FakeReport
from repro.protocols.lfgdpr import LFGDPRProtocol


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(300, 5, 0.6, rng=0)


class TestCollection:
    def test_budget_split(self):
        protocol = LFGDPRProtocol(epsilon=4.0)
        assert protocol.budget.adjacency_epsilon == pytest.approx(2.0)
        assert protocol.budget.degree_epsilon == pytest.approx(2.0)
        assert protocol.epsilon == pytest.approx(4.0)

    def test_reports_structure(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        assert reports.num_nodes == graph.num_nodes
        assert reports.reported_degrees.shape == (graph.num_nodes,)
        assert reports.overridden.size == 0

    def test_common_random_numbers(self, graph):
        """Same seed, no overrides -> bit-identical reports."""
        protocol = LFGDPRProtocol(epsilon=4.0)
        a = protocol.collect(graph, rng=7)
        b = protocol.collect(graph, rng=7)
        assert a.perturbed_graph == b.perturbed_graph
        assert np.array_equal(a.reported_degrees, b.reported_degrees)

    def test_paired_runs_differ_only_at_fake_pairs(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        clean = protocol.collect(graph, rng=7)
        overrides = {0: FakeReport(claimed_neighbors=[5, 6], reported_degree=2.0)}
        attacked = protocol.collect(graph, rng=7, overrides=overrides)

        clean_rows, clean_cols = clean.perturbed_graph.edge_arrays()
        attacked_rows, attacked_cols = attacked.perturbed_graph.edge_arrays()
        clean_genuine = {
            (u, v) for u, v in zip(clean_rows.tolist(), clean_cols.tolist()) if 0 not in (u, v)
        }
        attacked_genuine = {
            (u, v)
            for u, v in zip(attacked_rows.tolist(), attacked_cols.tolist())
            if 0 not in (u, v)
        }
        assert clean_genuine == attacked_genuine
        # Degree reports of genuine users identical.
        assert np.array_equal(clean.reported_degrees[1:], attacked.reported_degrees[1:])
        assert attacked.reported_degrees[0] == 2.0

    def test_different_seeds_differ(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        assert protocol.collect(graph, rng=1).perturbed_graph != protocol.collect(
            graph, rng=2
        ).perturbed_graph

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            LFGDPRProtocol(epsilon=0.0)


class TestDegreeEstimation:
    def test_centrality_tracks_truth(self, graph):
        protocol = LFGDPRProtocol(epsilon=6.0)
        rng = np.random.default_rng(0)
        estimates = np.mean(
            [
                protocol.estimate_degree_centrality(protocol.collect(graph, rng=int(rng.integers(2**31))))
                for _ in range(10)
            ],
            axis=0,
        )
        truth = degree_centrality(graph)
        assert np.abs(estimates - truth).mean() < 0.02

    def test_degree_modes_differ(self, graph):
        bits = LFGDPRProtocol(epsilon=4.0, degree_mode="bits")
        reported = LFGDPRProtocol(epsilon=4.0, degree_mode="reported")
        fused = LFGDPRProtocol(epsilon=4.0, degree_mode="fused")
        reports = bits.collect(graph, rng=3)
        estimates = {
            mode: protocol.estimate_degree_centrality(reports)
            for mode, protocol in [("bits", bits), ("reported", reported), ("fused", fused)]
        }
        assert not np.allclose(estimates["bits"], estimates["reported"])
        assert not np.allclose(estimates["bits"], estimates["fused"])

    def test_reported_mode_ignores_bits(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0, degree_mode="reported")
        reports = protocol.collect(graph, rng=3)
        expected = reports.reported_degrees / (graph.num_nodes - 1)
        assert np.allclose(protocol.estimate_degree_centrality(reports), expected)

    def test_invalid_degree_mode_rejected(self):
        with pytest.raises(ValueError, match="degree_mode"):
            LFGDPRProtocol(epsilon=4.0, degree_mode="magic")

    def test_fused_mode_between_components(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0, degree_mode="fused")
        reports = protocol.collect(graph, rng=3)
        fused = protocol.estimate_degrees(reports)
        bits = LFGDPRProtocol(epsilon=4.0, degree_mode="bits").estimate_degrees(reports)
        reported = reports.reported_degrees
        low = np.minimum(bits, reported) - 1e-9
        high = np.maximum(bits, reported) + 1e-9
        assert np.all((fused >= low) & (fused <= high))


class TestClusteringEstimation:
    def test_estimates_finite(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0)
        reports = protocol.collect(graph, rng=0)
        estimates = protocol.estimate_clustering_coefficient(reports)
        assert np.all(np.isfinite(estimates))

    def test_clipped_variant_in_unit_interval(self, graph):
        protocol = LFGDPRProtocol(epsilon=4.0, clip_clustering=True)
        reports = protocol.collect(graph, rng=0)
        estimates = protocol.estimate_clustering_coefficient(reports)
        assert np.all((estimates >= 0) & (estimates <= 1))

    def test_high_epsilon_accuracy(self, graph):
        protocol = LFGDPRProtocol(epsilon=40.0)
        reports = protocol.collect(graph, rng=0)
        estimates = protocol.estimate_clustering_coefficient(reports)
        truth = local_clustering_coefficients(graph)
        assert np.abs(estimates - truth).mean() < 0.02


class TestModularityEstimation:
    def test_high_epsilon_accuracy(self, graph):
        protocol = LFGDPRProtocol(epsilon=40.0)
        labels = (np.arange(graph.num_nodes) // 75).astype(np.int64)
        reports = protocol.collect(graph, rng=0)
        estimate = protocol.estimate_modularity(reports, labels)
        truth = modularity_from_labels(graph, labels)
        assert estimate == pytest.approx(truth, abs=0.05)
