"""Fig. 9 — overall gains of attacks to clustering coefficient vs eps (Exp 4).

Expected shapes (paper): MGA consistently above RVA and RNA across the whole
epsilon range; RVA generally above RNA.
"""

import numpy as np
import pytest
from conftest import bench_config, emit

from repro.experiments.figures import fig9


@pytest.mark.parametrize("dataset", ["facebook", "enron", "astroph", "gplus"])
def test_fig9_cc_vs_epsilon(benchmark, dataset):
    config = bench_config(dataset)

    result = benchmark.pedantic(fig9, args=(dataset, config), rounds=1, iterations=1)

    emit("fig09_cc_vs_epsilon", result.format())
    mga = np.array(result.gains_of("MGA"))
    rva = np.array(result.gains_of("RVA"))
    rna = np.array(result.gains_of("RNA"))
    assert np.all(np.isfinite(mga)) and np.all(mga > 0)
    assert np.all(mga >= rva) and np.all(mga >= rna)
    assert rva.mean() > rna.mean(), "RVA generally outperforms RNA"
