"""Tests for the ASCII table renderer."""

import pytest

from repro.experiments.reporting import format_table


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["a", "b"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0].strip().startswith("a")
        assert "2.5000" in text
        assert "0.2500" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="Fig 1")
        assert text.splitlines()[0] == "Fig 1"

    def test_column_width_from_data(self):
        text = format_table(["x"], [["a-very-long-cell"]])
        header_line = text.splitlines()[0]
        assert len(header_line) == len("a-very-long-cell")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        assert "0.1235" in format_table(["v"], [[0.123456]])

    def test_string_cells_untouched(self):
        assert "MGA" in format_table(["attack"], [["MGA"]])
