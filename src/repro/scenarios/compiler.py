"""Lowering scenario specs into engine task batches.

:func:`compile_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
plus a loaded graph into the flat list of
:class:`~repro.engine.tasks.TrialTask` the engine executes.  The compiler is
pure — same spec, graph and config always produce the same batch — and it is
the *only* place seed-derivation keys are built, so determinism is auditable
in one screen of code.

Seed-key compatibility
----------------------
Scenario runs must reproduce the pre-scenario figure drivers bit for bit, so
the compiler emits the exact historical key shapes:

* ``sweep`` style (Figs. 6-11, 14-15)::

      {figure}|{dataset}|{metric}|{series}|{parameter}={float(value)!r}|trial={trial}

* ``defense`` style (Figs. 12-13); the value component is the *original*
  grid number (ints stay ints), flat reference series carry no value
  component at all::

      {figure}|{series}|trial={trial}                         (flat)
      {figure}|{series}|{parameter}={value}|trial={trial}     (point sweep)
      {figure}|{series}|{sweep_arg}={value}|trial={trial}     (defense arg)

``tests/scenarios/test_compiler.py`` pins these shapes against the legacy
task builders.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import numpy as np

from repro.engine.tasks import (
    TrialTask,
    derive_trial_seed,
    graph_fingerprint,
    labels_fingerprint,
)
from repro.experiments.config import ExperimentConfig
from repro.graph.adjacency import Graph
from repro.scenarios.spec import (
    SWEEP_DEFENSE_ARG,
    SWEEP_FLAT,
    SWEEP_POINT,
    PanelSpec,
    ScenarioSpec,
    SeriesSpec,
)

#: Display value used for the single point of a flat reference series.
FLAT_VALUE = 0.0


def _point(config: ExperimentConfig, parameter: str, value) -> dict:
    """Protocol point (epsilon, beta, gamma) with ``parameter`` overridden.

    ``value`` is None for series the sweep does not reach (flat references,
    defense-argument sweeps): they stay at the config's Table III defaults.
    """
    point = {"epsilon": config.epsilon, "beta": config.beta, "gamma": config.gamma}
    if value is not None and parameter in point:
        point[parameter] = value
    return point


def _series_tasks(
    spec: ScenarioSpec,
    panel: PanelSpec,
    series: SeriesSpec,
    graph_key: str,
    labels_key: str,
    config: ExperimentConfig,
) -> List[TrialTask]:
    """All tasks of one series across the scenario's value grid."""
    if series.sweep == SWEEP_FLAT:
        grid = [None]  # one un-swept point
    else:
        grid = list(spec.values)

    tasks: List[TrialTask] = []
    for value in grid:
        defense_args = series.defense_args
        if series.sweep == SWEEP_FLAT:
            point = _point(config, spec.parameter, None)
            display_value = FLAT_VALUE
            key = f"{panel.figure}|{series.name}|trial={{trial}}"
        elif series.sweep == SWEEP_DEFENSE_ARG:
            point = _point(config, spec.parameter, None)
            display_value = float(value)
            defense_args = defense_args + ((series.sweep_arg, _coerce_arg(value)),)
            key = (
                f"{panel.figure}|{series.name}|{series.sweep_arg}={value}"
                "|trial={trial}"
            )
        elif spec.seed_style == "defense":
            point = _point(config, spec.parameter, value)
            display_value = float(value)
            key = f"{panel.figure}|{series.name}|{spec.parameter}={value}|trial={{trial}}"
        else:  # sweep style, point sweep — the historical build_sweep_tasks key
            point = _point(config, spec.parameter, value)
            display_value = float(value)
            key = (
                f"{panel.figure}|{spec.dataset}|{spec.metric}|{series.name}"
                f"|{spec.parameter}={float(value)!r}|trial={{trial}}"
            )
        for trial in range(config.trials):
            tasks.append(
                TrialTask(
                    graph_key=graph_key,
                    metric=spec.metric,
                    attack=series.attack,
                    protocol=series.protocol,
                    epsilon=float(point["epsilon"]),
                    beta=float(point["beta"]),
                    gamma=float(point["gamma"]),
                    seed=derive_trial_seed(config.seed, key.format(trial=trial)),
                    defense=series.defense,
                    defense_args=defense_args,
                    labels_key=labels_key,
                    figure=panel.figure,
                    series=series.name,
                    parameter=spec.parameter,
                    value=display_value,
                    trial=trial,
                )
            )
    return tasks


def _coerce_arg(value):
    """Swept defense arguments keep integer grids integral (Detect1 thresholds)."""
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(value)
    return float(value)


def compile_scenario(
    spec: ScenarioSpec,
    graph: Graph,
    config: ExperimentConfig,
    labels: Optional[np.ndarray] = None,
) -> List[TrialTask]:
    """The full engine batch of ``spec``: every (panel × series × value × trial).

    Flat reference series contribute ``config.trials`` tasks total (measured
    once, replicated across the grid at aggregation time), exactly as the
    historical Figs. 12-13 drivers batched them.

    Single-graph convenience over :func:`compile_panels`: every panel runs
    on ``graph``.  Scenarios whose panels pin their own datasets need one
    graph per panel — prepare them with
    :func:`repro.scenarios.run.prepare_scenario` instead.
    """
    if spec.kind != "sweep":
        raise ValueError(f"scenario {spec.name!r} ({spec.kind}) compiles to no tasks")
    pinned = {
        panel.dataset for panel in spec.panels if panel.dataset
    } - {spec.dataset}
    if pinned:
        raise ValueError(
            f"scenario {spec.name!r} pins per-panel datasets {sorted(pinned)}; "
            "compile it with per-panel graphs (compile_panels / prepare_scenario)"
        )
    return compile_panels(
        spec,
        config,
        graphs={panel.key: graph for panel in spec.panels},
        labels={panel.key: labels for panel in spec.panels},
    )


def compile_panels(
    spec: ScenarioSpec,
    config: ExperimentConfig,
    graphs: Mapping[str, Graph],
    labels: Mapping[str, Optional[np.ndarray]],
) -> List[TrialTask]:
    """Compile ``spec`` with one graph (and labelling) per panel key.

    The heterogeneous-batch entry point: each panel's tasks carry the
    fingerprint of *that panel's* graph, so panels pinned to different
    dataset surrogates lower into a single engine batch that a session can
    fan out in one go.  Seed keys are untouched — they never encoded the
    graph, only the figure/series coordinates — so single-dataset scenarios
    compile bit-identically to the historical single-graph path.
    """
    if spec.kind != "sweep":
        raise ValueError(f"scenario {spec.name!r} ({spec.kind}) compiles to no tasks")
    tasks: List[TrialTask] = []
    for panel in spec.panels:
        graph = graphs[panel.key]
        panel_labels = labels.get(panel.key)
        if spec.metric == "modularity" and panel_labels is None:
            raise ValueError(
                f"scenario {spec.name!r} needs community labels (modularity)"
            )
        graph_key = graph_fingerprint(graph)
        labels_key = labels_fingerprint(panel_labels)
        for series in panel.series:
            tasks.extend(
                _series_tasks(spec, panel, series, graph_key, labels_key, config)
            )
    return tasks
