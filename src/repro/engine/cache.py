"""On-disk JSON result cache keyed by task content hash.

Each cached entry is one small JSON file under ``<root>/<hh>/<hash>.json``
holding the cache-version stamp, the task's identity fields and the measured
gain.  Reads validate both the version stamp and the stored identity, so a
stale cache from an older engine (or a hash collision) degrades to a miss,
never to a wrong result.  Writes are atomic (tmp file + rename), so
concurrent processes sharing a cache directory cannot observe torn entries.

The cache root resolves, in order: an explicit ``root`` argument, the
``REPRO_CACHE_DIR`` environment variable, ``.repro_cache/`` under the
current working directory.  Bump :data:`CACHE_VERSION` whenever a change
anywhere in the library alters what a task computes.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.engine.tasks import TrialTask, identity_payload

#: Invalidation stamp: entries written under another version are ignored.
CACHE_VERSION = 1

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root used when none is given explicitly."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.cwd() / ".repro_cache"


class ResultCache:
    """Task-hash-keyed persistent store of trial gains.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.  Defaults to
        :func:`default_cache_dir`.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, task: TrialTask) -> Path:
        """Where ``task``'s entry lives (two-level fan-out keeps dirs small)."""
        digest = task.content_hash()
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, task: TrialTask) -> Optional[float]:
        """The cached gain for ``task``, or None on any kind of miss."""
        path = self.path_for(task)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        identity = identity_payload(task)
        if entry.get("cache_version") != CACHE_VERSION or entry.get("task") != identity:
            self.misses += 1
            return None
        self.hits += 1
        return float(entry["gain"])

    def put(self, task: TrialTask, gain: float) -> None:
        """Persist ``gain`` for ``task`` atomically."""
        path = self.path_for(task)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_version": CACHE_VERSION,
            "task": identity_payload(task),
            "gain": float(gain),
        }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False, encoding="utf-8"
        )
        try:
            json.dump(entry, handle)
            handle.close()
            os.replace(handle.name, path)
        except BaseException:
            handle.close()
            os.unlink(handle.name)
            raise

    def stats(self) -> dict:
        """Lifetime hit/miss counters of this cache instance."""
        return {"hits": self.hits, "misses": self.misses}

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*/*.json"):
                entry.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


class NullCache:
    """Cache stand-in that stores nothing (``--no-cache``)."""

    hits = 0
    misses = 0

    def get(self, task: TrialTask) -> Optional[float]:
        """Always a miss."""
        return None

    def put(self, task: TrialTask, gain: float) -> None:
        """Discard."""

    def stats(self) -> dict:
        """Always-zero counters (nothing is ever stored)."""
        return {"hits": 0, "misses": 0}

    def clear(self) -> int:
        """Nothing to delete."""
        return 0
