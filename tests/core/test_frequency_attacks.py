"""Tests for the frequency-oracle attack family (Cao et al. substrate)."""

import numpy as np
import pytest

from repro.core.frequency_attacks import (
    FrequencyMGA,
    FrequencyRIA,
    FrequencyRPA,
    evaluate_frequency_attack,
)
from repro.ldp.frequency_oracles import KRR, OLH, OUE


@pytest.fixture(params=[KRR, OUE, OLH], ids=["krr", "oue", "olh"])
def oracle(request):
    return request.param(domain_size=16, epsilon=1.0)


@pytest.fixture
def genuine_values():
    return np.random.default_rng(0).integers(0, 16, size=5_000)


TARGETS = np.array([3, 7])


class TestCraftingFormats:
    @pytest.mark.parametrize("attack", [FrequencyRPA(), FrequencyRIA(), FrequencyMGA()])
    def test_report_count(self, attack, oracle):
        reports = attack.craft(oracle, 50, TARGETS, rng=0)
        assert np.asarray(reports).shape[0] == 50

    @pytest.mark.parametrize("attack", [FrequencyRPA(), FrequencyRIA(), FrequencyMGA()])
    def test_reports_feed_support_counts(self, attack, oracle):
        reports = attack.craft(oracle, 50, TARGETS, rng=0)
        counts = oracle.support_counts(reports)
        assert counts.shape == (oracle.domain_size,)

    def test_target_validation(self, oracle):
        with pytest.raises(ValueError, match="domain"):
            FrequencyMGA().craft(oracle, 10, np.array([99]), rng=0)
        with pytest.raises(ValueError, match="target"):
            FrequencyMGA().craft(oracle, 10, np.array([], dtype=np.int64), rng=0)


class TestMGACrafting:
    def test_krr_reports_are_targets(self):
        oracle = KRR(domain_size=16, epsilon=1.0)
        reports = FrequencyMGA().craft(oracle, 100, TARGETS, rng=0)
        assert set(np.unique(reports)).issubset(set(TARGETS.tolist()))

    def test_oue_targets_always_set(self):
        oracle = OUE(domain_size=16, epsilon=1.0)
        reports = FrequencyMGA().craft(oracle, 100, TARGETS, rng=0)
        assert np.all(reports[:, TARGETS] == 1)

    def test_oue_padding(self):
        oracle = OUE(domain_size=64, epsilon=1.0)
        padded = FrequencyMGA(pad_oue_reports=True).craft(oracle, 20, TARGETS, rng=0)
        bare = FrequencyMGA(pad_oue_reports=False).craft(oracle, 20, TARGETS, rng=0)
        expected_ones = round(
            oracle.support_probability_true
            + (oracle.domain_size - 1) * oracle.support_probability_false
        )
        assert np.all(bare.sum(axis=1) == TARGETS.size)
        assert np.all(padded.sum(axis=1) == max(expected_ones, TARGETS.size))

    def test_olh_reports_identical_and_collide_targets(self):
        oracle = OLH(domain_size=16, epsilon=1.0)
        reports = FrequencyMGA(olh_seed_candidates=500).craft(oracle, 30, TARGETS, rng=0)
        assert np.all(reports == reports[0])
        a, b, y = reports[0]
        hashed = oracle.hash_items(np.int64(a), np.int64(b), TARGETS)
        # The chosen seed must collide at least one target into the bucket.
        assert np.any(hashed == y)


class TestEvaluation:
    @pytest.mark.parametrize("attack", [FrequencyRPA(), FrequencyRIA(), FrequencyMGA()])
    def test_outcome_shapes(self, attack, oracle, genuine_values):
        outcome = evaluate_frequency_attack(
            oracle, genuine_values, attack, TARGETS, num_fake=250, rng=0
        )
        assert outcome.before.shape == (2,)
        assert outcome.after.shape == (2,)

    def test_mga_dominates(self, oracle, genuine_values):
        """MGA >= RIA and MGA >= RPA in expected frequency gain."""
        gains = {}
        for attack in (FrequencyMGA(), FrequencyRIA(), FrequencyRPA()):
            totals = [
                evaluate_frequency_attack(
                    oracle, genuine_values, attack, TARGETS, num_fake=250, rng=seed
                ).total_gain
                for seed in range(5)
            ]
            gains[attack.name] = np.mean(totals)
        assert gains["MGA"] > gains["RIA"]
        assert gains["MGA"] > gains["RPA"]

    def test_mga_gain_positive(self, oracle, genuine_values):
        outcome = evaluate_frequency_attack(
            oracle, genuine_values, FrequencyMGA(), TARGETS, num_fake=250, rng=0
        )
        assert outcome.total_gain > 0

    def test_deterministic(self, oracle, genuine_values):
        a = evaluate_frequency_attack(
            oracle, genuine_values, FrequencyMGA(), TARGETS, num_fake=100, rng=4
        )
        b = evaluate_frequency_attack(
            oracle, genuine_values, FrequencyMGA(), TARGETS, num_fake=100, rng=4
        )
        assert a.total_gain == b.total_gain
