"""Scenario subsystem tests."""
