"""Per-figure experiment drivers: one function per table/figure of §VIII.

Each driver loads the dataset surrogate, runs the sweep the figure plots and
returns a :class:`~repro.experiments.runner.SweepResult` (or a dict of them
for the two-panel figures).  The benchmark modules under ``benchmarks/``
call these and print the resulting tables; EXPERIMENTS.md records how the
shapes compare with the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.base import Attack
from repro.core.degree_attacks import DegreeMGA, DegreeRVA
from repro.core.clustering_attacks import ClusteringMGA, ClusteringRVA
from repro.engine.executors import cache_for, executor_for, run_tasks
from repro.engine.registry import ATTACKS
from repro.engine.tasks import TrialTask, derive_trial_seed, graph_fingerprint
from repro.experiments.config import (
    BETAS,
    DATASET_NAMES,
    DEFAULT_CONFIG,
    DETECT1_THRESHOLDS_CLUSTERING,
    DETECT1_THRESHOLDS_DEGREE,
    DETECT2_BETAS,
    EPSILONS,
    GAMMAS,
    ExperimentConfig,
)
from repro.experiments.runner import SweepResult, run_attack_sweep
from repro.graph.adjacency import Graph
from repro.graph.datasets import DATASETS, load_dataset
from repro.protocols.ldpgen import LDPGenProtocol
from repro.protocols.lfgdpr import LFGDPRProtocol


def _load(dataset: str, config: ExperimentConfig) -> Graph:
    return load_dataset(dataset, scale=config.scale, rng=config.seed)


def community_labels(graph: Graph) -> np.ndarray:
    """Greedy-modularity community labelling of the original graph.

    LF-GDPR's modularity estimator needs a server-held partition; the paper
    does not specify one, so we fix the standard greedy-modularity partition
    (DESIGN.md §2).
    """
    import networkx as nx

    communities = nx.algorithms.community.greedy_modularity_communities(
        graph.to_networkx()
    )
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    for community_id, members in enumerate(communities):
        labels[list(members)] = community_id
    return labels


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------
def table2_rows(config: ExperimentConfig = DEFAULT_CONFIG) -> List[Tuple[str, int, int, int, int]]:
    """(dataset, paper nodes, paper edges, surrogate nodes, surrogate edges)."""
    rows = []
    for name in DATASET_NAMES:
        spec = DATASETS[name]
        graph = _load(name, config)
        rows.append((name, spec.paper_nodes, spec.paper_edges, graph.num_nodes, graph.num_edges))
    return rows


# ---------------------------------------------------------------------------
# Figs. 6-8: degree centrality (Exps 1-3)
# ---------------------------------------------------------------------------
def fig6(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Overall gains of attacks to degree centrality vs epsilon."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "degree_centrality", "epsilon",
        EPSILONS, config, figure="Fig6",
    )


def fig7(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of beta on attacks to degree centrality."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "degree_centrality", "beta",
        BETAS, config, figure="Fig7",
    )


def fig8(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of gamma on attacks to degree centrality."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "degree_centrality", "gamma",
        GAMMAS, config, figure="Fig8",
    )


# ---------------------------------------------------------------------------
# Figs. 9-11: clustering coefficient (Exps 4-6)
# ---------------------------------------------------------------------------
def fig9(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Overall gains of attacks to clustering coefficient vs epsilon."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "clustering_coefficient", "epsilon",
        EPSILONS, config, figure="Fig9",
    )


def fig10(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of beta on attacks to clustering coefficient."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "clustering_coefficient", "beta",
        BETAS, config, figure="Fig10",
    )


def fig11(dataset: str, config: ExperimentConfig = DEFAULT_CONFIG) -> SweepResult:
    """Impact of gamma on attacks to clustering coefficient."""
    return run_attack_sweep(
        _load(dataset, config), dataset, "clustering_coefficient", "gamma",
        GAMMAS, config, figure="Fig11",
    )


# ---------------------------------------------------------------------------
# Figs. 12-13: countermeasures (Exps 7-8)
# ---------------------------------------------------------------------------
def _defense_trials(
    graph_key: str,
    metric: str,
    attack: str,
    defense: str,
    defense_args: tuple,
    beta: float,
    config: ExperimentConfig,
    figure: str,
    series: str,
    parameter: str,
    value: float,
    seed_key: str,
) -> List[TrialTask]:
    """The per-trial task list for one (defense, point) of Figs. 12-13."""
    return [
        TrialTask(
            graph_key=graph_key,
            metric=metric,
            attack=attack,
            protocol="lfgdpr",
            epsilon=config.epsilon,
            beta=beta,
            gamma=config.gamma,
            seed=derive_trial_seed(config.seed, f"{figure}|{seed_key}|trial={trial}"),
            defense=defense,
            defense_args=defense_args,
            figure=figure,
            series=series,
            parameter=parameter,
            value=float(value),
            trial=trial,
        )
        for trial in range(config.trials)
    ]


def _defense_threshold_sweep(
    metric: str,
    attack_factory: Callable[[], Attack],
    thresholds: Sequence[int],
    dataset: str,
    config: ExperimentConfig,
    figure: str,
) -> SweepResult:
    """Detect1 vs Naive1 vs no defense across the Detect1 threshold.

    The whole sweep is flattened into one engine batch: the threshold only
    affects Detect1, so NoDefense and Naive1 are measured once and replicated
    across the threshold grid (as in the paper's flat reference lines).
    """
    graph = _load(dataset, config)
    graph_key = graph_fingerprint(graph)
    attack = ATTACKS.resolve(attack_factory)
    common = dict(
        graph_key=graph_key, metric=metric, attack=attack, beta=config.beta,
        config=config, figure=figure, parameter="threshold",
    )
    none_tasks = _defense_trials(
        defense="", defense_args=(), series="NoDefense", value=0.0,
        seed_key="NoDefense", **common,
    )
    naive_tasks = _defense_trials(
        defense="naive1", defense_args=(), series="Naive1", value=0.0,
        seed_key="Naive1", **common,
    )
    detect_tasks = {
        threshold: _defense_trials(
            defense="detect1", defense_args=(("threshold", int(threshold)),),
            series="Detect1", value=float(threshold),
            seed_key=f"Detect1|threshold={threshold}", **common,
        )
        for threshold in thresholds
    }
    batch = none_tasks + naive_tasks + [t for tasks in detect_tasks.values() for t in tasks]
    gains = dict(
        zip(batch, run_tasks(batch, graph, executor=executor_for(config), cache=cache_for(config)))
    )
    result = SweepResult(
        figure=figure, dataset=dataset, metric=metric, parameter="threshold",
        values=list(thresholds),
    )
    for threshold in thresholds:
        result.add_point("NoDefense", [gains[t] for t in none_tasks])
        result.add_point("Detect1", [gains[t] for t in detect_tasks[threshold]])
        result.add_point("Naive1", [gains[t] for t in naive_tasks])
    return result


def _defense_beta_sweep(
    metric: str,
    attack_factory: Callable[[], Attack],
    betas: Sequence[float],
    dataset: str,
    config: ExperimentConfig,
    figure: str,
) -> SweepResult:
    """Detect2 vs Naive2 vs no defense across the fake-user fraction."""
    graph = _load(dataset, config)
    graph_key = graph_fingerprint(graph)
    attack = ATTACKS.resolve(attack_factory)
    plan = {"NoDefense": "", "Detect2": "detect2", "Naive2": "naive2"}
    tasks = {
        (series, beta): _defense_trials(
            graph_key=graph_key, metric=metric, attack=attack, defense=defense,
            defense_args=(), beta=beta, config=config, figure=figure,
            series=series, parameter="beta", value=float(beta),
            seed_key=f"{series}|beta={beta}",
        )
        for series, defense in plan.items()
        for beta in betas
    }
    batch = [task for point in tasks.values() for task in point]
    gains = dict(
        zip(batch, run_tasks(batch, graph, executor=executor_for(config), cache=cache_for(config)))
    )
    result = SweepResult(
        figure=figure, dataset=dataset, metric=metric, parameter="beta",
        values=list(betas),
    )
    for beta in betas:
        for series in plan:
            result.add_point(series, [gains[t] for t in tasks[(series, beta)]])
    return result


def fig12a(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect1/Naive1 against MGA on degree centrality vs threshold."""
    return _defense_threshold_sweep(
        "degree_centrality", DegreeMGA, DETECT1_THRESHOLDS_DEGREE, dataset, config, "Fig12a"
    )


def fig12b(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect2/Naive2 against RVA on degree centrality vs beta."""
    return _defense_beta_sweep(
        "degree_centrality", DegreeRVA, DETECT2_BETAS, dataset, config, "Fig12b"
    )


def fig13a(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect1/Naive1 against MGA on clustering coefficient vs threshold."""
    return _defense_threshold_sweep(
        "clustering_coefficient", ClusteringMGA, DETECT1_THRESHOLDS_CLUSTERING,
        dataset, config, "Fig13a",
    )


def fig13b(config: ExperimentConfig = DEFAULT_CONFIG, dataset: str = "facebook") -> SweepResult:
    """Detect2/Naive2 against RVA on clustering coefficient vs beta."""
    return _defense_beta_sweep(
        "clustering_coefficient", ClusteringRVA, DETECT2_BETAS, dataset, config, "Fig13b"
    )


# ---------------------------------------------------------------------------
# Figs. 14-15: LF-GDPR vs LDPGen (Exp 9)
# ---------------------------------------------------------------------------
def _protocol_comparison(
    metric: str,
    dataset: str,
    config: ExperimentConfig,
    figure: str,
    epsilons: Sequence[float] = EPSILONS,
) -> Dict[str, SweepResult]:
    graph = _load(dataset, config)
    labels = community_labels(graph) if metric == "modularity" else None
    results = {}
    for name, factory in (("LF-GDPR", LFGDPRProtocol), ("LDPGen", LDPGenProtocol)):
        results[name] = run_attack_sweep(
            graph, dataset, metric, "epsilon", epsilons, config,
            protocol_factory=factory, labels=labels, figure=f"{figure}-{name}",
        )
    return results


def fig14(
    config: ExperimentConfig = DEFAULT_CONFIG,
    dataset: str = "facebook",
    epsilons: Sequence[float] = EPSILONS,
) -> Dict[str, SweepResult]:
    """Attacks on LF-GDPR and LDPGen: clustering coefficient vs epsilon."""
    return _protocol_comparison("clustering_coefficient", dataset, config, "Fig14", epsilons)


def fig15(
    config: ExperimentConfig = DEFAULT_CONFIG,
    dataset: str = "facebook",
    epsilons: Sequence[float] = EPSILONS,
) -> Dict[str, SweepResult]:
    """Attacks on LF-GDPR and LDPGen: modularity vs epsilon."""
    return _protocol_comparison("modularity", dataset, config, "Fig15", epsilons)
