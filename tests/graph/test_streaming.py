"""Streaming out-of-core path: bit-identity against the in-memory backends.

Every assertion here is an *exact equality*: the streaming module's contract
is that chunking changes peak memory only, never a single bit of any result.
"""

import hashlib

import numpy as np
import pytest

from repro.engine.graph_store import GraphStore
from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import BitMatrix
from repro.graph.bittensor import BitTensor
from repro.graph.metrics import triangles_per_node
from repro.graph.streaming import (
    RowBlockBuilder,
    attach_packed_row_block,
    iter_packed_row_blocks,
    rows_per_block,
    share_packed_row_blocks,
    should_stream,
    streaming_degrees,
    streaming_intra_community_edges,
    streaming_triangles_per_node,
)
from repro.ldp.perturbation import perturb_graph, perturb_graph_stream
from repro.protocols.estimators import observed_intra_community_edges
from repro.protocols.lfgdpr import LFGDPRProtocol


def random_graph(n: int, density: float, seed: int = 0) -> Graph:
    rng = np.random.default_rng(seed)
    if n < 2 or density == 0.0:
        return Graph(n, [])
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < density
    ]
    return Graph(n, edges)


def assemble(graph: Graph, block_rows) -> np.ndarray:
    blocks = [
        rows for _, _, rows in iter_packed_row_blocks(graph, block_rows)
    ]
    words = (graph.num_nodes + 63) >> 6
    if not blocks:
        return np.zeros((0, words), dtype=np.uint64)
    return np.concatenate(blocks, axis=0)


class TestRowBlocks:
    @pytest.mark.parametrize("n", [0, 1, 2, 64, 65, 130])
    @pytest.mark.parametrize("density", [0.0, 0.3, 1.0])
    def test_blocks_equal_packed_matrix(self, n, density):
        graph = random_graph(n, density, seed=n + 1)
        full = BitMatrix.from_graph(graph).rows
        for block_rows in (1, 7, max(1, n), n + 13):
            assert np.array_equal(assemble(graph, block_rows), full)

    def test_block_ranges_tile_the_matrix(self):
        graph = random_graph(40, 0.2, seed=2)
        spans = [
            (start, stop) for start, stop, _ in iter_packed_row_blocks(graph, 9)
        ]
        assert spans[0][0] == 0
        assert spans[-1][1] == graph.num_nodes
        for (_, prev_stop), (start, _) in zip(spans, spans[1:]):
            assert start == prev_stop

    def test_builder_rejects_bad_range(self):
        builder = RowBlockBuilder.from_graph(random_graph(10, 0.5))
        with pytest.raises(ValueError, match="row range"):
            builder.build(3, 11)
        with pytest.raises(ValueError, match="row range"):
            builder.build(-1, 2)

    def test_bad_block_rows_rejected(self):
        with pytest.raises(ValueError, match="block_rows"):
            list(iter_packed_row_blocks(random_graph(5, 0.5), 0))

    def test_ten_thousand_node_graph(self):
        # n = 10^4, sparse codes sampled directly (listcomp generation would
        # visit 5e7 pairs).  Blocks must tile to the exact packed matrix and
        # the chunked estimators must agree with the in-memory backends.
        from repro.utils.sparse import pair_count

        n = 10_000
        rng = np.random.default_rng(9)
        codes = np.unique(
            rng.integers(0, pair_count(n), size=60_000, dtype=np.int64)
        )[:50_000]
        graph = Graph.from_codes(n, codes, assume_sorted_unique=True)
        full = BitMatrix.from_graph(graph).rows
        assert np.array_equal(assemble(graph, 1553), full)
        assert np.array_equal(streaming_degrees(graph, 4099), graph.degrees())
        assert np.array_equal(
            streaming_triangles_per_node(graph, 2048),
            BitMatrix.from_graph(graph).triangles_per_node(),
        )


class TestRowsPerBlock:
    def test_honours_cap(self):
        n = 1000
        row_bytes = ((n + 63) >> 6) << 3
        assert rows_per_block(n, max_bytes=10 * row_bytes) == 10
        assert rows_per_block(n, max_bytes=1) == 1  # floor of one row

    def test_default_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_MAX_BYTES", "1024")
        assert rows_per_block(64) == 1024 // 8


class TestShouldStream:
    def test_streams_only_past_the_byte_cap(self, monkeypatch):
        dense = random_graph(64, 0.9, seed=3)
        monkeypatch.setenv("REPRO_DENSE_MAX_BYTES", str(1 << 30))
        assert not should_stream(dense)  # packed path still fits
        monkeypatch.setenv("REPRO_DENSE_MAX_BYTES", "64")
        assert should_stream(dense)

    def test_sparse_graphs_never_stream(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_MAX_BYTES", "64")
        sparse = random_graph(64, 0.01, seed=4)
        assert not should_stream(sparse)


class TestStreamingEstimators:
    @pytest.mark.parametrize("chunk_edges", [1, 7, 1 << 22])
    def test_degrees_identical(self, chunk_edges):
        graph = random_graph(90, 0.4, seed=5)
        assert np.array_equal(
            streaming_degrees(graph, chunk_edges), graph.degrees()
        )

    @pytest.mark.parametrize("chunk_edges", [1, 13, 1 << 22])
    def test_intra_community_identical(self, chunk_edges):
        graph = random_graph(80, 0.3, seed=6)
        labels = np.random.default_rng(0).integers(0, 5, graph.num_nodes)
        packed = BitMatrix.from_graph(graph).intra_community_edges(labels, 5)
        assert np.array_equal(
            streaming_intra_community_edges(graph, labels, 5, chunk_edges),
            packed,
        )

    @pytest.mark.parametrize("block_rows", [1, 11, 64, 200])
    def test_triangles_identical(self, block_rows):
        graph = random_graph(96, 0.35, seed=7)
        expected = BitMatrix.from_graph(graph).triangles_per_node()
        assert np.array_equal(
            streaming_triangles_per_node(graph, block_rows), expected
        )

    def test_triangles_empty_and_tiny(self):
        assert streaming_triangles_per_node(Graph(0, [])).size == 0
        assert np.array_equal(
            streaming_triangles_per_node(Graph(3, [(0, 1)])), np.zeros(3, np.int64)
        )


class TestDispatch:
    def test_metrics_dispatch_identical_past_cap(self, monkeypatch):
        graph = random_graph(70, 0.6, seed=8)
        expected = triangles_per_node(graph)
        monkeypatch.setenv("REPRO_DENSE_MAX_BYTES", "64")
        assert should_stream(graph)
        assert np.array_equal(triangles_per_node(graph), expected)

    def test_intra_dispatch_identical_past_cap(self, monkeypatch):
        graph = random_graph(70, 0.6, seed=8)
        labels = np.random.default_rng(1).integers(0, 4, graph.num_nodes)
        expected = observed_intra_community_edges(graph, labels, 4)
        monkeypatch.setenv("REPRO_DENSE_MAX_BYTES", "64")
        assert np.array_equal(
            observed_intra_community_edges(graph, labels, 4), expected
        )


class TestPerturbStream:
    def test_draw_for_draw_identity(self):
        graph = random_graph(120, 0.1, seed=10)
        for block_rows in (1, 17, None):
            reference = perturb_graph(graph, 1.2, rng=99)
            perturbed, blocks = perturb_graph_stream(
                graph, 1.2, rng=99, block_rows=block_rows
            )
            assert np.array_equal(perturbed.edge_codes, reference.edge_codes)
            assembled = np.concatenate([rows for _, _, rows in blocks], axis=0)
            assert np.array_equal(
                assembled, BitMatrix.from_graph(reference).rows
            )

    def test_seed_replay_sha256_pin(self):
        """Golden digest: the streamed report bytes for a fixed seed.

        Pins the whole chain — RNG stream keys, sampling order, code merge,
        block assembly — so any accidental draw-order change breaks loudly.
        """
        graph = random_graph(100, 0.15, seed=11)
        digest = hashlib.sha256()
        for _, _, rows in perturb_graph_stream(graph, 2.0, rng=1234, block_rows=23)[1]:
            digest.update(np.ascontiguousarray(rows, dtype="<u8").tobytes())
        # Independent of block height: one block per call consumes the same
        # draws, and the assembled bytes are block-size invariant.
        other = hashlib.sha256()
        for _, _, rows in perturb_graph_stream(graph, 2.0, rng=1234, block_rows=100)[1]:
            other.update(np.ascontiguousarray(rows, dtype="<u8").tobytes())
        assert digest.hexdigest() == other.hexdigest()
        assert digest.hexdigest() == (
            "e34fe179d8f1d3b00692da436974f8a6cc6898ef747037f06a72dd1f1c2daac5"
        )


class TestCollectBlocks:
    def test_blocks_reproduce_collect(self):
        graph = random_graph(110, 0.12, seed=12)
        protocol = LFGDPRProtocol(epsilon=2.0)
        reference = protocol.collect(graph, rng=7)
        for block_rows in (1, 19, None):
            blocks = list(protocol.collect_blocks(graph, rng=7, block_rows=block_rows))
            assert blocks[0].start == 0
            assert blocks[-1].stop == graph.num_nodes
            rows = np.concatenate([b.adjacency_rows for b in blocks], axis=0)
            degrees = np.concatenate([b.reported_degrees for b in blocks])
            assert np.array_equal(
                rows, BitMatrix.from_graph(reference.perturbed_graph).rows
            )
            assert np.array_equal(
                degrees, np.asarray(reference.reported_degrees, dtype=np.float64)
            )

    def test_empty_graph_yields_nothing(self):
        protocol = LFGDPRProtocol(epsilon=1.0)
        assert list(protocol.collect_blocks(Graph(0, []), rng=0)) == []


class TestRowRangeViews:
    def test_bitmatrix_row_range(self):
        graph = random_graph(70, 0.4, seed=13)
        matrix = BitMatrix.from_graph(graph)
        view = matrix.row_range(10, 30)
        assert view.base is matrix.rows or view.base is matrix.rows.base
        assert np.array_equal(view, matrix.rows[10:30])
        with pytest.raises(ValueError, match="row range"):
            matrix.row_range(5, 71)

    def test_bittensor_row_range(self):
        graphs = [random_graph(40, 0.3, seed=s) for s in (1, 2)]
        tensor = BitTensor.from_graphs(graphs)
        view = tensor.row_range(4, 20)
        assert view.shape == (2, 16, tensor.num_words)
        assert np.array_equal(view, tensor.planes[:, 4:20, :])
        with pytest.raises(ValueError, match="row range"):
            tensor.row_range(-1, 5)


class TestChunkedSharedMemory:
    def test_export_attach_round_trip(self):
        graph = random_graph(100, 0.25, seed=14)
        full = BitMatrix.from_graph(graph).rows
        with GraphStore() as store:
            key = store.add_graph(graph)
            handle = store.export_graph_chunked(key, block_rows=17)
            assert handle is store.export_graph_chunked(key)  # memoized
            assert handle.boundaries[0] == 0
            assert handle.boundaries[-1] == graph.num_nodes
            pieces = []
            for chunk in range(handle.num_chunks):
                start, stop, rows, segment = attach_packed_row_block(handle, chunk)
                pieces.append(np.array(rows))
                assert np.array_equal(pieces[-1], full[start:stop])
                del rows
                segment.close()
            assert np.array_equal(np.concatenate(pieces), full)

    def test_chunk_for_row(self):
        graph = random_graph(50, 0.3, seed=15)
        handle, segments = share_packed_row_blocks(graph, block_rows=12)
        try:
            assert handle.chunk_for_row(0) == 0
            assert handle.chunk_for_row(11) == 0
            assert handle.chunk_for_row(12) == 1
            assert handle.chunk_for_row(49) == handle.num_chunks - 1
            with pytest.raises(ValueError, match="out of"):
                handle.chunk_for_row(50)
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_empty_graph_export(self):
        with GraphStore() as store:
            key = store.add_graph(Graph(0, []))
            handle = store.export_graph_chunked(key)
            assert handle.num_nodes == 0

    def test_closed_store_refuses_export(self):
        store = GraphStore()
        key = store.add_graph(random_graph(10, 0.5))
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.export_graph_chunked(key)
