"""Bit-packed dense adjacency backend for near-dense perturbed graphs.

Randomized response at the paper's epsilon range flips 10-50% of all node
pairs, so every perturbed graph the estimators consume is effectively *dense*
— yet the estimation stack was built for sparse graphs: per-node triangle
counts via ``diag(A @ A @ A)`` on a scipy CSR matrix cost
``O(sum_i d_i^2) = O(theta^2 n^3)`` multiply-adds plus index churn.

:class:`BitMatrix` packs each adjacency row into uint64 words (64 pairs per
word).  Triangle counts become row-AND + popcount over a node's neighbour
rows — ``O(2 E n / 64) <= O(n^3 / 64)`` word operations — and degrees, edge
counts and intra-community edge counts are plain popcounts.  Every quantity
is an exact integer, so the packed path is **bit-identical** to the sparse
path: dispatching between them (``should_use_packed``) never changes a
result, which keeps every engine cache entry valid.

Dispatch knobs (both overridable per process):

* ``REPRO_DENSE_THRESHOLD`` — edge-density threshold above which metrics
  route through the packed backend (default ``0.05``).
* ``REPRO_DENSE_MAX_BYTES`` — upper bound on the packed matrix size; bigger
  graphs stay on the sparse path regardless of density (default 1 GiB).
"""

from __future__ import annotations

import os

import numpy as np

from repro.utils.sparse import pair_count

#: Edge density above which the packed backend beats sparse matmul.
DEFAULT_DENSITY_THRESHOLD = 0.05

#: Environment variable overriding :data:`DEFAULT_DENSITY_THRESHOLD`.
DENSITY_THRESHOLD_ENV = "REPRO_DENSE_THRESHOLD"

#: Default cap on packed-matrix memory (n^2/8 bytes): 1 GiB ~ 92k nodes.
DEFAULT_MAX_PACKED_BYTES = 1 << 30

#: Environment variable overriding :data:`DEFAULT_MAX_PACKED_BYTES`.
MAX_PACKED_BYTES_ENV = "REPRO_DENSE_MAX_BYTES"


def density_threshold() -> float:
    """The edge-density threshold for packed dispatch (env-overridable)."""
    return float(os.environ.get(DENSITY_THRESHOLD_ENV, DEFAULT_DENSITY_THRESHOLD))


def max_packed_bytes() -> int:
    """The packed-matrix memory cap in bytes (env-overridable)."""
    return int(os.environ.get(MAX_PACKED_BYTES_ENV, DEFAULT_MAX_PACKED_BYTES))


def should_use_packed(graph) -> bool:
    """Whether ``graph`` should route dense-friendly metrics through packing.

    True when the graph is dense enough for word-parallel popcounting to beat
    the sparse code paths and small enough for the n x ceil(n/64) uint64
    matrix to fit the memory cap.  Both backends are exact, so this predicate
    only affects speed, never results.
    """
    n = graph.num_nodes
    if n < 3:
        return False
    if n * n // 8 > max_packed_bytes():
        return False
    return graph.num_edges / pair_count(n) >= density_threshold()


_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")
#: Per-byte popcount table for numpy < 2.0 (no ``np.bitwise_count``).
_BYTE_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)

#: Word budget (32 MiB) for the transient gather/AND buffers of the masked
#: popcount passes, keeping peak memory bounded regardless of node degree.
_CHUNK_WORDS = 1 << 22


def _row_popcounts(words: np.ndarray) -> np.ndarray:
    """Total set bits along the last axis of a uint64 array."""
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    return _BYTE_POPCOUNT[words.view(np.uint8)].sum(axis=-1, dtype=np.int64)


#: Cached ``(word_index, bit_shift)`` pairs per node count — every triangle
#: or touched-row sweep needs them and they only depend on ``n``.
_BIT_INDEX_CACHE: dict = {}
_BIT_INDEX_CACHE_LIMIT = 8


def bit_index_arrays(num_nodes: int):
    """``(word_index, bit_shift)`` for extracting bit ``j`` of a packed row.

    Bit ``j`` lives in word ``j >> 6`` at position ``j & 63``; the arrays are
    read-only and cached per ``n`` so repeated sweeps (one per node per
    triangle pass, one per trial in the batched kernels) stop reallocating
    them.
    """
    cached = _BIT_INDEX_CACHE.get(num_nodes)
    if cached is None:
        positions = np.arange(num_nodes, dtype=np.int64)
        word_index = positions >> 6
        bit_shift = (positions & 63).astype(np.uint64)
        word_index.setflags(write=False)
        bit_shift.setflags(write=False)
        cached = (word_index, bit_shift)
        _BIT_INDEX_CACHE[num_nodes] = cached
        while len(_BIT_INDEX_CACHE) > _BIT_INDEX_CACHE_LIMIT:
            _BIT_INDEX_CACHE.pop(next(iter(_BIT_INDEX_CACHE)))
    return cached


def accumulate_bits(positions: np.ndarray, bit: np.ndarray, size: int) -> np.ndarray:
    """OR ``1 << bit`` into a zeroed uint64 array of length ``size``.

    Requires every ``(position, bit)`` pair to be unique: then summing the
    per-word bit values is an exact OR, and the sum runs as two buffered
    :func:`np.bincount` passes — far faster than the unbuffered
    ``np.bitwise_or.at`` ufunc for near-dense sets.  bincount accumulates in
    float64, hence the split into two 32-bit halves (every partial sum stays
    < 2^32, exactly representable).

    Sparse sets (set bits ≪ ``size``, the streaming row blocks of barely
    perturbed million-node graphs) skip the bincount: its cost is O(``size``)
    regardless of how few bits are set.  There the bits are grouped by word
    with one argsort and OR-reduced per group — O(k log k) in the k set bits,
    with only the zeroed output ever touching all ``size`` words.
    """
    out = np.zeros(size, dtype=np.uint64)
    if positions.size == 0:
        return out
    if positions.size < size // 8:
        values = np.left_shift(np.uint64(1), bit.astype(np.uint64))
        order = np.argsort(positions, kind="stable")
        grouped = positions[order]
        starts = np.flatnonzero(np.r_[True, grouped[1:] != grouped[:-1]])
        out[grouped[starts]] = np.bitwise_or.reduceat(values[order], starts)
        return out
    low = bit < 32
    if low.any():
        weights = (1 << bit[low]).astype(np.float64)
        out |= np.bincount(positions[low], weights=weights, minlength=size).astype(
            np.uint64
        )
    high = ~low
    if high.any():
        weights = (1 << (bit[high] - 32)).astype(np.float64)
        out |= np.bincount(positions[high], weights=weights, minlength=size).astype(
            np.uint64
        ) << np.uint64(32)
    return out


def _word_popcounts(words_1d: np.ndarray) -> np.ndarray:
    """Set bits of each element of a 1-D uint64 array (values <= 64)."""
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(words_1d)
    return _BYTE_POPCOUNT[words_1d.view(np.uint8)].reshape(words_1d.size, 8).sum(
        axis=-1, dtype=np.uint8
    )


def _gather_triangles(
    flat_rows: np.ndarray,
    edge_rows: np.ndarray,
    edge_cols: np.ndarray,
    num_nodes: int,
) -> np.ndarray:
    """Per-node triangle counts from one edge-gather/AND/popcount sweep.

    ``flat_rows`` is a ``(rows, words)`` packed matrix and the edge arrays
    index into its first axis (for the trial-stacked tensor the node ids
    carry a per-trial row offset).  Each edge contributes
    ``popcount(row_u & row_v)`` — its common-neighbour count — to both
    endpoints; every incident triangle of a node is hit exactly twice, once
    per far endpoint of its opposite edge, so a halving yields exact counts.

    The sweep runs word-column-major over a transposed copy of the matrix:
    gathering one word column per endpoint keeps both the gather sources
    and the popcount accumulation contiguous, which beats the row-major
    ``(edges, words)`` gather by ~2x (the short last axis defeats the
    vectorised reduction there).  Popcount partial sums stay within the
    accumulator dtype (``<= 64 * words ~ n``) and the per-chunk bincounts
    accumulate them as float64 — exact, every value far below 2^53.
    """
    counts = np.zeros(num_nodes, dtype=np.int64)
    if edge_rows.size == 0:
        return counts
    num_words = flat_rows.shape[1]
    columns = np.ascontiguousarray(flat_rows.T)
    acc_dtype = np.uint16 if num_words << 6 <= 0xFFFF else np.uint32
    chunk = max(1, _CHUNK_WORDS // max(1, num_words))
    for start in range(0, edge_rows.size, chunk):
        block_u = edge_rows[start : start + chunk]
        block_v = edge_cols[start : start + chunk]
        acc = np.zeros(block_u.size, dtype=acc_dtype)
        for word in range(num_words):
            acc += _word_popcounts(columns[word, block_u] & columns[word, block_v])
        pops = acc.astype(np.float64)
        counts += np.bincount(block_u, weights=pops, minlength=num_nodes).astype(
            np.int64
        )
        counts += np.bincount(block_v, weights=pops, minlength=num_nodes).astype(
            np.int64
        )
    return counts // 2


def _masked_popcount_sum(matrix: np.ndarray, row_ids: np.ndarray, mask: np.ndarray) -> int:
    """``sum(popcount(matrix[i] & mask) for i in row_ids)``, chunked.

    The fancy-index gather and the AND result are matrix-row-sized
    temporaries; chunking ``row_ids`` keeps them a constant ~32 MiB apiece so
    peak memory stays within the ``REPRO_DENSE_MAX_BYTES`` promise instead of
    tripling it on high-degree nodes.
    """
    chunk = max(1, _CHUNK_WORDS // max(matrix.shape[1], 1))
    total = 0
    for start in range(0, row_ids.size, chunk):
        block = row_ids[start : start + chunk]
        total += int(_row_popcounts(matrix[block] & mask).sum())
    return total


class BitMatrix:
    """Symmetric 0/1 adjacency matrix with rows packed into uint64 words.

    Bit ``j`` of row ``i`` (word ``j >> 6``, position ``j & 63``) is 1 iff
    the undirected edge ``{i, j}`` exists.  The diagonal is always 0.

    >>> from repro.graph.adjacency import Graph
    >>> bm = BitMatrix.from_graph(Graph(4, [(0, 1), (1, 2), (2, 0)]))
    >>> bm.degrees().tolist()
    [2, 2, 2, 0]
    >>> bm.triangles_per_node().tolist()
    [1, 1, 1, 0]
    """

    __slots__ = ("num_nodes", "num_words", "rows")

    def __init__(self, num_nodes: int, rows: np.ndarray):
        self.num_nodes = int(num_nodes)
        self.num_words = (self.num_nodes + 63) >> 6
        if rows.shape != (self.num_nodes, self.num_words):
            raise ValueError(
                f"packed rows have shape {rows.shape}, expected "
                f"({self.num_nodes}, {self.num_words})"
            )
        self.rows = rows

    @classmethod
    def from_graph(cls, graph) -> "BitMatrix":
        """Pack a :class:`repro.graph.Graph` (O(E) plus the matrix zeroing)."""
        rows, cols = graph.edge_arrays()
        return cls.from_edge_arrays(graph.num_nodes, rows, cols)

    @classmethod
    def from_edge_arrays(cls, num_nodes: int, rows: np.ndarray, cols: np.ndarray) -> "BitMatrix":
        """Pack aligned edge arrays (duplicate-free, self-loop-free)."""
        n = int(num_nodes)
        words = (n + 63) >> 6
        if n == 0 or rows.size == 0:
            return cls(n, np.zeros((n, words), dtype=np.uint64))
        sym_rows = np.concatenate([rows, cols])
        sym_cols = np.concatenate([cols, rows])
        flat = sym_rows * words + (sym_cols >> 6)
        bit = sym_cols & 63
        # Each (row, bit) position appears at most once in a simple graph, so
        # the split-bincount accumulation is an exact OR.
        matrix = accumulate_bits(flat, bit, n * words)
        return cls(n, matrix.reshape(n, words))

    # ------------------------------------------------------------------
    # Exact integer counts
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Degree of every node (row popcounts)."""
        return _row_popcounts(self.rows)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.degrees().sum()) // 2

    def edge_density(self) -> float:
        """Fraction of node pairs that are edges."""
        pairs = pair_count(self.num_nodes)
        if pairs == 0:
            return 0.0
        return self.num_edges / pairs

    def edge_endpoints(self) -> tuple:
        """Edges as aligned ``(rows, cols)`` arrays with ``rows < cols``.

        Decoded from the packed bits in row blocks (endian-independent
        ``word >> position`` extraction), so callers that do not already
        hold the edge list can still drive the edge-gather kernels.
        """
        n = self.num_nodes
        empty = np.empty(0, dtype=np.int64)
        if n == 0:
            return empty, empty
        word_index, bit_shift = bit_index_arrays(n)
        one = np.uint64(1)
        block = max(1, _CHUNK_WORDS // max(1, n))
        us, vs = [], []
        for start in range(0, n, block):
            stop = min(n, start + block)
            present = (self.rows[start:stop, word_index] >> bit_shift) & one
            block_rows, block_cols = np.nonzero(present)
            keep = block_cols > block_rows + start
            us.append(block_rows[keep] + start)
            vs.append(block_cols[keep])
        if not us:
            return empty, empty
        return np.concatenate(us), np.concatenate(vs)

    def triangles_per_node(self, edges: tuple | None = None) -> np.ndarray:
        """Number of triangles incident to each node.

        Edge-gather formulation: for every edge ``{u, v}``,
        ``popcount(row_u & row_v)`` is the number of common neighbours —
        triangles through that edge — and accumulating it onto both
        endpoints counts each node's incident triangles exactly twice
        (once per far endpoint of the opposite edge), so a halving yields
        the exact count in ``O(E ceil(n/64))`` word operations with no
        per-node Python loop.  ``edges`` lets callers that already hold the
        decoded ``(rows, cols)`` arrays skip re-extracting them from the
        packed bits.
        """
        n = self.num_nodes
        if n == 0:
            return np.zeros(n, dtype=np.int64)
        if edges is None:
            edge_rows, edge_cols = self.edge_endpoints()
        else:
            edge_rows = np.asarray(edges[0], dtype=np.int64)
            edge_cols = np.asarray(edges[1], dtype=np.int64)
        return _gather_triangles(self.rows, edge_rows, edge_cols, n)

    def with_edits(
        self,
        add_rows: np.ndarray,
        add_cols: np.ndarray,
        drop_rows: np.ndarray,
        drop_cols: np.ndarray,
    ) -> "BitMatrix":
        """A new matrix with the given edges dropped and added (row patching).

        This is the packed counterpart of rebuilding the graph after an
        attack override: instead of re-packing all ``E`` edges, the before
        matrix's rows are copied once (a flat memcpy) and only the changed
        pairs — a ``~beta`` fraction under the paper's threat model — are
        toggled, in both orientations.  Each edit set must be duplicate-free
        (the callers pass decoded *net* added/removed pair codes, which are
        sorted and unique by construction): the toggles accumulate through
        the same split-bincount trick as :meth:`from_edge_arrays`, where a
        repeated pair would carry into the neighbouring bit.
        """
        flat_rows = self.rows.copy().reshape(-1)
        drop_rows = np.asarray(drop_rows, dtype=np.int64)
        add_rows = np.asarray(add_rows, dtype=np.int64)
        if drop_rows.size:
            self._toggle_bits(flat_rows, drop_rows, drop_cols, clear=True)
        if add_rows.size:
            self._toggle_bits(flat_rows, add_rows, add_cols, clear=False)
        return BitMatrix(self.num_nodes, flat_rows.reshape(self.rows.shape))

    def _toggle_bits(
        self, flat_rows: np.ndarray, edit_rows: np.ndarray, edit_cols: np.ndarray,
        clear: bool,
    ) -> None:
        """Set or clear the bits of duplicate-free edits, both orientations.

        The touched flat word positions are compacted with ``np.unique`` so
        the split-bincount accumulator builds an edit-sized mask instead of a
        matrix-sized one, then applied with one fancy OR / AND-NOT store.
        """
        edit_cols = np.asarray(edit_cols, dtype=np.int64)
        sym_r = np.concatenate([edit_rows, edit_cols])
        sym_c = np.concatenate([edit_cols, edit_rows])
        flat = sym_r * self.num_words + (sym_c >> 6)
        unique, inverse = np.unique(flat, return_inverse=True)
        mask = accumulate_bits(inverse, sym_c & 63, unique.size)
        if clear:
            flat_rows[unique] &= ~mask
        else:
            flat_rows[unique] |= mask

    def triangles_touching(self, nodes: np.ndarray) -> np.ndarray:
        """Per-node count of triangles with at least one vertex in ``nodes``.

        The building block of incremental before/after triangle counting:
        when two graphs differ only on pairs incident to ``nodes`` (the
        attacker-touched rows of a paired run), their full per-node triangle
        counts differ exactly by this quantity, so the delta costs
        ``O(sum_{s in nodes} deg(s) * ceil(n/64))`` words — a ``~2 beta``
        fraction of a full :meth:`triangles_per_node` pass.

        For ``u`` in ``nodes`` every incident triangle qualifies, so the
        count is the plain per-row triangle count.  For ``u`` outside, each
        touched neighbour ``s`` contributes ``|N(u) & N(s)|`` pairs where
        ``s`` itself is the touched vertex plus ``|N(u) & N(s) \\ nodes|``
        pairs where the third vertex is the touched one; summing and halving
        counts every qualifying triangle exactly once.
        """
        n = self.num_nodes
        counts = np.zeros(n, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        if n == 0 or nodes.size == 0:
            return counts
        one = np.uint64(1)
        mask = np.zeros(self.num_words, dtype=np.uint64)
        np.bitwise_or.at(mask, nodes >> 6, one << (nodes & 63).astype(np.uint64))
        word_index, bit_shift = bit_index_arrays(n)
        # Ordered qualifying-pair counts for nodes outside the touched set.
        term = np.zeros(n, dtype=np.int64)
        chunk = max(1, _CHUNK_WORDS // max(self.num_words, 1))
        for node in nodes.tolist():
            row = self.rows[node]
            present = (row[word_index] >> bit_shift) & one
            neighbors = np.nonzero(present)[0]
            if not neighbors.size:
                continue
            own = 0
            for start in range(0, neighbors.size, chunk):
                block = neighbors[start : start + chunk]
                anded = self.rows[block] & row
                pop_full = _row_popcounts(anded)
                pop_touched = _row_popcounts(anded & mask)
                own += int(pop_full.sum())
                term[block] += 2 * pop_full - pop_touched
            counts[node] = own // 2
        outside = np.ones(n, dtype=bool)
        outside[nodes] = False
        counts[outside] = term[outside] // 2
        return counts

    def row_range(self, start: int, stop: int) -> np.ndarray:
        """Zero-copy packed view of rows ``[start, stop)``.

        The unit of out-of-core transport: a block of per-user adjacency
        bit rows, ``(stop - start) x num_words`` uint64, sized by callers to
        honour ``REPRO_DENSE_MAX_BYTES`` (see
        :func:`repro.graph.streaming.rows_per_block`).  Identical bits to
        the blocks :func:`repro.graph.streaming.iter_packed_row_blocks`
        builds without ever materializing this matrix.
        """
        if not 0 <= start <= stop <= self.num_nodes:
            raise ValueError(
                f"row range [{start}, {stop}) out of [0, {self.num_nodes}]"
            )
        return self.rows[start:stop]

    def intra_community_edges(self, labels: np.ndarray, num_communities: int) -> np.ndarray:
        """Number of edges with both endpoints in each community.

        Exactly :func:`np.bincount` over same-label edges, computed as
        popcounts of member rows masked by the community's packed indicator —
        ``O(n ceil(n/64))`` words instead of touching every edge index.
        """
        labels = np.asarray(labels, dtype=np.int64)
        counts = np.zeros(num_communities, dtype=np.int64)
        one = np.uint64(1)
        for community in range(num_communities):
            members = np.flatnonzero(labels == community)
            if members.size < 2:
                continue
            mask = np.zeros(self.num_words, dtype=np.uint64)
            np.bitwise_or.at(
                mask, members >> 6, one << (members & 63).astype(np.uint64)
            )
            counts[community] = _masked_popcount_sum(self.rows, members, mask) // 2
        return counts

    def __repr__(self) -> str:
        return f"BitMatrix(num_nodes={self.num_nodes}, num_words={self.num_words})"
