"""Setup shim.

The sandboxed environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an editable
wheel.  This shim lets ``python setup.py develop`` (and legacy
``pip install -e . --no-build-isolation``) work offline.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
