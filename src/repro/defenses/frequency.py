"""Countermeasures for frequency-oracle poisoning (Cao et al., §VII there).

The paper's graph countermeasures are adapted from the defenses Cao et al.
proposed for frequency estimation; this module completes the substrate with
the originals:

* **normalization** — project the estimated frequencies onto the probability
  simplex (non-negative, summing to 1), bounding how much mass an attacker
  can add to targets without removing it elsewhere;
* **report-anomaly detection** for OUE — an honest OUE report has
  ``Binomial`` 1-count centred at ``p + (d-1) q``; reports outside a z-score
  band are discarded (Cao's "fake users detection" specialised to the
  oracle whose encoded space makes it well-defined).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ldp.frequency_oracles import OUE, FrequencyOracle
from repro.utils.validation import check_positive


def normalize_frequencies(estimates: np.ndarray) -> np.ndarray:
    """Project frequency estimates onto the probability simplex.

    Euclidean projection (Duchi et al. 2008): the result is the closest
    vector with non-negative entries summing to 1.

    >>> normalize_frequencies(np.array([0.7, 0.5, -0.2])).round(2).tolist()
    [0.6, 0.4, 0.0]
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    if estimates.ndim != 1:
        raise ValueError("estimates must be a 1-D frequency vector")
    descending = np.sort(estimates)[::-1]
    cumulative = np.cumsum(descending) - 1.0
    indices = np.arange(1, estimates.size + 1)
    support = descending - cumulative / indices > 0
    if not support.any():
        # Degenerate (all mass far negative): fall back to uniform.
        return np.full_like(estimates, 1.0 / estimates.size)
    rho = indices[support][-1]
    theta = cumulative[rho - 1] / rho
    return np.maximum(estimates - theta, 0.0)


@dataclass(frozen=True)
class OUEAnomalyDefense:
    """Discard OUE reports whose 1-count is statistically implausible.

    Attributes
    ----------
    z_threshold:
        Reports are kept when their 1-count lies within ``z_threshold``
        standard deviations of the honest expectation.
    """

    z_threshold: float = 3.0

    def __post_init__(self):
        check_positive(self.z_threshold, "z_threshold")

    def expected_ones(self, oracle: OUE) -> float:
        """Mean 1-count of an honest OUE report."""
        return oracle.support_probability_true + (
            oracle.domain_size - 1
        ) * oracle.support_probability_false

    def ones_std(self, oracle: OUE) -> float:
        """Standard deviation of an honest report's 1-count."""
        p = oracle.support_probability_true
        q = oracle.support_probability_false
        return float(
            np.sqrt(p * (1 - p) + (oracle.domain_size - 1) * q * (1 - q))
        )

    def keep_mask(self, oracle: OUE, reports: np.ndarray) -> np.ndarray:
        """Boolean mask of reports that pass the anomaly check."""
        if not isinstance(oracle, OUE):
            raise TypeError("OUEAnomalyDefense only applies to OUE reports")
        reports = np.asarray(reports)
        ones = reports.sum(axis=1).astype(np.float64)
        center = self.expected_ones(oracle)
        band = self.z_threshold * self.ones_std(oracle)
        return np.abs(ones - center) <= band

    def filter_reports(self, oracle: OUE, reports: np.ndarray) -> np.ndarray:
        """Reports with anomalous rows removed."""
        return np.asarray(reports)[self.keep_mask(oracle, reports)]


def defended_estimate(
    oracle: FrequencyOracle,
    reports: np.ndarray,
    normalize: bool = True,
    oue_defense: OUEAnomalyDefense | None = None,
) -> np.ndarray:
    """Estimate frequencies with the selected countermeasures applied."""
    if oue_defense is not None and isinstance(oracle, OUE):
        reports = oue_defense.filter_reports(oracle, reports)
    estimates = oracle.estimate_frequencies(reports)
    if normalize:
        estimates = normalize_frequencies(estimates)
    return estimates
